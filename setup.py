"""Setup shim so ``pip install -e .`` works offline (no wheel package).

All real metadata lives in pyproject.toml; this file only enables the legacy
editable-install path on environments without the ``wheel`` module.
"""

from setuptools import setup

setup()
