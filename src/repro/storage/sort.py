"""External merge sort with page-I/O accounting.

WiSS provides "sort and scan utilities"; the Teradata AMPs sort their
redistributed spool files before the merge join.  The functional plane just
sorts the records; the value of this module is the faithful page-I/O count:
run formation reads and writes the file once, and every extra merge pass
reads and writes it again.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log
from typing import Any, Callable, Sequence

from ..errors import StorageError


@dataclass(frozen=True)
class SortStats:
    """I/O profile of one external sort."""

    n_records: int
    n_pages: int
    run_count: int
    merge_passes: int
    pages_read: int
    pages_written: int

    @property
    def total_page_ios(self) -> int:
        return self.pages_read + self.pages_written


def external_sort(
    records: Sequence[tuple],
    key: Callable[[tuple], Any],
    record_bytes: int,
    page_size: int,
    memory_bytes: int,
    merge_fanin: int = 8,
) -> tuple[list[tuple], SortStats]:
    """Sort ``records`` and report the page I/O an external sort would do.

    Args:
        records: The input records (already in memory — functional plane).
        key: Sort key extractor.
        record_bytes: Declared on-disk width of one record.
        page_size: Disk page size in bytes.
        memory_bytes: Sort workspace; determines initial run length.
        merge_fanin: Maximum runs merged per pass.

    Returns:
        The sorted records and a :class:`SortStats`.
    """
    if memory_bytes <= 0:
        raise StorageError("sort memory must be positive")
    if merge_fanin < 2:
        raise StorageError("merge fan-in must be >= 2")
    per_page = max(1, page_size // max(1, record_bytes))
    n_records = len(records)
    n_pages = ceil(n_records / per_page) if n_records else 0
    records_per_run = max(per_page, memory_bytes // max(1, record_bytes))
    run_count = ceil(n_records / records_per_run) if n_records else 0

    if run_count <= 1:
        # Fits in memory: read once, write once (to the output spool).
        stats = SortStats(
            n_records=n_records,
            n_pages=n_pages,
            run_count=max(run_count, 1 if n_records else 0),
            merge_passes=0,
            pages_read=n_pages,
            pages_written=n_pages,
        )
        return sorted(records, key=key), stats

    merge_passes = ceil(log(run_count, merge_fanin))
    # Run formation: read + write everything once; each merge pass again.
    pages_read = n_pages * (1 + merge_passes)
    pages_written = n_pages * (1 + merge_passes)
    stats = SortStats(
        n_records=n_records,
        n_pages=n_pages,
        run_count=run_count,
        merge_passes=merge_passes,
        pages_read=pages_read,
        pages_written=pages_written,
    )
    return sorted(records, key=key), stats
