"""WiSS storage substrate: pages, heap files, B+-trees, buffers, sort."""

from .btree import (
    BPlusTree,
    BTreeNode,
    SearchPath,
    build_dense_index,
    build_sparse_index,
)
from .buffer import BufferPool
from .heap import RID, HeapFile, build_heap_file, expected_pages
from .page import (
    PAGE_HEADER_BYTES,
    RECORD_OVERHEAD_BYTES,
    Page,
    records_per_page,
)
from .schema import Attribute, AttrType, Schema, int_attr, string_attr
from .sort import SortStats, external_sort
from .wiss import PageAccess, StoredFile

__all__ = [
    "AttrType",
    "Attribute",
    "BPlusTree",
    "BTreeNode",
    "BufferPool",
    "HeapFile",
    "PAGE_HEADER_BYTES",
    "Page",
    "PageAccess",
    "RECORD_OVERHEAD_BYTES",
    "RID",
    "Schema",
    "SearchPath",
    "SortStats",
    "StoredFile",
    "build_dense_index",
    "build_heap_file",
    "build_sparse_index",
    "expected_pages",
    "external_sort",
    "int_attr",
    "records_per_page",
    "string_attr",
]
