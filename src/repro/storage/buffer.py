"""LRU buffer pool.

The buffer pool belongs to the *timing* plane: page contents are always
reachable in the functional plane (this is a simulator), so the pool's only
job is to answer "would this page access have hit memory?" and thereby
decide whether a disk I/O is charged.  Hot index roots hitting the pool is
what makes repeated single-tuple operations cheap (Table 3).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

from ..errors import StorageError

PageKey = tuple[Hashable, int]


class BufferPool:
    """A page-granularity LRU cache with hit/miss accounting."""

    def __init__(self, name: str, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise StorageError("buffer pool needs capacity >= 1 page")
        self.name = name
        self.capacity_pages = capacity_pages
        self._lru: OrderedDict[PageKey, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"<BufferPool {self.name} {len(self._lru)}/{self.capacity_pages}"
            f" hit={self.hit_ratio:.2f}>"
        )

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def access(self, file_id: Hashable, page_no: int) -> bool:
        """Touch a page; returns True on a hit (no disk I/O needed)."""
        key = (file_id, page_no)
        if key in self._lru:
            self._lru.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._lru[key] = None
        if len(self._lru) > self.capacity_pages:
            self._lru.popitem(last=False)
        return False

    def contains(self, file_id: Hashable, page_no: int) -> bool:
        """Non-mutating membership probe (no statistics update)."""
        return (file_id, page_no) in self._lru

    def invalidate_file(self, file_id: Hashable) -> int:
        """Drop every cached page of ``file_id``; returns pages dropped."""
        doomed = [key for key in self._lru if key[0] == file_id]
        for key in doomed:
            del self._lru[key]
        return len(doomed)

    def clear(self) -> None:
        self._lru.clear()
