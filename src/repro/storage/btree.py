"""Paged B+-trees (the WiSS index structures).

Gamma uses two organisations (Section 5.1 of the paper):

* **clustered index** — the data file is sorted on the key and a *sparse*
  B+-tree (one entry per data page) sits on top; only the pages in the
  query range are read.
* **non-clustered index** — a *dense* B+-tree (one entry per tuple) whose
  leaf payloads are RIDs; every qualifying tuple costs a random data-page
  access.

Nodes are sized from the disk page size, so increasing the page size
increases fan-out — the effect Figures 7-8 of the paper measure.

Deletion is lazy (entries are removed, nodes are not rebalanced), matching
the common practice of production B-trees; the benchmarks only ever delete
a negligible fraction of entries.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from ..errors import RecordNotFoundError, StorageError

#: Node header bytes (level, count, sibling pointer, ...).
NODE_HEADER_BYTES = 32

#: Per-entry slot overhead inside a node.
ENTRY_OVERHEAD_BYTES = 4

#: Width of a child/page pointer or RID payload.
POINTER_BYTES = 8


class BTreeNode:
    """One node of the tree; occupies exactly one disk page."""

    __slots__ = ("page_id", "is_leaf", "keys", "payloads", "children", "next_leaf")

    def __init__(self, page_id: int, is_leaf: bool) -> None:
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.keys: list[Any] = []
        self.payloads: list[Any] = []  # leaf only
        self.children: list["BTreeNode"] = []  # internal only
        self.next_leaf: Optional["BTreeNode"] = None

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        kind = "leaf" if self.is_leaf else "internal"
        return f"<BTreeNode #{self.page_id} {kind} n={len(self.keys)}>"


@dataclass
class SearchPath:
    """Result of descending to the leaf that may hold ``key``.

    Attributes:
        page_ids: Node page ids visited root→leaf (for I/O charging).
        leaf: The leaf node reached.
        index: Position of the first leaf entry with entry-key >= key.
    """

    page_ids: list[int]
    leaf: BTreeNode
    index: int


class BPlusTree:
    """A B+-tree mapping keys to payloads with page-based nodes.

    Args:
        name: File id of the index (for buffer/disk accounting).
        page_size: Bytes per node page.
        key_bytes: Declared key width (4 for Wisconsin integers).
        payload_bytes: Declared leaf-payload width (8 for a RID or page
            pointer).
        fill_factor: Leaf packing density used by :meth:`bulk_load`.
    """

    def __init__(
        self,
        name: str,
        page_size: int,
        key_bytes: int = 4,
        payload_bytes: int = POINTER_BYTES,
        fill_factor: float = 1.0,
    ) -> None:
        if not 0.5 <= fill_factor <= 1.0:
            raise StorageError("fill_factor must be in [0.5, 1.0]")
        usable = page_size - NODE_HEADER_BYTES
        leaf_entry = key_bytes + payload_bytes + ENTRY_OVERHEAD_BYTES
        internal_entry = key_bytes + POINTER_BYTES + ENTRY_OVERHEAD_BYTES
        self.leaf_capacity = usable // leaf_entry
        self.internal_fanout = usable // internal_entry
        if self.leaf_capacity < 2 or self.internal_fanout < 3:
            raise StorageError(f"page_size {page_size} too small for a node")
        self.name = name
        self.page_size = page_size
        self.fill_factor = fill_factor
        self._next_page = 0
        self.root = self._new_node(is_leaf=True)
        self.size = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _new_node(self, is_leaf: bool) -> BTreeNode:
        node = BTreeNode(self._next_page, is_leaf)
        self._next_page += 1
        return node

    @property
    def num_nodes(self) -> int:
        return self._count_nodes(self.root)

    def _count_nodes(self, node: BTreeNode) -> int:
        if node.is_leaf:
            return 1
        return 1 + sum(self._count_nodes(c) for c in node.children)

    @property
    def height(self) -> int:
        """Number of levels (a lone leaf has height 1)."""
        levels = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    def bulk_load(self, pairs: list[tuple[Any, Any]]) -> None:
        """Load sorted ``(key, payload)`` pairs into an empty tree."""
        if self.size:
            raise StorageError("bulk_load requires an empty tree")
        for i in range(1, len(pairs)):
            if pairs[i - 1][0] > pairs[i][0]:
                raise StorageError("bulk_load input must be sorted by key")
        per_leaf = max(2, int(self.leaf_capacity * self.fill_factor))
        leaves: list[BTreeNode] = []
        for start in range(0, len(pairs), per_leaf):
            chunk = pairs[start:start + per_leaf]
            leaf = self._new_node(is_leaf=True)
            leaf.keys = [k for k, _p in chunk]
            leaf.payloads = [p for _k, p in chunk]
            if leaves:
                leaves[-1].next_leaf = leaf
            leaves.append(leaf)
        self.size = len(pairs)
        if not leaves:
            return
        level = leaves
        while len(level) > 1:
            parents: list[BTreeNode] = []
            for start in range(0, len(level), self.internal_fanout):
                group = level[start:start + self.internal_fanout]
                parent = self._new_node(is_leaf=False)
                parent.children = group
                parent.keys = [self._min_key(c) for c in group[1:]]
                parents.append(parent)
            level = parents
        self.root = level[0]

    def _min_key(self, node: BTreeNode) -> Any:
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0]

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(self, key: Any) -> SearchPath:
        """Descend to the leaf where ``key`` lives (or would live)."""
        node = self.root
        page_ids = [node.page_id]
        while not node.is_leaf:
            child_idx = bisect_right(node.keys, key)
            node = node.children[child_idx]
            page_ids.append(node.page_id)
        index = bisect_left(node.keys, key)
        return SearchPath(page_ids, node, index)

    def lookup(self, key: Any) -> list[Any]:
        """All payloads stored under exactly ``key``."""
        return [p for _page, k, p in self.range_entries(key, key) if k == key]

    def range_entries(
        self, low: Any, high: Any
    ) -> Iterator[tuple[int, Any, Any]]:
        """Yield ``(leaf_page_id, key, payload)`` for low <= key <= high."""
        if low > high:
            return
        path = self.search(low)
        leaf: Optional[BTreeNode] = path.leaf
        index = path.index
        while leaf is not None:
            keys = leaf.keys
            while index < len(keys):
                key = keys[index]
                if key > high:
                    return
                yield leaf.page_id, key, leaf.payloads[index]
                index += 1
            leaf = leaf.next_leaf
            index = 0

    def floor_entry(self, key: Any) -> tuple[int, Any, Any]:
        """The rightmost entry with entry-key <= key.

        Used by sparse (clustered) indexes to find the data page whose key
        range covers ``key``.

        Raises:
            RecordNotFoundError: if every key exceeds ``key`` (or empty).
        """
        node = self.root
        while not node.is_leaf:
            node = node.children[bisect_right(node.keys, key)]
        idx = bisect_right(node.keys, key) - 1
        if idx < 0:
            raise RecordNotFoundError(f"no entry <= {key!r} in {self.name}")
        return node.page_id, node.keys[idx], node.payloads[idx]

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def insert(self, key: Any, payload: Any) -> list[int]:
        """Insert ``(key, payload)``; returns the node page ids touched."""
        touched, split = self._insert_into(self.root, key, payload)
        if split is not None:
            sep_key, right = split
            new_root = self._new_node(is_leaf=False)
            new_root.children = [self.root, right]
            new_root.keys = [sep_key]
            self.root = new_root
            touched.append(new_root.page_id)
        self.size += 1
        return touched

    def _insert_into(
        self, node: BTreeNode, key: Any, payload: Any
    ) -> tuple[list[int], Optional[tuple[Any, BTreeNode]]]:
        if node.is_leaf:
            idx = bisect_right(node.keys, key)
            node.keys.insert(idx, key)
            node.payloads.insert(idx, payload)
            if len(node.keys) <= self.leaf_capacity:
                return [node.page_id], None
            mid = len(node.keys) // 2
            right = self._new_node(is_leaf=True)
            right.keys = node.keys[mid:]
            right.payloads = node.payloads[mid:]
            node.keys = node.keys[:mid]
            node.payloads = node.payloads[:mid]
            right.next_leaf = node.next_leaf
            node.next_leaf = right
            return [node.page_id, right.page_id], (right.keys[0], right)
        child_idx = bisect_right(node.keys, key)
        touched, split = self._insert_into(node.children[child_idx], key, payload)
        touched.append(node.page_id)
        if split is None:
            return touched, None
        sep_key, right_child = split
        node.keys.insert(child_idx, sep_key)
        node.children.insert(child_idx + 1, right_child)
        if len(node.children) <= self.internal_fanout:
            return touched, None
        mid = len(node.children) // 2
        right = self._new_node(is_leaf=False)
        promote = node.keys[mid - 1]
        right.keys = node.keys[mid:]
        right.children = node.children[mid:]
        node.keys = node.keys[:mid - 1]
        node.children = node.children[:mid]
        touched.append(right.page_id)
        return touched, (promote, right)

    def delete(self, key: Any, payload: Any = None) -> list[int]:
        """Delete one entry with ``key`` (and ``payload`` if given).

        Returns the node page ids touched.

        Raises:
            RecordNotFoundError: if no matching entry exists.
        """
        path = self.search(key)
        leaf: Optional[BTreeNode] = path.leaf
        index = path.index
        while leaf is not None:
            while index < len(leaf.keys) and leaf.keys[index] == key:
                if payload is None or leaf.payloads[index] == payload:
                    del leaf.keys[index]
                    del leaf.payloads[index]
                    self.size -= 1
                    return path.page_ids
                index += 1
            if index < len(leaf.keys):
                break
            leaf = leaf.next_leaf
            index = 0
        raise RecordNotFoundError(f"key {key!r} not found in {self.name}")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[Any, Any]]:
        """All ``(key, payload)`` pairs in key order."""
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
        leaf: Optional[BTreeNode] = node
        while leaf is not None:
            yield from zip(leaf.keys, leaf.payloads)
            leaf = leaf.next_leaf

    def check_invariants(self) -> None:
        """Validate ordering, linkage and capacities (used by tests).

        Raises:
            StorageError: if any structural invariant is violated.
        """
        keys = [k for k, _p in self.items()]
        if keys != sorted(keys):
            raise StorageError("leaf chain keys are not sorted")
        count = sum(1 for _ in self.items())
        if count != self.size:
            raise StorageError(f"size {self.size} != entry count {count}")
        self._check_node(self.root, None, None, is_root=True)

    def _check_node(
        self, node: BTreeNode, low: Any, high: Any, is_root: bool = False
    ) -> None:
        for key in node.keys:
            if low is not None and key < low:
                raise StorageError(f"key {key!r} below bound {low!r}")
            if high is not None and key > high:
                raise StorageError(f"key {key!r} above bound {high!r}")
        if node.is_leaf:
            if len(node.keys) > self.leaf_capacity:
                raise StorageError("leaf over capacity")
            if node.keys != sorted(node.keys):
                raise StorageError("leaf keys unsorted")
            return
        if len(node.children) != len(node.keys) + 1:
            raise StorageError("internal child/key count mismatch")
        if len(node.children) > self.internal_fanout:
            raise StorageError("internal node over fan-out")
        if not is_root and len(node.children) < 2:
            raise StorageError("non-root internal node with < 2 children")
        bounds = [low, *node.keys, high]
        for i, child in enumerate(node.children):
            self._check_node(child, bounds[i], bounds[i + 1])


def build_dense_index(
    name: str,
    page_size: int,
    entries: list[tuple[Any, Any]],
    key_bytes: int = 4,
) -> BPlusTree:
    """A dense (one entry per tuple) non-clustered index over RIDs."""
    tree = BPlusTree(name, page_size, key_bytes=key_bytes)
    tree.bulk_load(sorted(entries, key=lambda kp: kp[0]))
    return tree


def build_sparse_index(
    name: str,
    page_size: int,
    page_first_keys: list[tuple[Any, int]],
    key_bytes: int = 4,
) -> BPlusTree:
    """A sparse clustered index: one ``(first_key, data_page_no)`` entry per
    data page of a key-sorted heap file."""
    tree = BPlusTree(name, page_size, key_bytes=key_bytes)
    tree.bulk_load(page_first_keys)
    return tree
