"""Relation schemas.

Tuples are plain Python tuples; a :class:`Schema` gives the attributes
names, declared byte widths (what the 1988 hardware would have stored — the
cost model bills these bytes, not Python object sizes) and positional
accessors used by compiled predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Iterable, Sequence

from ..errors import StorageError


class AttrType(Enum):
    """Wisconsin-benchmark attribute types."""

    INT = "int"
    STRING = "string"


@dataclass(frozen=True)
class Attribute:
    """One attribute: a name, a type and its on-disk width in bytes."""

    name: str
    type: AttrType
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise StorageError(f"attribute {self.name!r} needs size > 0")


def int_attr(name: str) -> Attribute:
    """A 4-byte integer attribute (the Wisconsin standard)."""
    return Attribute(name, AttrType.INT, 4)


def string_attr(name: str, size: int = 52) -> Attribute:
    """A fixed-width string attribute (52 bytes in the Wisconsin schema)."""
    return Attribute(name, AttrType.STRING, size)


class Schema:
    """An ordered list of attributes with fast name→position lookup."""

    __slots__ = ("attributes", "_index", "tuple_bytes")

    def __init__(self, attributes: Sequence[Attribute]) -> None:
        if not attributes:
            raise StorageError("schema needs at least one attribute")
        names = [a.name for a in attributes]
        if len(set(names)) != len(names):
            raise StorageError(f"duplicate attribute names in {names}")
        self.attributes = tuple(attributes)
        self._index = {a.name: i for i, a in enumerate(attributes)}
        self.tuple_bytes = sum(a.size for a in attributes)

    def __len__(self) -> int:
        return len(self.attributes)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash(self.attributes)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        names = ", ".join(a.name for a in self.attributes)
        return f"<Schema [{names}] {self.tuple_bytes}B>"

    def position(self, name: str) -> int:
        """Index of attribute ``name`` within a tuple."""
        try:
            return self._index[name]
        except KeyError:
            raise StorageError(
                f"unknown attribute {name!r}; have {list(self._index)}"
            ) from None

    def names(self) -> list[str]:
        return [a.name for a in self.attributes]

    def getter(self, name: str) -> Callable[[tuple], Any]:
        """A compiled positional accessor for attribute ``name``.

        This mirrors Gamma compiling predicates "into machine language":
        the per-tuple path holds no name lookups.
        """
        pos = self.position(name)
        return lambda record: record[pos]

    def project(self, names: Iterable[str]) -> "Schema":
        """Schema of a projection onto ``names`` (order preserved)."""
        return Schema([self.attributes[self.position(n)] for n in names])

    def concat(self, other: "Schema", suffix: str = "_r") -> "Schema":
        """Schema of a join result; right-side name clashes get ``suffix``."""
        attrs = list(self.attributes)
        for attr in other.attributes:
            name = attr.name
            while name in self._index or name in [a.name for a in attrs[len(self.attributes):]]:
                name = name + suffix
            attrs.append(Attribute(name, attr.type, attr.size))
        return Schema(attrs)
