"""Slotted pages.

A :class:`Page` stores whole records (Python tuples) plus the byte
accounting a real slotted page would do: a fixed header, a slot-table entry
and record header per record.  With the Wisconsin 208-byte tuple this yields
17 records on a 4 KB page — the paper's own number ("with 17 tuples per data
page, all 589 pages of data would be read").
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from ..errors import PageFullError, RecordNotFoundError, StorageError

#: Fixed page header (LSN, slot count, free-space pointer, ...).
PAGE_HEADER_BYTES = 32

#: Per-record overhead: slot-table entry + record header + alignment.
RECORD_OVERHEAD_BYTES = 30


def records_per_page(page_size: int, record_bytes: int) -> int:
    """How many records of ``record_bytes`` fit on one ``page_size`` page."""
    usable = page_size - PAGE_HEADER_BYTES
    per_record = record_bytes + RECORD_OVERHEAD_BYTES
    count = usable // per_record
    if count < 1:
        raise StorageError(
            f"record of {record_bytes}B does not fit a {page_size}B page"
        )
    return count


class Page:
    """One slotted page of records.

    Records are never moved between slots (RID stability); deletion leaves a
    hole that a later insert may reuse.
    """

    __slots__ = ("page_size", "_slots", "_free_slots", "used_bytes", "_live")

    def __init__(self, page_size: int) -> None:
        if page_size <= PAGE_HEADER_BYTES:
            raise StorageError(f"page_size {page_size} too small")
        self.page_size = page_size
        self._slots: list[Optional[tuple]] = []
        self._free_slots: list[int] = []
        self.used_bytes = PAGE_HEADER_BYTES
        self._live = 0

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<Page {self._live} recs, {self.free_bytes}B free>"

    @classmethod
    def packed(
        cls, page_size: int, records: list[tuple], record_bytes: int
    ) -> "Page":
        """A page bulk-filled with ``records`` in slot order.

        Produces exactly the layout ``len(records)`` successive
        :meth:`insert` calls on a fresh page would, without the per-record
        ``fits`` checks — the bulk-load fast path.  The caller guarantees
        the records fit (at most :func:`records_per_page`).
        """
        page = cls(page_size)
        page._slots = list(records)
        page._live = len(page._slots)
        page.used_bytes = PAGE_HEADER_BYTES + page._live * (
            record_bytes + RECORD_OVERHEAD_BYTES
        )
        if page.used_bytes > page_size:
            raise PageFullError(
                f"{page._live} records of {record_bytes}B overflow a"
                f" {page_size}B page"
            )
        return page

    @property
    def free_bytes(self) -> int:
        return self.page_size - self.used_bytes

    @property
    def num_records(self) -> int:
        """Live (non-deleted) records on this page."""
        return self._live

    @property
    def num_slots(self) -> int:
        return len(self._slots)

    def fits(self, record_bytes: int) -> bool:
        return self.free_bytes >= record_bytes + RECORD_OVERHEAD_BYTES

    def insert(self, record: tuple, record_bytes: int) -> int:
        """Insert ``record``; returns its slot number.

        Raises:
            PageFullError: if the record does not fit.
        """
        if not self.fits(record_bytes):
            raise PageFullError(
                f"{record_bytes}B record does not fit ({self.free_bytes}B free)"
            )
        self.used_bytes += record_bytes + RECORD_OVERHEAD_BYTES
        self._live += 1
        if self._free_slots:
            slot = self._free_slots.pop()
            self._slots[slot] = record
            return slot
        self._slots.append(record)
        return len(self._slots) - 1

    def get(self, slot: int) -> tuple:
        """The record in ``slot``.

        Raises:
            RecordNotFoundError: for invalid or deleted slots.
        """
        record = self._slots[slot] if 0 <= slot < len(self._slots) else None
        if record is None:
            raise RecordNotFoundError(f"no record in slot {slot}")
        return record

    def delete(self, slot: int, record_bytes: int) -> tuple:
        """Remove and return the record in ``slot``."""
        record = self.get(slot)
        self._slots[slot] = None
        self._free_slots.append(slot)
        self.used_bytes -= record_bytes + RECORD_OVERHEAD_BYTES
        self._live -= 1
        return record

    def replace(self, slot: int, record: tuple) -> tuple:
        """Overwrite ``slot`` in place (same byte width); returns the old
        record."""
        old = self.get(slot)
        self._slots[slot] = record
        return old

    def records(self) -> Iterator[tuple]:
        """Iterate live records in slot order."""
        for record in self._slots:
            if record is not None:
                yield record

    def slotted_records(self) -> Iterator[tuple[int, tuple]]:
        """Iterate ``(slot, record)`` pairs for live records."""
        for slot, record in enumerate(self._slots):
            if record is not None:
                yield slot, record
