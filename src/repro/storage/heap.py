"""Heap files: unordered sequences of slotted pages.

A heap file is WiSS's "structured sequential file".  Records are addressed
by :class:`RID` (page number, slot).  The file also serves as the storage
for a *clustered* organisation — then records are loaded in key order and a
sparse B+-tree (see :mod:`repro.storage.btree`) sits on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from ..errors import RecordNotFoundError, StorageError
from .page import Page, RECORD_OVERHEAD_BYTES
from .schema import Schema


@dataclass(frozen=True, order=True)
class RID:
    """Record identifier: page number and slot within the page."""

    page_no: int
    slot: int

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"RID({self.page_no},{self.slot})"


class HeapFile:
    """An append-oriented file of slotted pages holding one schema.

    The file id (its ``name``) plus a page number is what the timing plane
    hands to :class:`~repro.hardware.disk.DiskDrive` to decide sequential
    vs random access.
    """

    def __init__(self, name: str, schema: Schema, page_size: int) -> None:
        self.name = name
        self.schema = schema
        self.page_size = page_size
        self.record_bytes = schema.tuple_bytes
        self.pages: list[Page] = []
        self._record_count = 0

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"<HeapFile {self.name} {self._record_count} recs,"
            f" {len(self.pages)} pages>"
        )

    def __len__(self) -> int:
        return self._record_count

    @property
    def num_pages(self) -> int:
        return len(self.pages)

    @property
    def num_records(self) -> int:
        return self._record_count

    @property
    def records_per_full_page(self) -> int:
        from .page import records_per_page

        return records_per_page(self.page_size, self.record_bytes)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def append(self, record: tuple) -> RID:
        """Append ``record``, extending the file if the tail page is full."""
        if not self.pages or not self.pages[-1].fits(self.record_bytes):
            self.pages.append(Page(self.page_size))
        page_no = len(self.pages) - 1
        slot = self.pages[page_no].insert(record, self.record_bytes)
        self._record_count += 1
        return RID(page_no, slot)

    def bulk_append(self, records: Iterable[tuple]) -> None:
        """Append many records (used by loads and store operators).

        Bulk loads pack full pages directly instead of running the
        per-record ``fits``/``insert`` machinery; the resulting page layout
        is identical to repeated :meth:`append` calls.
        """
        records = list(records)
        if not records:
            return
        record_bytes = self.record_bytes
        # Top up the current tail page exactly as append() would.
        i = 0
        if self.pages:
            tail = self.pages[-1]
            while i < len(records) and tail.fits(record_bytes):
                tail.insert(records[i], record_bytes)
                self._record_count += 1
                i += 1
        per_page = self.records_per_full_page
        while i < len(records):
            chunk = records[i:i + per_page]
            self.pages.append(Page.packed(self.page_size, chunk, record_bytes))
            self._record_count += len(chunk)
            i += per_page

    def insert_with_space_reuse(self, record: tuple) -> RID:
        """Insert preferring a page with a hole (post-delete reuse)."""
        for page_no, page in enumerate(self.pages):
            if page.num_slots > page.num_records and page.fits(self.record_bytes):
                slot = page.insert(record, self.record_bytes)
                self._record_count += 1
                return RID(page_no, slot)
        return self.append(record)

    def delete(self, rid: RID) -> tuple:
        """Delete the record at ``rid``; returns it."""
        page = self._page(rid.page_no)
        record = page.delete(rid.slot, self.record_bytes)
        self._record_count -= 1
        return record

    def replace(self, rid: RID, record: tuple) -> tuple:
        """Overwrite the record at ``rid`` in place; returns the old one."""
        return self._page(rid.page_no).replace(rid.slot, record)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def fetch(self, rid: RID) -> tuple:
        """The record stored at ``rid``."""
        return self._page(rid.page_no).get(rid.slot)

    def scan_pages(
        self, start_page: int = 0, end_page: Optional[int] = None
    ) -> Iterator[tuple[int, Page]]:
        """Iterate ``(page_no, page)`` over a contiguous page range."""
        end = len(self.pages) if end_page is None else min(end_page, len(self.pages))
        for page_no in range(start_page, end):
            yield page_no, self.pages[page_no]

    def records(self) -> Iterator[tuple]:
        """Iterate every live record (no timing; functional plane only)."""
        for _page_no, page in self.scan_pages():
            yield from page.records()

    def rids(self) -> Iterator[tuple[RID, tuple]]:
        """Iterate ``(rid, record)`` for every live record."""
        for page_no, page in self.scan_pages():
            for slot, record in page.slotted_records():
                yield RID(page_no, slot), record

    def find_first(
        self, predicate: Callable[[tuple], bool]
    ) -> tuple[RID, tuple]:
        """First record satisfying ``predicate``.

        Raises:
            RecordNotFoundError: if no record matches.
        """
        for rid, record in self.rids():
            if predicate(record):
                return rid, record
        raise RecordNotFoundError(f"no record matches in {self.name}")

    def _page(self, page_no: int) -> Page:
        if not 0 <= page_no < len(self.pages):
            raise RecordNotFoundError(
                f"page {page_no} out of range in {self.name}"
            )
        return self.pages[page_no]


def build_heap_file(
    name: str,
    schema: Schema,
    page_size: int,
    records: Iterable[tuple],
) -> HeapFile:
    """Create and bulk-load a heap file."""
    hf = HeapFile(name, schema, page_size)
    hf.bulk_append(records)
    return hf


def expected_pages(n_records: int, schema: Schema, page_size: int) -> int:
    """Pages a fully-packed file of ``n_records`` will occupy."""
    from .page import records_per_page

    per_page = records_per_page(page_size, schema.tuple_bytes)
    return (n_records + per_page - 1) // per_page if n_records else 0
