"""WiSS facade: stored relation fragments with optional indexes.

A :class:`StoredFile` is what one Gamma disk site keeps for one relation
fragment: a heap file, optionally organised as a *clustered* file (data
sorted on a key with a sparse B+-tree on top), plus any number of dense
*non-clustered* secondary indexes.

Every mutating method returns the list of :class:`PageAccess` records the
operation touched so the engine's timing plane can charge exactly those
I/Os.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional

from ..errors import RecordNotFoundError, StorageError
from .btree import BPlusTree, build_dense_index, build_sparse_index
from .heap import RID, HeapFile
from .schema import Schema


@dataclass(frozen=True)
class PageAccess:
    """One page touch: which file/page, read or write, random or not."""

    file_id: str
    page_no: int
    write: bool = False
    random: bool = True


class StoredFile:
    """A relation fragment with heap/clustered organisation and indexes."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        page_size: int,
        clustered_on: Optional[str] = None,
    ) -> None:
        self.name = name
        self.schema = schema
        self.page_size = page_size
        self.heap = HeapFile(name, schema, page_size)
        self.clustered_on = clustered_on
        self._sparse: Optional[BPlusTree] = None
        self.secondary: dict[str, BPlusTree] = {}
        self.deferred_update_entries = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        name: str,
        schema: Schema,
        page_size: int,
        records: Iterable[tuple],
        clustered_on: Optional[str] = None,
    ) -> "StoredFile":
        """Bulk-load a fragment, sorting first if clustered."""
        sf = cls(name, schema, page_size, clustered_on)
        records = list(records)
        if clustered_on is not None:
            get = schema.getter(clustered_on)
            records.sort(key=get)
        sf.heap.bulk_append(records)
        if clustered_on is not None:
            sf._rebuild_sparse_index()
        return sf

    def _rebuild_sparse_index(self) -> None:
        assert self.clustered_on is not None
        get = self.schema.getter(self.clustered_on)
        first_keys = []
        for page_no, page in self.heap.scan_pages():
            first = next(page.records(), None)
            if first is not None:
                first_keys.append((get(first), page_no))
        self._sparse = build_sparse_index(
            f"{self.name}.cidx", self.page_size, first_keys
        )

    def add_secondary_index(self, attr: str) -> None:
        """Build a dense non-clustered B+-tree on ``attr``."""
        if attr in self.secondary:
            raise StorageError(f"index on {attr!r} already exists")
        get = self.schema.getter(attr)
        entries = [(get(rec), rid) for rid, rec in self.heap.rids()]
        self.secondary[attr] = build_dense_index(
            f"{self.name}.idx.{attr}", self.page_size, entries
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def num_records(self) -> int:
        return self.heap.num_records

    @property
    def num_pages(self) -> int:
        return self.heap.num_pages

    @property
    def clustered_index(self) -> BPlusTree:
        if self._sparse is None:
            raise StorageError(f"{self.name} has no clustered index")
        return self._sparse

    def has_index_on(self, attr: str) -> bool:
        return attr == self.clustered_on or attr in self.secondary

    def records(self) -> Iterator[tuple]:
        return self.heap.records()

    # ------------------------------------------------------------------
    # scans (functional plane; callers charge I/O from the yields)
    # ------------------------------------------------------------------
    def scan_pages(self) -> Iterator[tuple[int, list[tuple]]]:
        """Full sequential scan: yields ``(page_no, records)``."""
        for page_no, page in self.heap.scan_pages():
            yield page_no, list(page.records())

    def clustered_scan(
        self, low: Any, high: Any
    ) -> tuple[list[int], Iterator[tuple[int, list[tuple]]]]:
        """Range scan through the clustered index.

        Returns the index page ids of the descent and an iterator of
        ``(data_page_no, matching_records)`` that stops at the first page
        past ``high`` (only the relevant portion of the file is read —
        Table 1 rows five and six).
        """
        tree = self.clustered_index
        get = self.schema.getter(self.clustered_on)  # type: ignore[arg-type]
        try:
            _leaf, start_key, _page = tree.floor_entry(low)
        except RecordNotFoundError:
            start_key = low
        path = tree.search(low)

        def pages() -> Iterator[tuple[int, list[tuple]]]:
            # Walk sparse-index entries in key order: after page splits the
            # physical order of data pages no longer matches key order, but
            # the index always does.
            for _leaf_pg, first_key, page_no in tree.range_entries(
                start_key, high
            ):
                if first_key > high:
                    return
                records = list(self.heap.pages[page_no].records())
                matches = [r for r in records if low <= get(r) <= high]
                yield page_no, matches

        return path.page_ids, pages()

    def secondary_range(
        self, attr: str, low: Any, high: Any
    ) -> tuple[list[int], Iterator[tuple[int, Any, RID]]]:
        """Range scan through a dense non-clustered index.

        Returns the descent page ids and an iterator of
        ``(index_leaf_page_id, key, rid)``; the caller fetches each data
        page with a random I/O — the behaviour that makes large pages hurt
        this access path (Figures 7-8).
        """
        tree = self._secondary(attr)
        path = tree.search(low)
        return path.page_ids, tree.range_entries(low, high)

    def exact_match_clustered(
        self, value: Any
    ) -> tuple[list[PageAccess], Optional[tuple[RID, tuple]]]:
        """Single-tuple lookup through the clustered index."""
        tree = self.clustered_index
        get = self.schema.getter(self.clustered_on)  # type: ignore[arg-type]
        path = tree.search(value)
        accesses = [
            PageAccess(tree.name, pid) for pid in path.page_ids
        ]
        try:
            _leaf, _key, page_no = tree.floor_entry(value)
        except RecordNotFoundError:
            return accesses, None
        accesses.append(PageAccess(self.name, page_no))
        for slot, record in self.heap.pages[page_no].slotted_records():
            if get(record) == value:
                return accesses, (RID(page_no, slot), record)
        return accesses, None

    def exact_match_secondary(
        self, attr: str, value: Any
    ) -> tuple[list[PageAccess], Optional[tuple[RID, tuple]]]:
        """Single-tuple lookup through a non-clustered index."""
        tree = self._secondary(attr)
        path = tree.search(value)
        accesses = [PageAccess(tree.name, pid) for pid in path.page_ids]
        rids = tree.lookup(value)
        if not rids:
            return accesses, None
        rid = rids[0]
        accesses.append(PageAccess(self.name, rid.page_no))
        return accesses, (rid, self.heap.fetch(rid))

    def fetch(self, rid: RID) -> tuple:
        return self.heap.fetch(rid)

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def append(self, record: tuple) -> tuple[RID, list[PageAccess]]:
        """Insert one record, maintaining all indexes.

        Heap organisation appends to the tail; clustered organisation
        places the record on the correct data page (splitting it when
        full), exactly like a B-tree data file.
        """
        if self.clustered_on is None:
            rid = self.heap.append(record)
            accesses = [PageAccess(self.name, rid.page_no, write=True)]
        else:
            rid, accesses = self._clustered_insert(record)
        for attr, tree in self.secondary.items():
            get = self.schema.getter(attr)
            touched = tree.insert(get(record), rid)
            self.deferred_update_entries += 1
            accesses.extend(
                PageAccess(tree.name, pid, write=True) for pid in touched[-2:]
            )
        return rid, accesses

    def _clustered_insert(self, record: tuple) -> tuple[RID, list[PageAccess]]:
        get = self.schema.getter(self.clustered_on)  # type: ignore[arg-type]
        key = get(record)
        tree = self.clustered_index
        accesses: list[PageAccess] = []
        try:
            _leaf, _first, page_no = tree.floor_entry(key)
        except RecordNotFoundError:
            page_no = 0 if self.heap.pages else -1
        path = tree.search(key)
        accesses.extend(PageAccess(tree.name, pid) for pid in path.page_ids)
        if page_no < 0:
            rid = self.heap.append(record)
            tree.insert(key, rid.page_no)
            accesses.append(PageAccess(self.name, rid.page_no, write=True))
            return rid, accesses
        page = self.heap.pages[page_no]
        if page.fits(self.heap.record_bytes):
            slot = page.insert(record, self.heap.record_bytes)
            self.heap._record_count += 1
            accesses.append(PageAccess(self.name, page_no, write=True))
            return RID(page_no, slot), accesses
        # Page split: move the upper half to a fresh tail page and index it.
        rid = self._split_data_page(page_no, record, key, get, tree, accesses)
        return rid, accesses

    def _split_data_page(
        self,
        page_no: int,
        record: tuple,
        key: Any,
        get: Callable[[tuple], Any],
        tree: BPlusTree,
        accesses: list[PageAccess],
    ) -> RID:
        page = self.heap.pages[page_no]
        everything = sorted(
            [rec for _slot, rec in page.slotted_records()] + [record], key=get
        )
        keep = everything[: len(everything) // 2]
        move = everything[len(everything) // 2:]
        # Clear and repack the original page with the lower half.
        for slot, _rec in list(page.slotted_records()):
            page.delete(slot, self.heap.record_bytes)
        placements: list[tuple[tuple, RID]] = []
        for rec in keep:
            slot = page.insert(rec, self.heap.record_bytes)
            placements.append((rec, RID(page_no, slot)))
        # Upper half goes to a brand-new tail page.
        from .page import Page

        new_page = Page(self.page_size)
        self.heap.pages.append(new_page)
        new_page_no = len(self.heap.pages) - 1
        for rec in move:
            slot = new_page.insert(rec, self.heap.record_bytes)
            placements.append((rec, RID(new_page_no, slot)))
        self.heap._record_count += 1  # the newly inserted record
        tree.insert(get(move[0]), new_page_no)
        accesses.append(PageAccess(self.name, page_no, write=True))
        accesses.append(PageAccess(self.name, new_page_no, write=True))
        # Fix secondary indexes for records whose RID changed.
        for attr, sec in self.secondary.items():
            sget = self.schema.getter(attr)
            for rec, new_rid in placements:
                if rec is record:
                    continue
                sec.delete(sget(rec))
                sec.insert(sget(rec), new_rid)
        return next(new_rid for rec, new_rid in placements if rec is record)

    def delete_record(self, rid: RID) -> tuple[tuple, list[PageAccess]]:
        """Delete the record at ``rid``, maintaining secondary indexes."""
        record = self.heap.delete(rid)
        accesses = [PageAccess(self.name, rid.page_no, write=True)]
        for attr, tree in self.secondary.items():
            get = self.schema.getter(attr)
            tree.delete(get(record), rid)
            self.deferred_update_entries += 1
            accesses.append(PageAccess(tree.name, 0, write=True))
        return record, accesses

    def replace_record(
        self, rid: RID, new_record: tuple
    ) -> tuple[tuple, list[PageAccess]]:
        """In-place modify, fixing any secondary index whose attr changed."""
        old = self.heap.replace(rid, new_record)
        accesses = [PageAccess(self.name, rid.page_no, write=True)]
        for attr, tree in self.secondary.items():
            get = self.schema.getter(attr)
            if get(old) != get(new_record):
                tree.delete(get(old), rid)
                tree.insert(get(new_record), rid)
                self.deferred_update_entries += 1
                accesses.append(PageAccess(tree.name, 0, write=True))
        return old, accesses

    def _secondary(self, attr: str) -> BPlusTree:
        try:
            return self.secondary[attr]
        except KeyError:
            raise StorageError(
                f"{self.name} has no secondary index on {attr!r}"
            ) from None
