"""The paper's benchmark query suite (Sections 5-7).

Builders return :class:`~repro.engine.plan.Query` objects accepted by both
:class:`~repro.engine.GammaMachine` and
:class:`~repro.teradata.TeradataMachine`, parameterised exactly the way the
paper parameterises them: selectivity, access-path organisation, key vs
non-key join attributes, and Local/Remote/Allnodes placement.
"""

from __future__ import annotations

from typing import Optional

from ..engine.plan import (
    AccessPath,
    AppendTuple,
    DeleteTuple,
    ExactMatch,
    JoinMode,
    JoinNode,
    ModifyTuple,
    Query,
    RangePredicate,
    ScanNode,
)
from ..errors import BenchmarkError
from .wisconsin import generate_tuples, selection_range


def selection_query(
    relation: str,
    n: int,
    selectivity: float,
    attr: str = "unique2",
    into: Optional[str] = None,
    forced_path: Optional[AccessPath] = None,
) -> Query:
    """A range selection retrieving ``selectivity`` of ``relation``.

    ``attr="unique2"`` probes the non-clustered organisation (or a plain
    scan on an unindexed copy); ``attr="unique1"`` probes the clustered
    organisation.
    """
    r = selection_range(n, selectivity, attr=attr)
    return Query.select(
        relation, RangePredicate(r.attr, r.low, r.high),
        into=into, forced_path=forced_path,
    )


def single_tuple_select(
    relation: str, value: int, into: Optional[str] = None
) -> Query:
    """The Table 1 single-tuple selection (exact match on the key)."""
    return Query.select(relation, ExactMatch("unique1", value), into=into)


def join_abprime(
    a_relation: str,
    bprime_relation: str,
    key: bool,
    mode: JoinMode = JoinMode.REMOTE,
    into: Optional[str] = None,
) -> Query:
    """joinABprime: A ⋈ Bprime, Bprime is 1/10th of A.

    ``key=True`` joins on unique1 (the partitioning attribute);
    ``key=False`` joins on unique2.  Bprime is the build (smaller) side.
    """
    attr = "unique1" if key else "unique2"
    return Query.join(
        ScanNode(bprime_relation), ScanNode(a_relation),
        on=(attr, attr), mode=mode, into=into,
    )


def join_aselb(
    a_relation: str,
    b_relation: str,
    n: int,
    key: bool,
    mode: JoinMode = JoinMode.REMOTE,
    into: Optional[str] = None,
) -> Query:
    """joinAselB: A ⋈ (10% selection of B), both of cardinality ``n``.

    The selection predicate is on the join attribute, so Gamma's optimizer
    can propagate it to A (turning the query into joinselAselB) while the
    Teradata executor still reads both relations in full — the asymmetry
    Section 6.1 analyses.
    """
    attr = "unique1" if key else "unique2"
    r = selection_range(n, 0.10, attr=attr)
    return Query.join(
        ScanNode(b_relation, RangePredicate(r.attr, r.low, r.high)),
        ScanNode(a_relation),
        on=(attr, attr), mode=mode, into=into,
    )


def join_cselaselb(
    a_relation: str,
    b_relation: str,
    c_relation: str,
    n: int,
    key: bool,
    mode: JoinMode = JoinMode.REMOTE,
    into: Optional[str] = None,
) -> Query:
    """joinCselAselB: C ⋈ (selA ⋈ selB).

    A and B are restricted to 10% on the join attribute and joined; the
    intermediate (n/10 tuples) is joined with C (n/10 tuples) so the final
    result contains exactly |C| tuples — the paper's construction.
    """
    attr = "unique1" if key else "unique2"
    r = selection_range(n, 0.10, attr=attr, offset_fraction=0.0)
    pred = RangePredicate(attr, r.low, r.high)
    inner = JoinNode(
        ScanNode(b_relation, pred), ScanNode(a_relation, pred),
        attr, attr, mode,
    )
    # The intermediate's B-side join attribute keeps its original name;
    # C's matching attribute spans the same 0..n/10-1 value range.
    return Query.join(
        ScanNode(c_relation), inner, on=(attr, attr), mode=mode, into=into,
    )


def update_suite(relation: str, n: int, seed: int = 987) -> dict[str, object]:
    """The six Table 3 update requests against ``relation``.

    Values are chosen to exist (or deliberately not exist) in a Wisconsin
    relation of ``n`` tuples.
    """
    if n < 1000:
        raise BenchmarkError("update suite expects n >= 1000")
    base = next(iter(generate_tuples(1, seed=seed)))
    fresh = (n + seed, n + seed) + base[2:]
    return {
        "append 1 tuple (no indices)": AppendTuple(relation, fresh),
        "append 1 tuple (one index)": AppendTuple(relation, fresh),
        "delete 1 tuple": DeleteTuple(relation, ExactMatch("unique1", n + seed)),
        "modify 1 tuple (key attribute)": ModifyTuple(
            relation, ExactMatch("unique1", n // 2), "unique1", n + seed + 1
        ),
        "modify 1 tuple (non-indexed attribute)": ModifyTuple(
            relation, ExactMatch("unique1", n // 3), "odd100", 13
        ),
        "modify 1 tuple (non-clustered index attribute)": ModifyTuple(
            relation, ExactMatch("unique2", n // 4), "unique2", n + seed + 2
        ),
    }
