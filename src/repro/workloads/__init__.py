"""Workloads: the Wisconsin benchmark generator and the paper's queries."""

from .wisconsin import (
    INT_ATTRS,
    STRING_ATTRS,
    TUPLE_BYTES,
    SelectivityRange,
    generate_tuples,
    selection_range,
    wisconsin_schema,
)

__all__ = [
    "INT_ATTRS",
    "STRING_ATTRS",
    "SelectivityRange",
    "TUPLE_BYTES",
    "generate_tuples",
    "selection_range",
    "wisconsin_schema",
]
