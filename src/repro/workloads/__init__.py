"""Workloads: the Wisconsin benchmark generator, the paper's queries, and
the multiuser workload subsystem (terminals, arrivals, query mixes)."""

# The Wisconsin names must bind before the multiuser import below: that
# import pulls in the engine package, whose machine module imports
# ``generate_tuples``/``wisconsin_schema`` back out of this (then still
# partially initialised) package.
from .wisconsin import (
    INT_ATTRS,
    STRING_ATTRS,
    TUPLE_BYTES,
    SelectivityRange,
    generate_hot_key_tuples,
    generate_skewed_tuples,
    generate_tuples,
    selection_range,
    wisconsin_schema,
)

from .multiuser import (  # noqa: E402
    MixEntry,
    QueryMix,
    WorkloadSpec,
    drive_workload,
    mixed_mix,
    mpl_sweep,
    selection_mix,
    update_mix,
)

__all__ = [
    "INT_ATTRS",
    "MixEntry",
    "QueryMix",
    "STRING_ATTRS",
    "SelectivityRange",
    "TUPLE_BYTES",
    "WorkloadSpec",
    "drive_workload",
    "generate_hot_key_tuples",
    "generate_skewed_tuples",
    "generate_tuples",
    "mixed_mix",
    "mpl_sweep",
    "selection_mix",
    "selection_range",
    "update_mix",
    "wisconsin_schema",
]
