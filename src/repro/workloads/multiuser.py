"""Multiuser workload generation: terminals, arrivals, and query mixes.

Section 6.2.1 defers Gamma's most interesting question: "The validity of
this expectation will be determined in future multiuser benchmarks of the
Gamma database machine."  This module opens that experiment.  It provides

* **closed-loop clients** — N simulated terminals that think (a seeded
  exponential think time, advanced purely by kernel events — there is no
  wall clock anywhere), submit a query drawn from a mix, wait for the
  answer, and think again;
* **open-loop arrivals** — a Poisson stream of submissions at a fixed
  rate, independent of completions (the overload-facing regime);
* **query mixes** — weighted mixtures over the paper's Wisconsin query
  suite (selection / join / update flavours per Tables 1-3), pluggable
  via :class:`MixEntry` builders;
* the machine-agnostic **runner** :func:`drive_workload`, which both
  :meth:`~repro.engine.machine.GammaMachine.run_workload` and
  :meth:`~repro.teradata.machine.TeradataMachine.run_workload` drive
  through a small session adapter.

Determinism: every random draw comes from a ``random.Random`` seeded
from :class:`WorkloadSpec.seed` (per-client streams are seeded
independently, so a client's behaviour does not depend on interleaving),
and all waiting is simulated time.  The same spec on the same machine
therefore reproduces the same timeline — and the same latency
percentiles — bit for bit.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, replace
from typing import Any, Callable, Generator, Optional, Union

from ..engine.admission import AdmissionController, AdmissionTimeout
from ..engine.plan import (
    AppendTuple,
    DeleteTuple,
    ExactMatch,
    JoinMode,
    ModifyTuple,
    Query,
    RangePredicate,
    ScanNode,
    UpdateRequest,
)
from ..errors import ConfigError, ReproError
from ..metrics import QueryRecord, WorkloadResult
from ..sim import Delay
from .wisconsin import generate_tuples, selection_range

Request = Union[Query, UpdateRequest]
RequestBuilder = Callable[[random.Random], Request]

#: A large offset keeping workload-appended keys clear of any loaded
#: Wisconsin relation's unique1 range.
_APPEND_KEY_BASE = 10_000_000


@dataclass(frozen=True)
class MixEntry:
    """One weighted arm of a query mix.

    ``make`` builds a fresh request from the caller's seeded RNG (so a
    mix can vary predicates per submission); ``priority`` feeds the
    admission controller's ``priority`` policy (lower = served first —
    the classic short-query-first trick is giving updates priority 0 and
    joins priority 2).
    """

    weight: float
    kind: str
    make: RequestBuilder
    priority: int = 0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError(
                f"mix entry {self.kind!r} needs a positive weight"
            )


class QueryMix:
    """A weighted mixture of request builders."""

    def __init__(self, name: str, entries: list[MixEntry]) -> None:
        if not entries:
            raise ConfigError(f"mix {name!r} has no entries")
        self.name = name
        self.entries = list(entries)
        self._total = sum(e.weight for e in self.entries)

    def draw(self, rng: random.Random) -> tuple[MixEntry, Request]:
        """One weighted draw: the chosen entry and a freshly built
        request."""
        point = rng.random() * self._total
        acc = 0.0
        entry = self.entries[-1]
        for candidate in self.entries:
            acc += candidate.weight
            if point < acc:
                entry = candidate
                break
        return entry, entry.make(rng)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        kinds = ", ".join(e.kind for e in self.entries)
        return f"<QueryMix {self.name}: {kinds}>"


# ---------------------------------------------------------------------------
# canonical mixes over the paper's workload
# ---------------------------------------------------------------------------


def _range_select(relation: str, n: int, selectivity: float) -> RequestBuilder:
    base = selection_range(n, selectivity)
    span = base.high - base.low

    def make(rng: random.Random) -> Request:
        # Slide the window uniformly over the attribute domain so
        # repeated submissions touch different (but same-sized) slices.
        low = rng.randrange(max(1, n - span))
        return Query.select(
            relation, RangePredicate(base.attr, low, low + span)
        )

    return make


def _exact_select(relation: str, n: int) -> RequestBuilder:
    def make(rng: random.Random) -> Request:
        return Query.select(
            relation, ExactMatch("unique1", rng.randrange(n))
        )

    return make


def _join_abprime(
    a_relation: str, bprime_relation: str, mode: JoinMode
) -> RequestBuilder:
    def make(_rng: random.Random) -> Request:
        return Query.join(
            ScanNode(bprime_relation), ScanNode(a_relation),
            on=("unique2", "unique2"), mode=mode,
        )

    return make


def _modify_nonindexed(relation: str, n: int) -> RequestBuilder:
    def make(rng: random.Random) -> Request:
        return ModifyTuple(
            relation, ExactMatch("unique1", rng.randrange(n)),
            "odd100", rng.randrange(100),
        )

    return make


def _append_fresh(relation: str, seed: int = 77) -> RequestBuilder:
    base = next(iter(generate_tuples(1, seed=seed)))

    def make(rng: random.Random) -> Request:
        key = _APPEND_KEY_BASE + rng.randrange(10**9)
        return AppendTuple(relation, (key, key) + base[2:])

    return make


def _delete_existing(relation: str, n: int) -> RequestBuilder:
    def make(rng: random.Random) -> Request:
        # A repeat draw of an already-deleted key simply affects 0 rows.
        return DeleteTuple(relation, ExactMatch("unique1", rng.randrange(n)))

    return make


def selection_mix(relation: str, n: int) -> QueryMix:
    """Table 1 flavours: exact-match, 1% and 10% range selections."""
    return QueryMix("selections", [
        MixEntry(4.0, "single-tuple select", _exact_select(relation, n)),
        MixEntry(4.0, "1% selection", _range_select(relation, n, 0.01)),
        MixEntry(2.0, "10% selection", _range_select(relation, n, 0.10)),
    ])


def update_mix(relation: str, n: int) -> QueryMix:
    """Table 3 flavours: append, delete, non-indexed modify."""
    return QueryMix("updates", [
        MixEntry(3.0, "modify non-indexed", _modify_nonindexed(relation, n)),
        MixEntry(2.0, "append", _append_fresh(relation)),
        MixEntry(1.0, "delete", _delete_existing(relation, n)),
    ])


def mixed_mix(
    a_relation: str,
    bprime_relation: str,
    n: int,
    mode: JoinMode = JoinMode.REMOTE,
) -> QueryMix:
    """The multiuser mix the paper's Section 6.2.1 argument is about:
    mostly selections, some single-tuple updates, an occasional
    joinABprime whose placement decides how much selection capacity the
    disk sites keep."""
    return QueryMix("mixed", [
        MixEntry(5.0, "single-tuple select", _exact_select(a_relation, n),
                 priority=0),
        MixEntry(4.0, "1% selection", _range_select(a_relation, n, 0.01),
                 priority=1),
        MixEntry(2.0, "10% selection", _range_select(a_relation, n, 0.10),
                 priority=1),
        MixEntry(2.0, "modify non-indexed",
                 _modify_nonindexed(a_relation, n), priority=0),
        MixEntry(1.0, "joinABprime",
                 _join_abprime(a_relation, bprime_relation, mode),
                 priority=2),
    ])


# ---------------------------------------------------------------------------
# the workload specification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadSpec:
    """How a multiuser run is shaped (all times in simulated seconds).

    Attributes:
        queries: Total requests submitted over the run.
        clients: Closed-loop terminals (ignored by open-loop arrivals).
        arrival: ``"closed"`` (terminals with think time) or ``"open"``
            (Poisson arrivals at ``arrival_rate``).
        think_time: Mean exponential think time per terminal.
        arrival_rate: Open-loop mean arrival rate (requests/second).
        mpl: Admission multiprogramming level (defaults to ``clients``
            for closed loop, 4 for open loop).
        policy: Admission queueing — ``"fifo"`` or ``"priority"``.
        timeout: Per-query bound on the admission-queue wait and on any
            single lock wait; ``None`` waits forever.
        seed: Master seed for every random draw in the run.
    """

    queries: int = 32
    clients: int = 4
    arrival: str = "closed"
    think_time: float = 0.5
    arrival_rate: float = 2.0
    mpl: Optional[int] = None
    policy: str = "fifo"
    timeout: Optional[float] = None
    seed: int = 1988

    def __post_init__(self) -> None:
        if self.queries < 1:
            raise ConfigError(f"workload needs >= 1 query, got {self.queries}")
        if self.clients < 1:
            raise ConfigError(f"workload needs >= 1 client, got {self.clients}")
        if self.arrival not in ("closed", "open"):
            raise ConfigError(
                f"unknown arrival process {self.arrival!r};"
                " expected 'closed' or 'open'"
            )
        if self.think_time < 0:
            raise ConfigError(f"negative think time {self.think_time}")
        if self.arrival == "open" and self.arrival_rate <= 0:
            raise ConfigError(
                f"open-loop arrivals need a positive rate,"
                f" got {self.arrival_rate}"
            )

    @property
    def resolved_mpl(self) -> int:
        if self.mpl is not None:
            return self.mpl
        return self.clients if self.arrival == "closed" else 4

    def with_mpl(self, mpl: int) -> "WorkloadSpec":
        """A copy of this spec at a different multiprogramming level."""
        return replace(self, mpl=mpl)

    def client_rng(self, client: int) -> random.Random:
        """The independent random stream for one client (or the arrival
        process, ``client=-1``): seeded from (seed, client) only, so a
        client's draws never depend on scheduling interleavings."""
        return random.Random(self.seed * 1_000_003 + client + 1)


# ---------------------------------------------------------------------------
# the machine-agnostic runner
# ---------------------------------------------------------------------------


def drive_workload(
    session: Any,
    spec: WorkloadSpec,
    mix: QueryMix,
    telemetry: Optional[Any] = None,
) -> WorkloadResult:
    """Run one workload against a machine session.

    ``session`` adapts a machine to the runner; it must expose

    * ``sim`` — the shared :class:`~repro.sim.Simulation` every arrival
      is scheduled into,
    * ``label`` — the machine name for the result, and
    * ``execute(index, request)`` — a generator that plans and runs one
      request to completion inside the shared simulation, raising on
      per-request failure (deadlock victim, lock timeout, ...).

    ``telemetry`` (an already-attached
    :class:`~repro.metrics.telemetry.TelemetrySampler`) additionally
    watches the admission controller and is fed every completion for
    sliding-window SLO tracking; it is passive, so results are
    bit-identical with or without it.

    Returns the :class:`~repro.metrics.WorkloadResult` with every
    request's :class:`~repro.metrics.QueryRecord`.
    """
    sim = session.sim
    admission = AdmissionController(
        sim, mpl=spec.resolved_mpl, policy=spec.policy, timeout=spec.timeout,
    )
    if telemetry is not None:
        telemetry.watch_admission(admission)
    records: list[QueryRecord] = []
    indexes = itertools.count()

    def perform(
        client: int, entry: MixEntry, request: Request
    ) -> Generator[Any, Any, None]:
        index = next(indexes)
        token = f"q{index}"
        submitted = sim.now
        try:
            yield from admission.admit(token, priority=entry.priority)
        except AdmissionTimeout as exc:
            record = QueryRecord(
                index, client, entry.kind, submitted,
                admitted=None, finished=sim.now,
                error=f"{type(exc).__name__}: {exc}",
            )
            records.append(record)
            if telemetry is not None:
                telemetry.observe_completion(record)
            return
        admitted = sim.now
        error: Optional[str] = None
        try:
            yield from session.execute(index, request)
        except ReproError as exc:
            error = f"{type(exc).__name__}: {exc}"
        finally:
            admission.release(token)
        record = QueryRecord(
            index, client, entry.kind, submitted,
            admitted=admitted, finished=sim.now, error=error,
        )
        records.append(record)
        if telemetry is not None:
            telemetry.observe_completion(record)

    if spec.arrival == "closed":
        counts = [
            spec.queries // spec.clients
            + (1 if i < spec.queries % spec.clients else 0)
            for i in range(spec.clients)
        ]

        def terminal(client: int, budget: int
                     ) -> Generator[Any, Any, None]:
            rng = spec.client_rng(client)
            for _ in range(budget):
                if spec.think_time > 0:
                    yield Delay(rng.expovariate(1.0 / spec.think_time))
                entry, request = mix.draw(rng)
                yield from perform(client, entry, request)

        for client, budget in enumerate(counts):
            if budget > 0:
                sim.spawn(terminal(client, budget), name=f"term{client}")
    else:

        def arrivals() -> Generator[Any, Any, None]:
            rng = spec.client_rng(-1)
            for _ in range(spec.queries):
                yield Delay(rng.expovariate(spec.arrival_rate))
                entry, request = mix.draw(rng)
                sim.spawn(
                    perform(-1, entry, request), name="arrival"
                )

        sim.spawn(arrivals(), name="arrivals")

    elapsed = sim.run()
    records.sort(key=lambda r: r.index)
    return WorkloadResult(
        machine=session.label,
        mix=mix.name,
        arrival=spec.arrival,
        clients=spec.clients,
        mpl=spec.resolved_mpl,
        policy=spec.policy,
        seed=spec.seed,
        elapsed=elapsed,
        records=records,
        admission=admission.as_dict(),
    )


def mpl_sweep(
    make_machine: Callable[[], Any],
    make_mix: Callable[[], QueryMix],
    spec: WorkloadSpec,
    mpls: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> list[WorkloadResult]:
    """Run the same workload at each multiprogramming level.

    A fresh machine and a fresh mix are built per point (updates in the
    mix mutate relations, so reusing one machine would couple the
    points), keeping every point — and therefore the whole sweep —
    bit-identical under a fixed seed.
    """
    results = []
    for mpl in mpls:
        machine = make_machine()
        results.append(
            machine.run_workload(make_mix(), spec.with_mpl(mpl))
        )
    return results
