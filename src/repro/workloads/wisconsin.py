"""The Wisconsin benchmark relation generator [BITT83].

Each relation has thirteen 4-byte integer attributes and three 52-byte
string attributes (208 bytes per tuple).  ``unique1`` and ``unique2`` are
independent random permutations of ``0..n-1`` — every tuple has a unique
value for each and the two are uncorrelated within a tuple, exactly as the
paper describes.  The remaining integers are derived from ``unique1``.

Selectivity predicates are ranges on ``unique1``/``unique2``: a predicate
``low <= unique2 < low + n//100`` retrieves exactly 1 % of the relation.

String handling: the benchmark queries in the paper never consult the
string attributes; they exist to pad the tuple to 208 bytes (byte widths
are declared in the schema and billed by the cost model regardless of the
Python value).  To keep 1 M-tuple relations resident, the default mode
stores shared placeholder strings; ``strings="full"`` generates the
classic unique 52-character values.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from itertools import accumulate
from typing import Iterator, Literal

from ..errors import BenchmarkError
from ..storage import Schema, int_attr, string_attr

#: Integer attribute names, in tuple order.
INT_ATTRS = (
    "unique1",
    "unique2",
    "two",
    "four",
    "ten",
    "twenty",
    "hundred",
    "thousand",
    "twothous",
    "fivethous",
    "tenthous",
    "odd100",
    "even100",
)

#: String attribute names, in tuple order after the integers.
STRING_ATTRS = ("stringu1", "stringu2", "string4")

#: Width of one Wisconsin tuple: 13*4 + 3*52 = 208 bytes.
TUPLE_BYTES = 208

_STRING4_CYCLE = (
    "A" + "x" * 50 + "A",
    "H" + "x" * 50 + "H",
    "O" + "x" * 50 + "O",
    "V" + "x" * 50 + "V",
)
_PLACEHOLDER = "P" + "x" * 50 + "P"

StringsMode = Literal["cheap", "full"]


def wisconsin_schema() -> Schema:
    """The 16-attribute, 208-byte Wisconsin schema."""
    attrs = [int_attr(name) for name in INT_ATTRS]
    attrs += [string_attr(name) for name in STRING_ATTRS]
    return Schema(attrs)


def _unique_string(value: int) -> str:
    """The classic 52-byte unique string: a base-26 prefix padded with x."""
    letters = []
    v = value
    for _ in range(7):
        letters.append(chr(ord("A") + v % 26))
        v //= 26
    prefix = "".join(reversed(letters))
    return prefix + "x" * (52 - len(prefix))


def generate_tuples(
    n: int,
    seed: int = 0,
    strings: StringsMode = "cheap",
) -> Iterator[tuple]:
    """Yield ``n`` Wisconsin tuples (deterministic for a given seed)."""
    if n < 1:
        raise BenchmarkError(f"relation needs >= 1 tuple, got {n}")
    rng = random.Random(seed)
    unique1 = list(range(n))
    rng.shuffle(unique1)
    unique2 = list(range(n))
    rng.shuffle(unique2)
    full = strings == "full"
    for i in range(n):
        u1 = unique1[i]
        u2 = unique2[i]
        if full:
            s1 = _unique_string(u1)
            s2 = _unique_string(u2)
        else:
            s1 = _PLACEHOLDER
            s2 = _PLACEHOLDER
        yield (
            u1,
            u2,
            u1 % 2,
            u1 % 4,
            u1 % 10,
            u1 % 20,
            u1 % 100,
            u1 % 1000,
            u1 % 2000,
            u1 % 5000,
            u1 % 10000,
            (u1 % 50) * 2 + 1,
            (u1 % 50) * 2 + 2,
            s1,
            s2,
            _STRING4_CYCLE[i % 4],
        )


#: Largest accepted value for the ``skew`` knob (a Zipf exponent much
#: beyond this concentrates nearly the whole relation on a handful of
#: keys, which the ``hot_fraction`` generator models more directly).
MAX_SKEW = 1.5


def _zipf_sampler(domain: int, skew: float, rng: random.Random):
    """Value → ``0..domain-1`` sampler with Zipf(``skew``) frequencies.

    Inverse-CDF over the cumulative weights ``1/k^skew``; ``skew=0`` is
    the uniform distribution.  Pure function of ``rng``'s stream, so a
    seeded generator reproduces the same draws on every platform.
    """
    weights = [1.0 / (k ** skew) for k in range(1, domain + 1)]
    cumulative = list(accumulate(weights))
    total = cumulative[-1]

    def draw() -> int:
        return bisect_left(cumulative, rng.random() * total)

    return draw


def generate_skewed_tuples(
    n: int,
    seed: int = 0,
    skew: float = 0.0,
    skew_attr: str = "unique2",
    domain: int | None = None,
    strings: StringsMode = "cheap",
) -> Iterator[tuple]:
    """Wisconsin tuples with one attribute drawn from a Zipf distribution.

    ``skew_attr`` (default ``unique2``, the paper's usual join/selection
    attribute) is replaced by i.i.d. draws from Zipf(``skew``) over
    ``0..domain-1`` (``domain`` defaults to ``n``): ``skew=0.0`` is
    uniform, ``skew=1.0`` the classic Zipf where the hottest value draws
    ≈``1/ln(domain)`` more weight per rank, and the cap ``skew=1.5``
    concentrates most of the relation on a handful of keys.  Everything
    else — ``unique1`` a seeded permutation, the derived ints, the
    strings — matches :func:`generate_tuples`, so skewed relations load
    and cost identically per tuple.

    Deterministic for a given ``(n, seed, skew, domain)``.
    """
    if not 0.0 <= skew <= MAX_SKEW:
        raise BenchmarkError(
            f"skew {skew} out of [0, {MAX_SKEW}] (Zipf exponent)"
        )
    domain = n if domain is None else domain
    if domain < 1:
        raise BenchmarkError(f"domain needs >= 1 value, got {domain}")

    def zipf_draws(rng: random.Random):
        return _zipf_sampler(domain, skew, rng)

    yield from _generate_with_sampler(
        n, seed, zipf_draws, skew_attr, strings
    )


def generate_hot_key_tuples(
    n: int,
    seed: int = 0,
    hot_fraction: float = 0.5,
    hot_value: int = 0,
    skew_attr: str = "unique2",
    domain: int | None = None,
    strings: StringsMode = "cheap",
) -> Iterator[tuple]:
    """Wisconsin tuples where one single value carries ``hot_fraction``
    of the relation — the worst case for hash partitioning, and the case
    fragment-replicate (``hot-broadcast``) redistribution is built for.

    Each tuple's ``skew_attr`` is ``hot_value`` with probability
    ``hot_fraction``, else uniform over ``0..domain-1``.  Deterministic
    for a given ``(n, seed, hot_fraction, domain)``.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise BenchmarkError(
            f"hot_fraction {hot_fraction} out of [0, 1]"
        )
    domain = n if domain is None else domain

    def hot_draws(rng: random.Random):
        def draw() -> int:
            if rng.random() < hot_fraction:
                return hot_value
            return rng.randrange(domain)

        return draw

    yield from _generate_with_sampler(
        n, seed, hot_draws, skew_attr, strings
    )


def _generate_with_sampler(
    n: int, seed: int, make_draw, skew_attr: str, strings: StringsMode
) -> Iterator[tuple]:
    if n < 1:
        raise BenchmarkError(f"relation needs >= 1 tuple, got {n}")
    if skew_attr not in INT_ATTRS:
        raise BenchmarkError(
            f"skew_attr {skew_attr!r} is not a Wisconsin integer attribute"
        )
    rng = random.Random(seed)
    unique1 = list(range(n))
    rng.shuffle(unique1)
    draw = make_draw(rng)
    skew_pos = INT_ATTRS.index(skew_attr)
    full = strings == "full"
    for i in range(n):
        u1 = unique1[i]
        skewed = draw()
        if full:
            s1 = _unique_string(u1)
            s2 = _unique_string(skewed)
        else:
            s1 = _PLACEHOLDER
            s2 = _PLACEHOLDER
        record = [
            u1,
            skewed,
            u1 % 2,
            u1 % 4,
            u1 % 10,
            u1 % 20,
            u1 % 100,
            u1 % 1000,
            u1 % 2000,
            u1 % 5000,
            u1 % 10000,
            (u1 % 50) * 2 + 1,
            (u1 % 50) * 2 + 2,
        ]
        if skew_pos != 1:
            record[1] = u1
            record[skew_pos] = skewed
        yield (*record, s1, s2, _STRING4_CYCLE[i % 4])


@dataclass(frozen=True)
class SelectivityRange:
    """A range predicate on a unique attribute with known selectivity."""

    attr: str
    low: int
    high: int  # inclusive

    @property
    def count(self) -> int:
        return self.high - self.low + 1


def selection_range(
    n: int,
    selectivity: float,
    attr: str = "unique2",
    offset_fraction: float = 0.25,
) -> SelectivityRange:
    """A range on a unique attribute retrieving ``selectivity * n`` tuples.

    ``selectivity=0.0`` produces an empty range below any stored key (the
    paper's 0 % queries still scan but emit nothing).
    """
    if not 0.0 <= selectivity <= 1.0:
        raise BenchmarkError(f"selectivity {selectivity} out of [0, 1]")
    k = round(n * selectivity)
    if k == 0:
        return SelectivityRange(attr, -2, -1)
    low = int(n * offset_fraction)
    if low + k > n:
        low = n - k
    return SelectivityRange(attr, low, low + k - 1)
