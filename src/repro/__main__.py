"""Command-line entry points.

``python -m repro [n_tuples]``
    Loads a Wisconsin relation on the paper's 8+8-node Gamma
    configuration and a 20-AMP Teradata DBC/1012, runs a miniature
    Table 1/2 workload on both, and prints the comparison.

``python -m repro profile [query]``
    EXPLAIN ANALYZE: runs one query with the profiler attached and
    prints the annotated plan tree, phase timeline, critical path and
    bottleneck verdict.  ``--json`` / ``--trace`` dump the profile and
    the Perfetto-loadable execution trace to files.

``python -m repro workload``
    Multiuser workload: N terminals (or an open-loop Poisson stream)
    submit a query mix against one live simulation behind admission
    control; prints per-query latency percentiles and throughput.
    ``--sweep`` runs the MPL 1→16 throughput–latency sweep instead;
    ``--json`` dumps the result (or sweep profile) to a file.

``python -m repro skew``
    Skew sweep: joinABprime with a Zipf-distributed join attribute
    under every redistribution strategy (hash / range / vhash /
    hot-broadcast), reporting per-strategy speedup and per-node
    utilisation spread; ``--json`` dumps the sweep profile.

``python -m repro hybrid``
    Hybrid-join spill-policy sweep: joinABprime under optimizer
    estimate error (the plan sees a build side 4x smaller/larger than
    reality) at several memory budgets, comparing the static plan
    against reactive bucket demotion and fully dynamic recursive
    re-partitioning; ``--json`` dumps the sweep profile.

``python -m repro scaleup``
    Machine-size sweep: the 1 % selection and joinABprime at 8, 64,
    256 and 1000 disk sites, printing the speedup-vs-sites table
    (simulated response) plus per-point simulator throughput;
    ``--json`` dumps the sweep profile.

``python -m repro matrix``
    The experiment matrix against the persistent result store under
    ``benchmarks/results/store/``: ``list`` registered experiments and
    their stored grid points; ``run [name …]`` resumes experiments —
    only grid points missing from the store execute (``--force``
    re-runs and replaces); ``report`` prints the regenerated tables
    from stored runs, and ``report --perf`` the events/cpu-second
    trend across commits; ``diff SHA1 SHA2`` compares the perf records
    of two commits.

``python -m repro monitor [mix]``
    Telemetry monitor: an open-loop Poisson workload with the sampler
    attached — per-interval cluster time series (utilisation, queues,
    locks, memory), sliding-window latency percentiles, and the
    overload/convoy/skew detectors — rendered as an ASCII sparkline
    dashboard.  ``--json`` dumps the full telemetry document;
    ``--trace`` writes the counter tracks as a Perfetto-loadable trace.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .bench import build_gamma, build_teradata, run_stored
from .workloads.queries import join_abprime, selection_query


def _demo(n: int) -> int:
    print(f"Gamma database machine reproduction — {n:,}-tuple demo")
    print("(times are modeled seconds on the 1988 hardware)\n")
    relations = [("heap", n, "heap"), ("idx", n, "indexed"),
                 ("Bp", n // 10, "heap")]
    gamma = build_gamma(relations=relations)
    teradata = build_teradata(relations=relations)
    workload = {
        "1% selection (heap)": lambda into: selection_query(
            "heap", n, 0.01, into=into),
        "10% selection (heap)": lambda into: selection_query(
            "heap", n, 0.10, into=into),
        "1% selection (indexed)": lambda into: selection_query(
            "idx", n, 0.01, into=into),
        "joinABprime": lambda into: join_abprime("heap", "Bp", key=False,
                                                 into=into),
    }
    print(f"{'query':<26}{'gamma':>10}{'teradata':>12}")
    for label, builder in workload.items():
        g = run_stored(gamma, builder)
        t = run_stored(teradata, builder)
        print(f"{label:<26}{g.response_time:>9.2f}s{t.response_time:>11.2f}s")
    print("\nRun `pytest benchmarks/ --benchmark-only` to regenerate every"
          " table and figure of the paper.")
    return 0


def _profile(args: argparse.Namespace) -> int:
    from .metrics import TraceBuffer, explain_analyze

    n = args.tuples
    relations = [("A", n, "heap"), ("Bp", n // 10, "heap")]
    if args.machine == "gamma":
        machine = build_gamma(relations=relations)
    else:
        machine = build_teradata(relations=relations)

    builders = {
        "joinABprime": lambda into: join_abprime("A", "Bp", key=False,
                                                 into=into),
        "select1": lambda into: selection_query("A", n, 0.01, into=into),
        "select10": lambda into: selection_query("A", n, 0.10, into=into),
    }
    query = builders[args.query]("profile_result")

    trace: Optional[TraceBuffer] = None
    if args.trace is not None:
        if args.machine != "gamma":
            print("note: --trace is Gamma-only; ignoring", file=sys.stderr)
        else:
            trace = TraceBuffer()
    if trace is not None:
        result = machine.run(query, trace=trace, profile=True)
    else:
        result = machine.run(query, profile=True)
    machine.drop_relation("profile_result")

    print(explain_analyze(result))
    if args.json is not None:
        with open(args.json, "w") as fh:
            fh.write(result.profile.to_json())
        print(f"\nprofile written to {args.json}")
    if trace is not None:
        trace.write(args.trace)
        print(f"trace written to {args.trace}")
    return 0


def _workload(args: argparse.Namespace) -> int:
    import json

    from .bench.workload import (
        machine_builder,
        make_mix,
        workload_mpl_experiment,
    )
    from .workloads import WorkloadSpec

    if args.sweep:
        report, profile = workload_mpl_experiment(
            n=args.tuples, queries=args.queries, clients=args.clients,
            mix=args.mix, think_time=args.think_time, policy=args.policy,
            timeout=args.timeout, seed=args.seed,
            machines=(
                ("gamma", "teradata") if args.machine == "both"
                else (args.machine,)
            ),
        )
        print(report.to_markdown())
        if args.json is not None:
            with open(args.json, "w") as fh:
                json.dump(profile, fh, indent=2)
            print(f"sweep profile written to {args.json}")
        return 0 if report.all_checks_pass else 1

    spec = WorkloadSpec(
        queries=args.queries, clients=args.clients, arrival=args.arrival,
        think_time=args.think_time, arrival_rate=args.rate, mpl=args.mpl,
        policy=args.policy, timeout=args.timeout, seed=args.seed,
    )
    machines = (
        ["gamma", "teradata"] if args.machine == "both" else [args.machine]
    )
    payload = []
    for name in machines:
        machine = machine_builder(name, args.tuples)()
        result = machine.run_workload(make_mix(args.mix, args.tuples), spec)
        payload.append(result.to_dict())
        latency = result.latency
        print(
            f"{name}: {result.completed}/{result.submitted} ok"
            f" ({result.failed} failed), {result.throughput:.3f} q/s over"
            f" {result.elapsed:.2f}s simulated"
        )
        print(
            f"  latency  p50={latency.p50:.3f}s p95={latency.p95:.3f}s"
            f" p99={latency.p99:.3f}s mean={latency.mean:.3f}s"
            f" max={latency.max:.3f}s"
        )
        print(
            f"  queueing mean={result.queue_wait.mean:.3f}s"
            f" peak_queue={result.admission['peak_queue']}"
            f" timeouts={result.admission['timeouts']}"
        )
        for kind, stats in result.by_kind().items():
            print(
                f"    {kind:<24} n={stats.count:<4} mean={stats.mean:.3f}s"
                f" p95={stats.p95:.3f}s"
            )
        if result.errors_by_type():
            print(f"  errors: {result.errors_by_type()}")
    if args.json is not None:
        with open(args.json, "w") as fh:
            json.dump(payload if len(payload) > 1 else payload[0], fh,
                      indent=2)
        print(f"result written to {args.json}")
    return 0


def _monitor(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from .bench.workload import machine_builder, make_mix
    from .metrics import (
        SlidingWindowTracker,
        TelemetrySampler,
        TraceBuffer,
        detect_all,
        render_dashboard,
    )
    from .workloads import WorkloadSpec

    spec = WorkloadSpec(
        queries=args.queries, arrival="open", arrival_rate=args.rate,
        mpl=args.mpl, timeout=args.timeout, seed=args.seed,
    )
    machines = (
        ["gamma", "teradata"] if args.machine == "both" else [args.machine]
    )
    payload = []
    for name in machines:
        slo = SlidingWindowTracker(window=args.window)
        sampler = TelemetrySampler(interval=args.interval, cap=args.cap,
                                   slo=slo)
        machine = machine_builder(name, args.tuples)()
        result = machine.run_workload(
            make_mix(args.mix, args.tuples), spec, telemetry=sampler)
        alerts = detect_all(sampler)
        warmup = slo.warmup_end()
        print(f"== {name}: {args.mix} mix, open-loop {args.rate:g} q/s,"
              f" mpl={spec.mpl}, {sampler.samples} samples"
              f" @ {args.interval:g}s ==")
        print(render_dashboard(sampler, alerts=alerts, width=args.width))
        final = slo.snapshot(result.elapsed)
        print(
            f"{name}: {result.completed}/{result.submitted} ok"
            f" ({result.failed} failed), {result.throughput:.3f} q/s over"
            f" {result.elapsed:.2f}s simulated"
        )
        print(
            f"  window[{args.window:g}s] p50={final['p50']:.3f}s"
            f" p95={final['p95']:.3f}s p99={final['p99']:.3f}s"
            f" error_rate={final['error_rate']:.3f}"
        )
        print("  warm-up ends"
              + (f" t={warmup:g}s" if warmup is not None else ": n/a"))
        payload.append({
            "machine": name,
            "mix": args.mix,
            "spec": dataclasses.asdict(spec),
            "result": {k: v for k, v in result.to_dict().items()
                       if k != "records"},
            "telemetry": sampler.to_dict(),
            "alerts": [alert.as_dict() for alert in alerts],
            "warmup_end": warmup,
        })
        if args.trace is not None:
            path = args.trace
            if len(machines) > 1:
                stem, dot, ext = path.rpartition(".")
                path = f"{stem}.{name}{dot}{ext}" if dot else f"{path}.{name}"
            trace = TraceBuffer()
            sampler.export_counters(trace)
            trace.write(path)
            print(f"  counter trace written to {path}")
    if args.json is not None:
        with open(args.json, "w") as fh:
            json.dump(payload if len(payload) > 1 else payload[0], fh,
                      indent=2, sort_keys=True)
        print(f"telemetry document written to {args.json}")
    return 0


def _skew(args: argparse.Namespace) -> int:
    import json

    from .bench.skew import skew_join_experiment

    report, profile = skew_join_experiment(
        n=args.tuples,
        skews=tuple(args.skews),
        strategies=tuple(args.strategies),
        site_counts=(args.min_sites, args.max_sites),
        seed=args.seed,
    )
    print(report.to_markdown())
    if args.json is not None:
        with open(args.json, "w") as fh:
            json.dump(profile, fh, indent=2)
        print(f"sweep profile written to {args.json}")
    return 0 if report.all_checks_pass else 1


def _hybrid(args: argparse.Namespace) -> int:
    import json

    from .bench.ablations import ablation_hybrid_dynamic_experiment

    report, profile = ablation_hybrid_dynamic_experiment(
        n=args.tuples,
        errors=tuple(args.errors),
        memory_ratios=tuple(args.ratios),
        policies=tuple(args.policies),
    )
    print(report.to_markdown())
    if args.json is not None:
        with open(args.json, "w") as fh:
            json.dump(profile, fh, indent=2)
        print(f"sweep profile written to {args.json}")
    return 0 if report.all_checks_pass else 1


def _scaleup(args: argparse.Namespace) -> int:
    import json

    from .bench.scaleup import scaleup_experiment

    report, profile = scaleup_experiment(
        n=args.tuples,
        site_counts=[s for s in args.sites if s <= args.max_sites],
    )
    print(report.to_markdown())
    for point in profile["points"]:
        print(
            f"  {point['query']:<12} @{point['sites']:<5} sites:"
            f" {point['events']:>11,} events in {point['wall_s']:6.1f}s"
            f" wall ({point['events_per_s']:>10,.0f} ev/s)"
        )
    if args.json is not None:
        with open(args.json, "w") as fh:
            json.dump(profile, fh, indent=2)
        print(f"sweep profile written to {args.json}")
    return 0 if report.all_checks_pass else 1


def _matrix(args: argparse.Namespace) -> int:
    import os

    from .bench.perf import (
        format_perf_diff,
        format_perf_trend,
        perf_diff,
        perf_trend,
    )
    from .bench.registry import REGISTRY, names, run_registered
    from .bench.store import ResultStore

    store = ResultStore(args.store)
    command = args.matrix_command or "list"

    if command == "list":
        print(f"{'experiment':<30}{'kind':<11}{'ver':<5}{'stored':>7}"
              "  label")
        for entry in REGISTRY:
            spec = entry.spec
            stored = len(store.records(spec.name, spec.version))
            print(f"{spec.name:<30}{spec.kind:<11}{spec.version:<5}"
                  f"{stored:>7}  {spec.label}")
        perf_count = len(store.records("perf"))
        if perf_count:
            print(f"{'perf':<30}{'perf':<11}{'v1':<5}{perf_count:>7}"
                  "  simulator events/cpu-s per commit")
        for experiment, bad in sorted(store.corrupt_lines.items()):
            print(f"note: {experiment}.jsonl skipped {bad} corrupt"
                  " line(s); ResultStore.compact() rewrites it clean")
        return 0

    if command == "diff":
        rows = perf_diff(args.sha_a, args.sha_b, store, scale=args.scale)
        print(format_perf_diff(args.sha_a, args.sha_b, rows))
        counts = {}
        for record in store.records():
            if record.experiment == "perf":
                continue
            for sha in (args.sha_a, args.sha_b):
                if record.git_sha.startswith(sha):
                    counts[sha] = counts.get(sha, 0) + 1
        print(
            "\nsimulated-result records recorded at"
            f" {args.sha_a[:10]}: {counts.get(args.sha_a, 0)},"
            f" {args.sha_b[:10]}: {counts.get(args.sha_b, 0)}"
            "  (simulated points are deterministic — version tags, not"
            " shas, invalidate them)"
        )
        return 0 if rows else 1

    if command == "report" and args.perf:
        print(format_perf_trend(perf_trend(store, scale=args.scale)))
        return 0

    # run, or report without --perf.  The committed store and artifacts
    # are recorded with profiling on (the "profiling does not perturb"
    # checks); match that by default so a warm store resumes cleanly.
    os.environ.setdefault("GAMMA_BENCH_PROFILE", "1")
    selected = list(args.experiments) or names()
    failures = []
    for name in selected:
        run = run_registered(
            name, store,
            force=getattr(args, "force", False),
            jobs=getattr(args, "jobs", None),
        )
        if command == "report":
            print(run.report.to_markdown())
        status = "ok" if run.report.all_checks_pass else "CHECKS FAILED"
        print(f"{name}: {run.executed} executed, {run.cached} cached"
              f" of {run.total} grid points — {status}")
        if not run.report.all_checks_pass:
            failures.append(name)
    if failures:
        print(f"shape checks failed: {', '.join(failures)}")
        return 1
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Gamma database machine reproduction.",
    )
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="Gamma vs Teradata comparison demo")
    demo.add_argument("n_tuples", nargs="?", type=int, default=10_000)

    prof = sub.add_parser(
        "profile", help="EXPLAIN ANALYZE one query (annotated plan tree, "
        "phase timeline, critical path, bottleneck verdict)",
    )
    prof.add_argument(
        "query", nargs="?", default="joinABprime",
        choices=["joinABprime", "select1", "select10"],
    )
    prof.add_argument("--machine", choices=["gamma", "teradata"],
                      default="gamma")
    prof.add_argument("--tuples", type=int, default=10_000)
    prof.add_argument("--json", metavar="PATH",
                      help="write the profile as JSON")
    prof.add_argument("--trace", metavar="PATH",
                      help="also record a Perfetto trace (Gamma only)")

    wl = sub.add_parser(
        "workload", help="multiuser workload: terminals submitting a query"
        " mix behind admission control (--sweep for the MPL 1→16 curve)",
    )
    wl.add_argument("--machine", choices=["gamma", "teradata", "both"],
                    default="gamma")
    wl.add_argument("--mix", choices=["selection", "update", "mixed"],
                    default="mixed")
    wl.add_argument("--tuples", type=int, default=1_000,
                    help="size of the A relation (Bprime is a tenth)")
    wl.add_argument("--queries", type=int, default=32,
                    help="total requests submitted over the run")
    wl.add_argument("--clients", type=int, default=4,
                    help="closed-loop terminals")
    wl.add_argument("--arrival", choices=["closed", "open"],
                    default="closed")
    wl.add_argument("--think-time", type=float, default=0.2,
                    help="mean terminal think time (simulated seconds)")
    wl.add_argument("--rate", type=float, default=2.0,
                    help="open-loop arrival rate (queries/second)")
    wl.add_argument("--mpl", type=int, default=None,
                    help="multiprogramming level (default: #clients)")
    wl.add_argument("--policy", choices=["fifo", "priority"],
                    default="fifo")
    wl.add_argument("--timeout", type=float, default=None,
                    help="admission-queue + lock-wait timeout (seconds)")
    wl.add_argument("--seed", type=int, default=1988)
    wl.add_argument("--sweep", action="store_true",
                    help="run the MPL 1→16 throughput-latency sweep")
    wl.add_argument("--json", metavar="PATH",
                    help="write the result (or sweep profile) as JSON")

    sk = sub.add_parser(
        "skew", help="skew sweep: joinABprime with a Zipf join attribute"
        " under each redistribution strategy",
    )
    sk.add_argument("--tuples", type=int, default=10_000,
                    help="size of the probe relation (build is a tenth)")
    sk.add_argument("--skews", type=float, nargs="+",
                    default=[0.0, 0.75, 1.5],
                    help="Zipf exponents to sweep (0 = uniform)")
    sk.add_argument("--strategies", nargs="+",
                    default=["hash", "range", "vhash", "hot-broadcast"],
                    choices=["hash", "range", "vhash", "hot-broadcast"],
                    help="redistribution strategies to compare")
    sk.add_argument("--min-sites", type=int, default=1,
                    help="speedup reference configuration")
    sk.add_argument("--max-sites", type=int, default=8,
                    help="widest configuration (profiled for spread)")
    sk.add_argument("--seed", type=int, default=1988)
    sk.add_argument("--json", metavar="PATH",
                    help="write the sweep profile as JSON")

    hy = sub.add_parser(
        "hybrid", help="hybrid-join spill-policy sweep: estimate error x"
        " memory budget x policy (static/demote/dynamic)",
    )
    hy.add_argument("--tuples", type=int, default=100_000,
                    help="size of the probe relation (build is a tenth;"
                    " the shape checks are calibrated at 100,000)")
    hy.add_argument("--errors", type=float, nargs="+",
                    default=[0.25, 1.0, 4.0],
                    help="estimate-error factors to sweep (0.25 = the"
                    " plan expects a build side 4x smaller than reality)")
    hy.add_argument("--ratios", type=float, nargs="+",
                    default=[1.0, 0.45, 0.2],
                    help="join memory as a fraction of the build side")
    hy.add_argument("--policies", nargs="+",
                    default=["static", "demote", "dynamic"],
                    choices=["static", "demote", "dynamic"],
                    help="spill policies to compare")
    hy.add_argument("--json", metavar="PATH",
                    help="write the sweep profile as JSON")

    su = sub.add_parser(
        "scaleup", help="machine-size sweep: selection + joinABprime at"
        " 8→1000 disk sites (speedup-vs-sites table)",
    )
    su.add_argument("--tuples", type=int, default=100_000,
                    help="size of the A relation (Bprime is a tenth)")
    su.add_argument("--sites", type=int, nargs="+",
                    default=[8, 64, 256, 1000],
                    help="disk-site counts to sweep")
    su.add_argument("--max-sites", type=int, default=1000,
                    help="drop swept configurations above this size"
                    " (the 1000-site points cost minutes of wall clock)")
    su.add_argument("--json", metavar="PATH",
                    help="write the sweep profile as JSON")

    mx = sub.add_parser(
        "matrix", help="experiment matrix: list/run/report/diff against"
        " the persistent result store",
    )
    mx.add_argument("--store", metavar="DIR", default=None,
                    help="result-store directory (default"
                    " benchmarks/results/store; GAMMA_BENCH_STORE)")
    mxsub = mx.add_subparsers(dest="matrix_command")
    mxsub.add_parser(
        "list", help="registered experiments and their stored points")
    mxrun = mxsub.add_parser(
        "run", help="run experiments, resuming from the store (only"
        " missing grid points execute)")
    mxrun.add_argument("experiments", nargs="*",
                       help="experiment names (default: all registered)")
    mxrun.add_argument("--force", action="store_true",
                       help="re-execute and replace stored grid points")
    mxrun.add_argument("--jobs", type=int, default=None,
                       help="sweep worker processes"
                       " (default: GAMMA_BENCH_JOBS or cpu count)")
    mxrep = mxsub.add_parser(
        "report", help="print regenerated reports from the store"
        " (--perf: events/cpu-second trend across commits)")
    mxrep.add_argument("experiments", nargs="*",
                       help="experiment names (default: all registered)")
    mxrep.add_argument("--perf", action="store_true",
                       help="print the simulator perf trend instead")
    mxrep.add_argument("--scale", type=int, default=None,
                       help="restrict the --perf trend to one scale")
    mxdiff = mxsub.add_parser(
        "diff", help="compare stored perf records between two commits")
    mxdiff.add_argument("sha_a", help="older commit (prefix ok)")
    mxdiff.add_argument("sha_b", help="newer commit (prefix ok)")
    mxdiff.add_argument("--scale", type=int, default=None,
                        help="restrict the comparison to one scale")

    mon = sub.add_parser(
        "monitor", help="telemetry monitor: open-loop workload with sampled"
        " cluster time series, sliding-window SLOs and overload detectors,"
        " rendered as a sparkline dashboard",
    )
    mon.add_argument("mix", nargs="?", default="mixed",
                     choices=["selection", "update", "mixed"])
    mon.add_argument("--machine", choices=["gamma", "teradata", "both"],
                     default="gamma")
    mon.add_argument("--tuples", type=int, default=1_000,
                     help="size of the A relation (Bprime is a tenth)")
    mon.add_argument("--queries", type=int, default=64,
                     help="total requests submitted over the run")
    mon.add_argument("--rate", type=float, default=8.0,
                     help="open-loop arrival rate (queries/second)")
    mon.add_argument("--mpl", type=int, default=8,
                     help="multiprogramming level")
    mon.add_argument("--timeout", type=float, default=None,
                     help="admission-queue + lock-wait timeout (seconds)")
    mon.add_argument("--seed", type=int, default=1988)
    mon.add_argument("--interval", type=float, default=0.25,
                     help="sampling cadence (simulated seconds)")
    mon.add_argument("--window", type=float, default=4.0,
                     help="SLO sliding-window width (simulated seconds)")
    mon.add_argument("--cap", type=int, default=None,
                     help="ring-buffer cap per series (default unbounded)")
    mon.add_argument("--width", type=int, default=60,
                     help="sparkline width (columns)")
    mon.add_argument("--json", metavar="PATH",
                     help="write the telemetry document as JSON")
    mon.add_argument("--trace", metavar="PATH",
                     help="write the counter tracks as a Perfetto trace")

    # Bare `python -m repro [n]` keeps its historical meaning.
    raw = argv[1:]
    if not raw or (len(raw) == 1 and raw[0].lstrip("-").isdigit()):
        raw = ["demo", *raw]
    args = parser.parse_args(raw)

    if args.command == "profile":
        return _profile(args)
    if args.command == "workload":
        return _workload(args)
    if args.command == "skew":
        return _skew(args)
    if args.command == "hybrid":
        return _hybrid(args)
    if args.command == "scaleup":
        return _scaleup(args)
    if args.command == "matrix":
        return _matrix(args)
    if args.command == "monitor":
        return _monitor(args)
    return _demo(args.n_tuples)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
