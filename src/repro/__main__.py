"""Command-line entry points.

``python -m repro [n_tuples]``
    Loads a Wisconsin relation on the paper's 8+8-node Gamma
    configuration and a 20-AMP Teradata DBC/1012, runs a miniature
    Table 1/2 workload on both, and prints the comparison.

``python -m repro profile [query]``
    EXPLAIN ANALYZE: runs one query with the profiler attached and
    prints the annotated plan tree, phase timeline, critical path and
    bottleneck verdict.  ``--json`` / ``--trace`` dump the profile and
    the Perfetto-loadable execution trace to files.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .bench import build_gamma, build_teradata, run_stored
from .workloads.queries import join_abprime, selection_query


def _demo(n: int) -> int:
    print(f"Gamma database machine reproduction — {n:,}-tuple demo")
    print("(times are modeled seconds on the 1988 hardware)\n")
    relations = [("heap", n, "heap"), ("idx", n, "indexed"),
                 ("Bp", n // 10, "heap")]
    gamma = build_gamma(relations=relations)
    teradata = build_teradata(relations=relations)
    workload = {
        "1% selection (heap)": lambda into: selection_query(
            "heap", n, 0.01, into=into),
        "10% selection (heap)": lambda into: selection_query(
            "heap", n, 0.10, into=into),
        "1% selection (indexed)": lambda into: selection_query(
            "idx", n, 0.01, into=into),
        "joinABprime": lambda into: join_abprime("heap", "Bp", key=False,
                                                 into=into),
    }
    print(f"{'query':<26}{'gamma':>10}{'teradata':>12}")
    for label, builder in workload.items():
        g = run_stored(gamma, builder)
        t = run_stored(teradata, builder)
        print(f"{label:<26}{g.response_time:>9.2f}s{t.response_time:>11.2f}s")
    print("\nRun `pytest benchmarks/ --benchmark-only` to regenerate every"
          " table and figure of the paper.")
    return 0


def _profile(args: argparse.Namespace) -> int:
    from .metrics import TraceBuffer, explain_analyze

    n = args.tuples
    relations = [("A", n, "heap"), ("Bp", n // 10, "heap")]
    if args.machine == "gamma":
        machine = build_gamma(relations=relations)
    else:
        machine = build_teradata(relations=relations)

    builders = {
        "joinABprime": lambda into: join_abprime("A", "Bp", key=False,
                                                 into=into),
        "select1": lambda into: selection_query("A", n, 0.01, into=into),
        "select10": lambda into: selection_query("A", n, 0.10, into=into),
    }
    query = builders[args.query]("profile_result")

    trace: Optional[TraceBuffer] = None
    if args.trace is not None:
        if args.machine != "gamma":
            print("note: --trace is Gamma-only; ignoring", file=sys.stderr)
        else:
            trace = TraceBuffer()
    if trace is not None:
        result = machine.run(query, trace=trace, profile=True)
    else:
        result = machine.run(query, profile=True)
    machine.drop_relation("profile_result")

    print(explain_analyze(result))
    if args.json is not None:
        with open(args.json, "w") as fh:
            fh.write(result.profile.to_json())
        print(f"\nprofile written to {args.json}")
    if trace is not None:
        trace.write(args.trace)
        print(f"trace written to {args.trace}")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Gamma database machine reproduction.",
    )
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="Gamma vs Teradata comparison demo")
    demo.add_argument("n_tuples", nargs="?", type=int, default=10_000)

    prof = sub.add_parser(
        "profile", help="EXPLAIN ANALYZE one query (annotated plan tree, "
        "phase timeline, critical path, bottleneck verdict)",
    )
    prof.add_argument(
        "query", nargs="?", default="joinABprime",
        choices=["joinABprime", "select1", "select10"],
    )
    prof.add_argument("--machine", choices=["gamma", "teradata"],
                      default="gamma")
    prof.add_argument("--tuples", type=int, default=10_000)
    prof.add_argument("--json", metavar="PATH",
                      help="write the profile as JSON")
    prof.add_argument("--trace", metavar="PATH",
                      help="also record a Perfetto trace (Gamma only)")

    # Bare `python -m repro [n]` keeps its historical meaning.
    raw = argv[1:]
    if not raw or (len(raw) == 1 and raw[0].lstrip("-").isdigit()):
        raw = ["demo", *raw]
    args = parser.parse_args(raw)

    if args.command == "profile":
        return _profile(args)
    return _demo(args.n_tuples)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
