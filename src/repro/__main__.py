"""Command-line demo: ``python -m repro [n_tuples]``.

Loads a Wisconsin relation on the paper's 8+8-node Gamma configuration
and a 20-AMP Teradata DBC/1012, runs a miniature Table 1/2 workload on
both, and prints the comparison.
"""

from __future__ import annotations

import sys

from .bench import build_gamma, build_teradata, run_stored
from .workloads.queries import join_abprime, selection_query


def main(argv: list[str]) -> int:
    n = int(argv[1]) if len(argv) > 1 else 10_000
    print(f"Gamma database machine reproduction — {n:,}-tuple demo")
    print("(times are modeled seconds on the 1988 hardware)\n")
    relations = [("heap", n, "heap"), ("idx", n, "indexed"),
                 ("Bp", n // 10, "heap")]
    gamma = build_gamma(relations=relations)
    teradata = build_teradata(relations=relations)
    workload = {
        "1% selection (heap)": lambda into: selection_query(
            "heap", n, 0.01, into=into),
        "10% selection (heap)": lambda into: selection_query(
            "heap", n, 0.10, into=into),
        "1% selection (indexed)": lambda into: selection_query(
            "idx", n, 0.01, into=into),
        "joinABprime": lambda into: join_abprime("heap", "Bp", key=False,
                                                 into=into),
    }
    print(f"{'query':<26}{'gamma':>10}{'teradata':>12}")
    for label, builder in workload.items():
        g = run_stored(gamma, builder)
        t = run_stored(teradata, builder)
        print(f"{label:<26}{g.response_time:>9.2f}s{t.response_time:>11.2f}s")
    print("\nRun `pytest benchmarks/ --benchmark-only` to regenerate every"
          " table and figure of the paper.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
