"""Hardware models: CPUs, disks, interconnects and machine configurations."""

from .configs import KB, MB, GammaConfig, TeradataConfig
from .costs import DEFAULT_GAMMA_COSTS, GammaCosts
from .cpu import INTEL_80286, VAX_11_750, CpuModel
from .disk import FUJITSU_M2333, HITACHI_DK815, DiskDrive, DiskModel
from .network import (
    GAMMA_NETWORK,
    YNET_NETWORK,
    Interconnect,
    NetworkInterface,
    NetworkModel,
)

__all__ = [
    "CpuModel",
    "DEFAULT_GAMMA_COSTS",
    "DiskDrive",
    "DiskModel",
    "FUJITSU_M2333",
    "GAMMA_NETWORK",
    "GammaConfig",
    "GammaCosts",
    "HITACHI_DK815",
    "INTEL_80286",
    "Interconnect",
    "KB",
    "MB",
    "NetworkInterface",
    "NetworkModel",
    "TeradataConfig",
    "VAX_11_750",
    "YNET_NETWORK",
]
