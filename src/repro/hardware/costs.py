"""Instruction-count budgets for Gamma's software path.

Every piece of CPU work the engine performs is expressed as an instruction
count here and converted to time through the node's
:class:`~repro.hardware.cpu.CpuModel`.  The values were fitted once against
the Gamma columns of Tables 1 and 2 of the paper (see EXPERIMENTS.md for the
residuals) and are frozen; benchmarks and tests must not re-tune them.

Fitting anchors from the paper:

* 1 % non-indexed selection of the 100 k relation, 8 processors, 4 KB pages
  ≈ 13.8 s ⇒ ≈500 instructions/tuple of scan path on a 0.6 MIPS CPU.
* "with a 2 Kbyte disk page the system is disk bound and once the page size
  is increased to 16 Kbytes the system becomes CPU bound" ⇒ per-page CPU
  cost small relative to per-tuple cost.
* 0 % indexed selection: 0.25 s on 1 processor vs 0.58 s on 8 ⇒ operator
  start-up is message-dominated (4 scheduling messages per operator per
  node, ≈7 ms each, serialised through the scheduler).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class GammaCosts:
    """Instruction budgets (counts, not seconds) for engine actions."""

    # Storage / scan path -------------------------------------------------
    page_io_setup: float = 1000.0
    """Buffer-manager + WiSS overhead per page read or written."""

    read_tuple: float = 300.0
    """Fetch a tuple from a slotted page into operator workspace."""

    apply_predicate: float = 200.0
    """Evaluate one compiled selection predicate."""

    result_tuple: float = 1000.0
    """Copy a qualifying tuple into a *network* output buffer.

    Fitted from the paper's joinABprime vs joinAselB asymmetry: "the cost
    to distribute and probe the 100,000 tuples outweigh the difference in
    reading a 100,000 and a 10,000 tuple file" — shipping a tuple costs
    roughly three times reading-and-testing it."""

    result_tuple_local: float = 200.0
    """Hand a qualifying tuple to a process on the *same* node.  NOSE
    short-circuits intra-node messages through shared memory, so no
    network-buffer copy happens; this asymmetry is what makes Local joins
    on the partitioning attribute the fastest configuration (Figure 9)."""

    store_tuple: float = 300.0
    """Store-operator work to place one tuple on a result page."""

    # Split table / communications ----------------------------------------
    split_hash: float = 300.0
    """Hash a tuple's attribute through the split table."""

    packet_send: float = 1500.0
    """Per-packet protocol work on the sending CPU (sliding-window
    datagram software; ~2.5 ms per packet on the 0.6 MIPS VAX)."""

    packet_receive: float = 1500.0
    """Per-packet protocol work on the receiving CPU."""

    packet_short_circuit: float = 200.0
    """CPU cost of an intra-node packet: the communications software
    short-circuits same-processor messages, making them "much less
    expensive than their corresponding inter-node packets" — the whole
    basis of the Local-join advantage in Figure 9."""

    # Index path -----------------------------------------------------------
    btree_level: float = 600.0
    """Binary search within one B+-tree node."""

    index_entry: float = 150.0
    """Examine one leaf entry during an index range scan."""

    # Join path ------------------------------------------------------------
    hash_table_insert: float = 400.0
    """Insert one building tuple into the in-memory hash table."""

    hash_table_probe: float = 250.0
    """Probe the hash table with one tuple."""

    join_result_tuple: float = 400.0
    """Compose one joined output tuple."""

    bitfilter_set: float = 30.0
    """Set one bit in a bit-vector filter (build side)."""

    bitfilter_test: float = 30.0
    """Test one bit in a bit-vector filter (probe side)."""

    spool_tuple: float = 350.0
    """Move one tuple to/from an overflow spool file buffer."""

    # Sorting --------------------------------------------------------------
    sort_tuple_pass: float = 350.0
    """Compare/move one tuple during one pass of an external sort."""

    # Projection -----------------------------------------------------------
    project_tuple: float = 200.0
    """Build one projected tuple from its source tuple."""

    duplicate_check: float = 250.0
    """Probe/insert the duplicate-elimination hash table for one tuple."""

    # Aggregates -----------------------------------------------------------
    aggregate_update: float = 150.0
    """Fold one tuple into a running aggregate."""

    aggregate_group_lookup: float = 250.0
    """Locate/create the group cell for one tuple (hash group-by)."""

    # Updates --------------------------------------------------------------
    update_tuple: float = 800.0
    """Modify one tuple in place (latch, log deferred-update entry)."""

    index_maintenance: float = 1200.0
    """Insert/delete one entry in a B+-tree, including deferred-update
    file bookkeeping (the cost visible between rows 1 and 2 of Table 3)."""

    # Control --------------------------------------------------------------
    operator_startup: float = 3000.0
    """Process activation at a node when an operator control packet
    arrives."""

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigError(f"cost {name} must be non-negative")


#: Frozen default budgets used by every benchmark.
DEFAULT_GAMMA_COSTS = GammaCosts()
