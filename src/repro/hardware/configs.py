"""Machine configurations for the two database machines under test.

``GammaConfig.paper_default()`` reproduces the Section 2 hardware: 17 VAX
11/750s (8 with Fujitsu disks, 8 diskless query processors, 1 scheduler) on
an 80 Mbit/s token ring; ``TeradataConfig.paper_default()`` reproduces the
Section 3 DBC/1012: 4 IFPs, 20 AMPs with two Hitachi drives each, a 12 MB/s
Y-net.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigError
from .costs import GammaCosts
from .cpu import INTEL_80286, VAX_11_750, CpuModel
from .disk import FUJITSU_M2333, HITACHI_DK815, DiskModel
from .network import GAMMA_NETWORK, YNET_NETWORK, NetworkModel

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class GammaConfig:
    """Tunable description of a Gamma machine instance.

    Attributes:
        n_disk_sites: Processors with a disk attached (selection/update/
            store run here).
        n_diskless: Diskless query processors (Remote/Allnodes joins).
        page_size: Disk page size in bytes (the paper sweeps 2-32 KB).
        packet_size: Network packet payload in bytes.
        memory_per_node: RAM per processor (2 MB on the real machine).
        join_memory_total: Aggregate bytes available for join hash tables,
            held constant when varying the number of processors — exactly
            the experimental control described in the paper's introduction.
        hash_table_overhead: Space expansion factor of a tuple stored in a
            hash table (buckets, pointers).
        host_startup_s: Host-side parse/optimize/compile latency per query.
        sched_messages_per_operator: Control messages exchanged between the
            scheduler and each node per operator (the paper counts 4).
        use_bit_filters: Whether the optimizer inserts bit-vector filters
            into split tables for joins.
        prefetch_depth: Pages of read-ahead between the disk process and a
            consuming operator (double buffering = 2).
    """

    n_disk_sites: int = 8
    n_diskless: int = 8
    page_size: int = 4 * KB
    packet_size: int = 2 * KB
    memory_per_node: int = 2 * MB
    join_memory_total: int = int(4.8 * MB)
    hash_table_overhead: float = 1.2
    host_startup_s: float = 0.12
    sched_messages_per_operator: int = 4
    use_bit_filters: bool = False
    prefetch_depth: int = 2
    join_algorithm: str = "simple"
    """Overflow handling: ``simple`` (the paper's measured algorithm) or
    ``hybrid`` (the parallel Hybrid hash join the Conclusions announce as
    its replacement — "The solution we are in the process of adopting is
    to replace the current algorithm with a parallel version of the Hybrid
    hash-join algorithm")."""
    hybrid_spill_policy: str = "static"
    """How the Hybrid hash join reacts when a node's memory-resident
    build partition exceeds its capacity (optimizer estimate error):
    ``static`` (plan from the estimate; excess build tuples overflow to a
    spool and partition-0 probes are routed both to memory and to disk),
    ``demote`` (halve the resident key region and evict its buckets to a
    new spooled partition until the table fits), or ``dynamic`` (start
    optimistically all-in-memory, demote on demand, and recursively
    re-partition spooled partitions that still exceed memory during the
    resolution sweep).  ``static`` reproduces the planned algorithm
    bit-identically when capacity is never exceeded."""
    hybrid_partitions: int = 0
    """Force the Hybrid join's spooled-partition count (0 = plan it from
    the optimizer estimate; 1 = assume everything fits in memory)."""
    hybrid_max_recursion: int = 3
    """Depth bound for recursive re-partitioning under the ``dynamic``
    spill policy; beyond it the join falls back to chunk-and-rescan."""
    hybrid_estimate_factor: float = 1.0
    """Multiplier applied to the optimizer's build-side cardinality
    estimate as seen by the Hybrid join — the estimate-error knob the A4
    ablation sweeps (0.25 = the optimizer underestimates 4x)."""
    use_recovery_server: bool = False
    """Enable the recovery server of the Conclusions ("We also intend on
    implementing a recovery server that will collect log records from each
    processor"): operators that mutate permanent data ship log records to
    a dedicated logging node before their writes commit."""
    log_record_bytes: int = 48
    """Log-record header size; the body adds the tuple's bytes."""
    deferred_update_ios: int = 4
    """Page I/Os to create/write/force a deferred-update file when an
    update goes through an index structure (the Halloween-avoidance
    mechanism whose cost separates rows 1 and 2 of Table 3)."""
    cpu: CpuModel = VAX_11_750
    disk: DiskModel = FUJITSU_M2333
    network: NetworkModel = GAMMA_NETWORK
    costs: GammaCosts = field(default_factory=GammaCosts)

    def __post_init__(self) -> None:
        if self.n_disk_sites < 1:
            raise ConfigError("need at least one disk site")
        if self.n_diskless < 0:
            raise ConfigError("n_diskless must be non-negative")
        if self.page_size < 512:
            raise ConfigError("page_size must be at least 512 bytes")
        if self.page_size > self.disk.track_size:
            raise ConfigError(
                f"page_size {self.page_size} exceeds disk track size "
                f"{self.disk.track_size}"
            )
        if self.packet_size < 128:
            raise ConfigError("packet_size must be at least 128 bytes")
        if self.join_memory_total <= 0:
            raise ConfigError("join_memory_total must be positive")
        if self.hash_table_overhead < 1.0:
            raise ConfigError("hash_table_overhead must be >= 1.0")
        if self.prefetch_depth < 1:
            raise ConfigError("prefetch_depth must be >= 1")
        if self.join_algorithm not in ("simple", "hybrid"):
            raise ConfigError(
                f"join_algorithm must be 'simple' or 'hybrid',"
                f" got {self.join_algorithm!r}"
            )
        if self.hybrid_spill_policy not in ("static", "demote", "dynamic"):
            raise ConfigError(
                f"hybrid_spill_policy must be 'static', 'demote' or"
                f" 'dynamic', got {self.hybrid_spill_policy!r}"
            )
        if self.hybrid_partitions < 0:
            raise ConfigError("hybrid_partitions must be >= 0 (0 = plan)")
        if self.hybrid_max_recursion < 0:
            raise ConfigError("hybrid_max_recursion must be non-negative")
        if self.hybrid_estimate_factor <= 0:
            raise ConfigError("hybrid_estimate_factor must be positive")

    @classmethod
    def paper_default(cls) -> "GammaConfig":
        """The configuration used for Tables 1-3: 8+8 nodes, 4 KB pages."""
        return cls()

    def with_sites(self, n_disk_sites: int, n_diskless: int | None = None) -> "GammaConfig":
        """Resize the machine, keeping aggregate join memory constant.

        The paper: "we decided instead to keep the total (summed across all
        processors) amount of buffer space constant when varying the number
        of processors."
        """
        if n_diskless is None:
            n_diskless = n_disk_sites
        return replace(self, n_disk_sites=n_disk_sites, n_diskless=n_diskless)

    def with_page_size(self, page_size: int) -> "GammaConfig":
        return replace(self, page_size=page_size)

    def with_join_memory(self, join_memory_total: int) -> "GammaConfig":
        return replace(self, join_memory_total=join_memory_total)

    def with_hybrid(
        self,
        spill_policy: str | None = None,
        partitions: int | None = None,
        max_recursion: int | None = None,
        estimate_factor: float | None = None,
    ) -> "GammaConfig":
        """The Hybrid hash join with the given spill strategy."""
        changes: dict = {"join_algorithm": "hybrid"}
        if spill_policy is not None:
            changes["hybrid_spill_policy"] = spill_policy
        if partitions is not None:
            changes["hybrid_partitions"] = partitions
        if max_recursion is not None:
            changes["hybrid_max_recursion"] = max_recursion
        if estimate_factor is not None:
            changes["hybrid_estimate_factor"] = estimate_factor
        return replace(self, **changes)

    @property
    def join_memory_per_node(self) -> int:
        """Hash-table bytes per joining node (Remote mode: the diskless
        processors; Local mode: the disk sites)."""
        nodes = max(1, self.n_diskless or self.n_disk_sites)
        return self.join_memory_total // nodes


@dataclass(frozen=True)
class TeradataConfig:
    """Tunable description of the Teradata DBC/1012 under test."""

    n_amps: int = 20
    n_ifps: int = 4
    disks_per_amp: int = 2
    page_size: int = 4 * KB
    insert_ios_per_tuple: float = 3.0
    """Single-tuple-optimised INSERT INTO path: ~3 I/Os per stored tuple
    (permanent journal + transient journal + data block), per [DEWI87]."""

    sort_memory_per_amp: int = 1 * MB
    host_startup_s: float = 0.35
    cpu: CpuModel = INTEL_80286
    disk: DiskModel = HITACHI_DK815
    network: NetworkModel = YNET_NETWORK

    def __post_init__(self) -> None:
        if self.n_amps < 1:
            raise ConfigError("need at least one AMP")
        if self.disks_per_amp < 1:
            raise ConfigError("need at least one disk per AMP")
        if self.page_size < 512:
            raise ConfigError("page_size must be at least 512 bytes")
        if self.insert_ios_per_tuple < 0:
            raise ConfigError("insert_ios_per_tuple must be non-negative")

    @classmethod
    def paper_default(cls) -> "TeradataConfig":
        """Section 3: 4 IFPs, 20 AMPs, 40 DSUs, release 2.3."""
        return cls()
