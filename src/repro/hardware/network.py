"""Interconnect model: token ring, per-node network interfaces, messages.

Gamma's 80 Mbit/s Proteon token ring is never the bottleneck (the paper says
so explicitly); the 4 Mbit/s Unibus path between a VAX's memory and its ring
interface is.  The model therefore charges every inter-node message to three
FIFO servers — sender interface, shared ring, receiver interface — while
messages between processes on the *same* node are "short-circuited" by the
communications software and only pay a small CPU-side copy cost.

The paper's two anchor numbers are honoured:

* "Assuming seven milliseconds for a small inter-node message" — the fixed
  protocol overhead charged at the sender interface.
* 2 KB network packets moving through a 4 Mbit/s interface ⇒ ~4.1 ms of
  interface occupancy per packet, which is what throttles high-selectivity
  queries (Figures 2, 5, 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..errors import ConfigError
from ..sim import Delay, Server, Use


@dataclass(frozen=True)
class NetworkModel:
    """Timing parameters for the interconnect.

    Attributes:
        ring_bandwidth: Shared ring bandwidth, bytes/second.
        interface_bandwidth: Per-node memory-to-network path, bytes/second.
        message_overhead_s: Fixed protocol cost per message at the sender.
        short_circuit_s: Cost of an intra-node message (software copy).
    """

    ring_bandwidth: float = 80e6 / 8
    interface_bandwidth: float = 4e6 / 8
    message_overhead_s: float = 0.0055
    short_circuit_s: float = 0.0006

    def __post_init__(self) -> None:
        if self.ring_bandwidth <= 0 or self.interface_bandwidth <= 0:
            raise ConfigError("bandwidths must be positive")
        if self.message_overhead_s < 0 or self.short_circuit_s < 0:
            raise ConfigError("overheads must be non-negative")

    def ring_time(self, nbytes: int) -> float:
        return nbytes / self.ring_bandwidth

    def interface_time(self, nbytes: int) -> float:
        return nbytes / self.interface_bandwidth


class NetworkInterface:
    """The per-node memory↔network path (a Unibus on Gamma)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.server = Server(f"{name}.nic")
        self.messages = 0
        self.bytes_sent = 0


class Interconnect:
    """A shared ring plus one :class:`NetworkInterface` per node.

    ``transfer`` is a process generator: the caller is suspended for as long
    as the message occupies the sender interface, the ring and the receiver
    interface in turn — which is exactly the latency a Gamma operator
    experiences before it can reuse its output buffer.
    """

    def __init__(self, model: NetworkModel, node_names: list[str]) -> None:
        self.model = model
        self.ring = Server("ring")
        self.interfaces = {
            name: NetworkInterface(name) for name in node_names
        }
        self.messages_sent = 0
        self.messages_short_circuited = 0
        self.bytes_on_ring = 0

    def add_node(self, name: str) -> None:
        if name in self.interfaces:
            raise ConfigError(f"duplicate node name {name!r}")
        self.interfaces[name] = NetworkInterface(name)

    def transfer(
        self, src: str, dst: str, nbytes: int
    ) -> Generator[Any, Any, None]:
        """Move ``nbytes`` from node ``src`` to node ``dst``.

        Same-node messages are short-circuited: a fixed small delay, no
        interface or ring occupancy (matching Section 2 of the paper).
        """
        if src == dst:
            self.messages_short_circuited += 1
            yield Delay(self.model.short_circuit_s)
            return
        self.messages_sent += 1
        self.bytes_on_ring += nbytes
        src_nic = self.interfaces[src]
        dst_nic = self.interfaces[dst]
        src_nic.messages += 1
        src_nic.bytes_sent += nbytes
        yield Use(
            src_nic.server,
            self.model.message_overhead_s + self.model.interface_time(nbytes),
        )
        yield Use(self.ring, self.model.ring_time(nbytes))
        yield Use(dst_nic.server, self.model.interface_time(nbytes))

    def transfer_fast(
        self,
        sim: Any,
        src: str,
        dst: str,
        nbytes: int,
        store: Any,
        message: Any,
    ) -> None:
        """Fire-and-forget transfer delivering ``message`` into ``store``.

        Event-for-event identical to spawning a courier process around
        :meth:`transfer` followed by ``Put(store, message)``: the same
        server ``_use`` calls happen at the same simulated times in the
        same sequence order, so timelines and ``events_processed`` are
        bit-identical — without a generator frame, a :class:`Process`, or
        the per-courier entry in the simulation's process list (which at
        1000 sites would retain a million finished couriers).

        Couriers cannot deadlock (input-port stores are unbounded), so the
        lost deadlock diagnostics are moot.  Profilers attribute service by
        walking ``Process.parent``; callers must keep the generator path
        when a profiler is attached.
        """
        model = self.model
        if src == dst:
            self.messages_short_circuited += 1
            stages: tuple = ((None, model.short_circuit_s),)
        else:
            self.messages_sent += 1
            self.bytes_on_ring += nbytes
            src_nic = self.interfaces[src]
            dst_nic = self.interfaces[dst]
            src_nic.messages += 1
            src_nic.bytes_sent += nbytes
            iface_time = model.interface_time(nbytes)
            stages = (
                (src_nic.server, model.message_overhead_s + iface_time),
                (self.ring, model.ring_time(nbytes)),
                (dst_nic.server, iface_time),
            )
        _FastCourier(sim, stages, store, message)


class _FastCourier:
    """Callback chain replicating a courier generator's event sequence.

    Each invocation advances one stage: the server ``Use`` intervals (or
    the short-circuit delay), then the ``Put`` into the destination store,
    then one final no-op resume — the exact events (and sequence-counter
    draws) the generator courier produced, so simulated timelines stay
    bit-identical with ~6x less per-courier interpreter work.
    """

    __slots__ = ("sim", "stages", "i", "store", "message")

    def __init__(
        self,
        sim: Any,
        stages: tuple[tuple[Optional[Server], float], ...],
        store: Any,
        message: Any,
    ) -> None:
        self.sim = sim
        self.stages = stages
        self.i = 0
        self.store = store
        self.message = message
        # The spawn-resume event that would have started the generator.
        sim._schedule_now(self)

    def __call__(self, _value: Any = None) -> None:
        i = self.i
        self.i = i + 1
        stages = self.stages
        if i < len(stages):
            server, duration = stages[i]
            if server is None:
                self.sim.call_after(duration, self)
            else:
                server._use(self.sim, duration, self, None)
        elif i == len(stages):
            self.store._put(self.sim, self.message, self)
        # else: the final resume after the Put — the event the generator
        # spent raising StopIteration; nothing left to do.


#: Gamma's Proteon 80 Mbit/s token ring behind 4 Mbit/s Unibus interfaces.
GAMMA_NETWORK = NetworkModel()

#: The Teradata Y-net: 12 MB/s aggregate, generous per-node injection rate
#: (the Y-net is a combining tree, so the shared stage dominates).
YNET_NETWORK = NetworkModel(
    ring_bandwidth=12e6,
    interface_bandwidth=1.5e6,
    message_overhead_s=0.004,
    short_circuit_s=0.0006,
)
