"""CPU timing model.

The paper's processors are VAX 11/750s rated at roughly 0.6 MIPS; the
Teradata AMPs use Intel 80286s.  All CPU work in the simulator is expressed
as instruction counts (see :mod:`repro.hardware.costs`) and converted to
seconds here.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class CpuModel:
    """Converts instruction budgets into simulated service times.

    Attributes:
        mips: Delivered millions of instructions per second.
    """

    mips: float

    def __post_init__(self) -> None:
        if self.mips <= 0:
            raise ConfigError(f"mips must be positive, got {self.mips}")

    @property
    def instructions_per_second(self) -> float:
        return self.mips * 1e6

    def time_for(self, instructions: float) -> float:
        """Seconds of CPU service needed to retire ``instructions``."""
        if instructions < 0:
            raise ConfigError(f"negative instruction count {instructions}")
        return instructions / self.instructions_per_second


#: The VAX 11/750 used by every Gamma processor (Section 5.2.2 of the paper
#: calls it "the VAX 11/750 CPU (0.6 MIP)").
VAX_11_750 = CpuModel(mips=0.6)

#: The Intel 80286 used by Teradata IFPs and AMPs.  Nominally ~1 MIPS, but
#: the DBC/1012 software path per tuple is much longer than Gamma's compiled
#: predicates; the difference is captured in repro.teradata.costs, not here.
INTEL_80286 = CpuModel(mips=1.0)
