"""Disk drive timing model and the per-drive FIFO service centre.

The model separates *sequential* page transfers (no seek; occasional
track-to-track head movement) from *random* accesses (average seek plus
half-rotation latency plus transfer).  This split is what makes the paper's
index results come out right: a non-clustered index retrieval pays one random
access per tuple, while a file scan streams at media rate.

The default parameters are fitted to the Fujitsu 8" 333 MB drives from the
paper: a 40 KB track and "for a 32 Kbyte disk page, the transfer time is 13
milliseconds — which is very close to the time required to perform a random
disk seek".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..errors import ConfigError
from ..sim import Server, Simulation, Use


@dataclass(frozen=True)
class DiskModel:
    """Timing parameters for one disk drive.

    Attributes:
        avg_seek_s: Average random seek time (seconds).
        rotational_latency_s: Average rotational delay (half a revolution).
        transfer_rate: Media transfer rate in bytes/second.
        track_size: Bytes per track (limits the largest sensible page).
        sequential_overhead_s: Positioning cost charged per page even on a
            sequential stream.  1987 drives had no track buffer: by the time
            WiSS issued the next page request the inter-record gap had
            rotated past, so back-to-back page reads lose a full revolution
            (16.7 ms at 3600 rpm).  This term is why small pages make the
            system disk bound and why growing the page towards the track
            size pays off (Figures 5-6 of the paper).
    """

    avg_seek_s: float = 0.018
    rotational_latency_s: float = 0.00833
    transfer_rate: float = 2.46e6
    track_size: int = 40 * 1024
    sequential_overhead_s: float = 0.0167

    def __post_init__(self) -> None:
        if self.transfer_rate <= 0:
            raise ConfigError("transfer_rate must be positive")
        if self.track_size <= 0:
            raise ConfigError("track_size must be positive")
        if min(self.avg_seek_s, self.rotational_latency_s,
               self.sequential_overhead_s) < 0:
            raise ConfigError("disk timing parameters must be non-negative")

    def transfer_time(self, nbytes: int) -> float:
        """Pure media transfer time for ``nbytes``."""
        if nbytes < 0:
            raise ConfigError(f"negative transfer size {nbytes}")
        return nbytes / self.transfer_rate

    def sequential_access_time(self, nbytes: int) -> float:
        """Time to read/write the *next* page of a sequential stream."""
        return self.transfer_time(nbytes) + self.sequential_overhead_s

    def random_access_time(self, nbytes: int) -> float:
        """Time for an isolated page access: seek + latency + transfer."""
        return (
            self.avg_seek_s + self.rotational_latency_s
            + self.transfer_time(nbytes)
        )


#: Fujitsu 8" 333 MB drives attached to Gamma's disk sites.
FUJITSU_M2333 = DiskModel()

#: Hitachi 8.8" 525 MB drives in the Teradata DSUs (slightly slower media).
HITACHI_DK815 = DiskModel(
    avg_seek_s=0.023,
    rotational_latency_s=0.00833,
    transfer_rate=1.9e6,
    track_size=32 * 1024,
    sequential_overhead_s=0.00833,
)


class DiskDrive:
    """A single drive: a FIFO :class:`Server` plus position tracking.

    The drive remembers the last ``(file_id, page_no)`` it touched so that
    callers may pass ``sequential=None`` ("auto") and get sequential timing
    exactly when the request continues the previous stream.
    """

    def __init__(self, name: str, model: DiskModel) -> None:
        self.name = name
        self.model = model
        self.server = Server(f"{name}.srv")
        self._last: Optional[tuple[Any, int]] = None
        self.pages_read = 0
        self.pages_written = 0
        self.bytes_moved = 0

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<DiskDrive {self.name}>"

    def _access_time(
        self,
        file_id: Any,
        page_no: int,
        nbytes: int,
        sequential: Optional[bool],
    ) -> float:
        if sequential is None:
            sequential = self._last == (file_id, page_no - 1) or (
                self._last == (file_id, page_no)
            )
        self._last = (file_id, page_no)
        if sequential:
            return self.model.sequential_access_time(nbytes)
        return self.model.random_access_time(nbytes)

    def read(
        self,
        file_id: Any,
        page_no: int,
        nbytes: int,
        sequential: Optional[bool] = None,
    ) -> Generator[Any, Any, None]:
        """Process-generator that occupies the drive for one page read."""
        yield self.read_effect(file_id, page_no, nbytes, sequential)

    def read_effect(
        self,
        file_id: Any,
        page_no: int,
        nbytes: int,
        sequential: Optional[bool] = None,
    ) -> Use:
        """Fast-path :meth:`read`: the drive-occupancy effect itself."""
        duration = self._access_time(file_id, page_no, nbytes, sequential)
        self.pages_read += 1
        self.bytes_moved += nbytes
        return Use(self.server, duration)

    def write(
        self,
        file_id: Any,
        page_no: int,
        nbytes: int,
        sequential: Optional[bool] = None,
    ) -> Generator[Any, Any, None]:
        """Process-generator that occupies the drive for one page write."""
        duration = self._access_time(file_id, page_no, nbytes, sequential)
        self.pages_written += 1
        self.bytes_moved += nbytes
        yield Use(self.server, duration)

    def utilisation(self, sim: Simulation) -> float:
        return self.server.utilisation(sim.now)
