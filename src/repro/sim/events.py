"""Effect objects yielded by simulation processes.

A simulation process is a Python generator.  Instead of blocking, it yields
one of the effect objects defined here; the kernel performs the effect and
resumes the generator (``gen.send(result)``) when the effect completes.

Effects are deliberately tiny immutable descriptions — all behaviour lives in
:mod:`repro.sim.kernel` and :mod:`repro.sim.resources`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .kernel import Process
    from .resources import Server, Store


class Delay:
    """Suspend the process for ``duration`` simulated seconds.

    The four hot effects (Delay/Use/Put/Get) are hand-written slotted
    classes rather than frozen dataclasses: a frozen dataclass pays an
    ``object.__setattr__`` per field on construction, and these are
    allocated once per yield on the kernel's hottest paths.
    """

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"Delay(duration={self.duration!r})"


@dataclass(frozen=True, slots=True)
class Acquire:
    """Enter the FIFO queue of ``server``; resume once a slot is granted.

    The process owns the slot until it yields a matching :class:`Release`.
    """

    server: "Server"


@dataclass(frozen=True, slots=True)
class Release:
    """Give back a slot previously obtained with :class:`Acquire`."""

    server: "Server"


class Use:
    """Acquire ``server``, hold it for ``duration``, then release it.

    Equivalent to ``Acquire`` + ``Delay`` + ``Release`` but cheaper and
    impossible to leak.
    """

    __slots__ = ("server", "duration")

    def __init__(self, server: "Server", duration: float) -> None:
        self.server = server
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"Use(server={self.server!r}, duration={self.duration!r})"


class Put:
    """Append ``item`` to ``store``; resume when capacity allows."""

    __slots__ = ("store", "item")

    def __init__(self, store: "Store", item: Any) -> None:
        self.store = store
        self.item = item

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"Put(store={self.store!r}, item={self.item!r})"


class Get:
    """Resume with the next item from ``store`` (FIFO order)."""

    __slots__ = ("store",)

    def __init__(self, store: "Store") -> None:
        self.store = store

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"Get(store={self.store!r})"


@dataclass(frozen=True, slots=True)
class Join:
    """Resume (with the process return value) once ``process`` finishes."""

    process: "Process"


@dataclass(frozen=True, slots=True)
class WaitAll:
    """Resume once every process in ``processes`` has finished.

    The result is a list of the processes' return values, in order.
    """

    processes: Sequence["Process"] = field(default_factory=tuple)


Effect = Delay | Acquire | Release | Use | Put | Get | Join | WaitAll
