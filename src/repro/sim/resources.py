"""Queueing resources for the simulation kernel.

Two primitives cover everything the Gamma model needs:

* :class:`Server` — a FIFO service centre with fixed capacity.  CPUs, disk
  drives, network interfaces and the token ring are all ``Server``\\ s; the
  contention they create is what produces every bottleneck in the paper.
* :class:`Store` — a bounded FIFO buffer of items.  Mailboxes (operator input
  ports) and prefetch pipelines are ``Store``\\ s; bounded capacity gives
  natural back-pressure, which is how the dataflow engine self-schedules.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Simulation

Resume = Callable[..., None]


class Server:
    """A FIFO service centre with ``capacity`` parallel slots.

    Processes either ``yield Use(server, duration)`` for a self-contained
    service interval, or bracket work with ``Acquire``/``Release``.
    Statistics (busy time, total requests) are kept for utilisation reports.
    """

    __slots__ = (
        "name",
        "capacity",
        "_in_service",
        "_queue",
        "busy_time",
        "requests",
        "_last_change",
    )

    def __init__(self, name: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"server {name!r} needs capacity >= 1")
        self.name = name
        self.capacity = capacity
        self._in_service = 0
        self._queue: deque[tuple[Optional[float], Resume]] = deque()
        self.busy_time = 0.0
        self.requests = 0
        self._last_change = 0.0

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<Server {self.name} {self._in_service}/{self.capacity}>"

    @property
    def queue_length(self) -> int:
        """Number of waiting (not yet serviced) requests."""
        return len(self._queue)

    def utilisation(self, now: float) -> float:
        """Fraction of time at least one slot was busy, up to ``now``."""
        if now <= 0:
            return 0.0
        return min(1.0, self.busy_time / (now * self.capacity))

    # -- kernel-facing API ------------------------------------------------
    def _use(self, sim: "Simulation", duration: float, resume: Resume) -> None:
        if duration < 0:
            raise SimulationError(f"negative service time on {self.name!r}")
        self.requests += 1
        if self._in_service < self.capacity:
            self._start(sim, duration, resume)
        else:
            self._queue.append((duration, resume))

    def _acquire(self, sim: "Simulation", resume: Resume) -> None:
        self.requests += 1
        if self._in_service < self.capacity:
            self._in_service += 1
            sim.call_after(0.0, resume)
        else:
            self._queue.append((None, resume))

    def _release(self, sim: "Simulation") -> None:
        if self._in_service <= 0:
            raise SimulationError(f"release of idle server {self.name!r}")
        self._in_service -= 1
        self._dispatch(sim)

    def _start(self, sim: "Simulation", duration: float, resume: Resume) -> None:
        self._in_service += 1
        self.busy_time += duration

        def complete() -> None:
            self._in_service -= 1
            self._dispatch(sim)
            resume(None)

        sim.call_after(duration, complete)

    def _dispatch(self, sim: "Simulation") -> None:
        while self._queue and self._in_service < self.capacity:
            duration, resume = self._queue.popleft()
            if duration is None:
                self._in_service += 1
                sim.call_after(0.0, resume)
            else:
                self._start(sim, duration, resume)


class Store:
    """A bounded FIFO buffer connecting producer and consumer processes.

    ``capacity=None`` means unbounded.  ``Put`` blocks when full, ``Get``
    blocks when empty.  Items are arbitrary Python objects (tuple packets,
    control messages, disk pages).
    """

    __slots__ = ("name", "capacity", "_items", "_getters", "_putters")

    def __init__(self, name: str, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store {name!r} needs capacity >= 1")
        self.name = name
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Resume] = deque()
        self._putters: deque[tuple[Any, Resume]] = deque()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<Store {self.name} items={len(self._items)}>"

    def __len__(self) -> int:
        return len(self._items)

    # -- kernel-facing API ------------------------------------------------
    def _put(self, sim: "Simulation", item: Any, resume: Resume) -> None:
        if self._getters:
            # Hand the item straight to the longest-waiting consumer.
            getter = self._getters.popleft()
            sim.call_after(0.0, lambda: getter(item))
            sim.call_after(0.0, resume)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            sim.call_after(0.0, resume)
        else:
            self._putters.append((item, resume))

    def _get(self, sim: "Simulation", resume: Resume) -> None:
        if self._items:
            item = self._items.popleft()
            if self._putters:
                pending, putter = self._putters.popleft()
                self._items.append(pending)
                sim.call_after(0.0, putter)
            sim.call_after(0.0, lambda: resume(item))
        elif self._putters:
            pending, putter = self._putters.popleft()
            sim.call_after(0.0, putter)
            sim.call_after(0.0, lambda: resume(pending))
        else:
            self._getters.append(resume)
