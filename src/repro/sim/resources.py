"""Queueing resources for the simulation kernel.

Two primitives cover everything the Gamma model needs:

* :class:`Server` — a FIFO service centre with fixed capacity.  CPUs, disk
  drives, network interfaces and the token ring are all ``Server``\\ s; the
  contention they create is what produces every bottleneck in the paper.
* :class:`Store` — a bounded FIFO buffer of items.  Mailboxes (operator input
  ports) and prefetch pipelines are ``Store``\\ s; bounded capacity gives
  natural back-pressure, which is how the dataflow engine self-schedules.

Accounting is *interval-accurate*: every state change integrates the time
since the previous change, so utilisation queried mid-run pro-rates
in-flight service to ``now`` instead of crediting whole service intervals
at their start.  All statistics are passive — they never schedule events —
so enabling or inspecting them cannot perturb the simulated timeline.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from heapq import heappush as _heappush
from typing import TYPE_CHECKING, Any, Callable, Optional

from ..errors import SimulationError
from .kernel import _NO_VALUE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Process, Simulation

Resume = Callable[..., None]

#: ``server.observer`` signature: (server_name, start_time, duration).
ServiceObserver = Callable[[str, float, float], None]

#: ``server.profile_hook`` signature: (server, process, start, duration).
#: The process is the one whose ``Use`` is being serviced (None for
#: Acquire/Release brackets); profilers attribute the interval to an
#: operator by walking ``process.parent``.
ProfileHook = Callable[["Server", Optional["Process"], float, float], None]


class IntervalStats:
    """Online summary of a stream of durations (wait times, service times).

    Keeps count/total/max plus a fixed logarithmic histogram so memory stays
    O(1) regardless of how many requests a run serves.
    """

    #: Upper edges (seconds) of the histogram bins; the last bin is open.
    BIN_EDGES = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

    __slots__ = ("count", "total", "max", "bins")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.bins = [0] * (len(self.BIN_EDGES) + 1)

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        self.bins[bisect_right(self.BIN_EDGES, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "max": self.max,
            "bins": list(self.bins),
        }

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"<IntervalStats n={self.count} mean={self.mean:.6f}"
            f" max={self.max:.6f}>"
        )


class Server:
    """A FIFO service centre with ``capacity`` parallel slots.

    Processes either ``yield Use(server, duration)`` for a self-contained
    service interval, or bracket work with ``Acquire``/``Release``.

    Statistics kept for utilisation reports (all interval-accurate):

    * ``busy_time`` — slot-seconds of completed service so far (in-flight
      service is pro-rated by :meth:`utilisation`/:meth:`mean_utilisation`
      rather than credited up front).
    * ``requests`` — total service requests (``Use`` and ``Acquire``).
    * ``wait_stats`` — histogram of time spent queued before service.
    * time-weighted queue length via :meth:`mean_queue_length`.
    """

    __slots__ = (
        "name",
        "capacity",
        "_in_service",
        "_queue",
        "requests",
        "_last_change",
        "_busy_accrued",
        "_slot_accrued",
        "_qlen_accrued",
        "wait_stats",
        "observer",
        "profile_hook",
        "_sim",
        "_complete_cb",
        "_complete_proc_cb",
    )

    def __init__(self, name: str, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"server {name!r} needs capacity >= 1")
        self.name = name
        self.capacity = capacity
        self._in_service = 0
        # Queue entries: (duration | None, resume, enqueue_time, process).
        self._queue: deque[
            tuple[Optional[float], Resume, float, Optional["Process"]]
        ] = deque()
        self.requests = 0
        self._last_change = 0.0
        self._busy_accrued = 0.0  # seconds with >= 1 slot busy
        self._slot_accrued = 0.0  # slot-seconds of service
        self._qlen_accrued = 0.0  # queue-length-seconds
        self.wait_stats = IntervalStats()
        self.observer: Optional[ServiceObserver] = None
        self.profile_hook: Optional[ProfileHook] = None
        # The owning simulation, captured at first service: lets service
        # completion run as a bound method + resume argument on the event
        # heap instead of a per-interval closure.  Process-owned Use
        # effects complete through _complete_proc, which steps the process
        # directly (skipping its resume-closure frame); resumes without a
        # process (couriers, Acquire grants) go through _complete.
        self._sim: Optional["Simulation"] = None
        self._complete_cb = self._complete
        self._complete_proc_cb = self._complete_proc

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<Server {self.name} {self._in_service}/{self.capacity}>"

    @property
    def queue_length(self) -> int:
        """Number of waiting (not yet serviced) requests."""
        return len(self._queue)

    @property
    def in_service(self) -> int:
        """Number of slots currently serving."""
        return self._in_service

    @property
    def busy_time(self) -> float:
        """Slot-seconds of service accrued so far (in-flight not included)."""
        return self._slot_accrued

    # -- accounting -------------------------------------------------------
    def _advance(self, now: float) -> None:
        """Integrate busy/queue time up to ``now`` (call before any change)."""
        dt = now - self._last_change
        if dt > 0.0:
            if self._in_service > 0:
                self._busy_accrued += dt
            self._slot_accrued += self._in_service * dt
            self._qlen_accrued += len(self._queue) * dt
            self._last_change = now

    def _prorated(self, now: float) -> tuple[float, float, float]:
        """(any-busy seconds, slot-seconds, queue-length-seconds) at ``now``."""
        dt = max(0.0, now - self._last_change)
        busy = self._busy_accrued + (dt if self._in_service > 0 else 0.0)
        slots = self._slot_accrued + self._in_service * dt
        qlen = self._qlen_accrued + len(self._queue) * dt
        return busy, slots, qlen

    def utilisation(self, now: float) -> float:
        """Fraction of time at least one slot was busy, up to ``now``."""
        if now <= 0:
            return 0.0
        busy, _, _ = self._prorated(now)
        return min(1.0, busy / now)

    def mean_utilisation(self, now: float) -> float:
        """Average per-slot utilisation up to ``now``.

        Equal to :meth:`utilisation` when ``capacity == 1``; strictly the
        mean fraction of busy slots otherwise.
        """
        if now <= 0:
            return 0.0
        _, slots, _ = self._prorated(now)
        return min(1.0, slots / (now * self.capacity))

    def mean_queue_length(self, now: float) -> float:
        """Time-weighted mean number of waiting requests up to ``now``."""
        if now <= 0:
            return 0.0
        _, _, qlen = self._prorated(now)
        return qlen / now

    # -- kernel-facing API ------------------------------------------------
    def _use(
        self,
        sim: "Simulation",
        duration: float,
        resume: Resume,
        proc: Optional["Process"] = None,
    ) -> None:
        if duration < 0:
            raise SimulationError(f"negative service time on {self.name!r}")
        self.requests += 1
        now = sim._now
        n = self._in_service
        # _advance(now), inlined for the hottest call site.  Skipping the
        # idle/empty-queue accruals is exact: ``+= 0.0`` never changes an
        # accrued total.
        dt = now - self._last_change
        if dt > 0.0:
            if n > 0:
                self._busy_accrued += dt
                self._slot_accrued += n * dt
            queued = len(self._queue)
            if queued:
                self._qlen_accrued += queued * dt
            self._last_change = now
        if n < self.capacity:
            # Inlined wait_stats.record(0.0): total/max are unchanged by a
            # zero and a zero always lands in the first histogram bin.
            ws = self.wait_stats
            ws.count += 1
            ws.bins[0] += 1
            self._in_service = n + 1
            self._sim = sim
            if self.observer is not None:
                self.observer(self.name, now, duration)
            if self.profile_hook is not None:
                self.profile_hook(self, proc, now, duration)
            if proc is not None:
                cb: Callable[..., None] = self._complete_proc_cb
                arg: Any = proc
            else:
                cb = self._complete_cb
                arg = resume
            sim._seq += 1
            if duration == 0.0:
                sim._ready.append((sim._seq, cb, arg))
            else:
                _heappush(
                    sim._heap, (now + duration, sim._seq, cb, arg)
                )
        else:
            self._queue.append((duration, resume, now, proc))

    def _acquire(self, sim: "Simulation", resume: Resume) -> None:
        self.requests += 1
        self._advance(sim.now)
        if self._in_service < self.capacity:
            ws = self.wait_stats
            ws.count += 1
            ws.bins[0] += 1
            self._in_service += 1
            sim._schedule_now(resume)
        else:
            self._queue.append((None, resume, sim.now, None))

    def _release(self, sim: "Simulation") -> None:
        if self._in_service <= 0:
            raise SimulationError(f"release of idle server {self.name!r}")
        self._advance(sim.now)
        self._in_service -= 1
        self._dispatch(sim)

    def _start(
        self,
        sim: "Simulation",
        duration: float,
        resume: Resume,
        proc: Optional["Process"] = None,
    ) -> None:
        # _advance(sim.now) has already run on every path into here.
        self._in_service += 1
        self._sim = sim
        if self.observer is not None:
            self.observer(self.name, sim._now, duration)
        if self.profile_hook is not None:
            self.profile_hook(self, proc, sim._now, duration)
        if proc is not None:
            cb: Callable[..., None] = self._complete_proc_cb
            arg: Any = proc
        else:
            cb = self._complete_cb
            arg = resume
        sim._seq += 1
        if duration == 0.0:
            sim._ready.append((sim._seq, cb, arg))
        else:
            _heappush(
                sim._heap, (sim._now + duration, sim._seq, cb, arg)
            )

    def _complete(self, resume: Resume) -> None:
        """One service interval finished: free the slot and hand it on."""
        sim = self._sim
        now = sim._now
        # _advance(now), inlined: at least one slot (ours) is busy here.
        dt = now - self._last_change
        if dt > 0.0:
            self._busy_accrued += dt
            self._slot_accrued += self._in_service * dt
            queued = len(self._queue)
            if queued:
                self._qlen_accrued += queued * dt
            self._last_change = now
        self._in_service -= 1
        if self._queue:
            self._dispatch(sim)
        resume(None)

    def _complete_proc(self, proc: "Process") -> None:
        """:meth:`_complete` for a process-owned Use: step it directly.

        ``proc._resume(None)`` and ``sim._step(proc, None)`` are the same
        call (the resume closure is a one-line trampoline); going straight
        to ``_step`` drops one interpreter frame from every service
        completion on the operator hot path.
        """
        sim = self._sim
        now = sim._now
        dt = now - self._last_change
        if dt > 0.0:
            self._busy_accrued += dt
            self._slot_accrued += self._in_service * dt
            queued = len(self._queue)
            if queued:
                self._qlen_accrued += queued * dt
            self._last_change = now
        self._in_service -= 1
        if self._queue:
            self._dispatch(sim)
        sim._step(proc, None)

    def _dispatch(self, sim: "Simulation") -> None:
        while self._queue and self._in_service < self.capacity:
            duration, resume, enqueued, proc = self._queue.popleft()
            self.wait_stats.record(sim.now - enqueued)
            if duration is None:
                self._in_service += 1
                sim._schedule_now(resume)
            else:
                self._start(sim, duration, resume, proc)


class Store:
    """A bounded FIFO buffer connecting producer and consumer processes.

    ``capacity=None`` means unbounded.  ``Put`` blocks when full, ``Get``
    blocks when empty.  Items are arbitrary Python objects (tuple packets,
    control messages, disk pages).
    """

    __slots__ = ("name", "capacity", "_items", "_getters", "_putters")

    def __init__(self, name: str, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store {name!r} needs capacity >= 1")
        self.name = name
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Resume] = deque()
        self._putters: deque[tuple[Any, Resume]] = deque()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<Store {self.name} items={len(self._items)}>"

    def __len__(self) -> int:
        return len(self._items)

    @property
    def blocked_getters(self) -> int:
        """Consumers currently blocked on an empty store."""
        return len(self._getters)

    @property
    def blocked_putters(self) -> int:
        """Producers currently blocked on a full store."""
        return len(self._putters)

    # -- kernel-facing API ------------------------------------------------
    # _schedule_now is inlined below (seq bump + ready append): a store
    # hand-off schedules two wake-ups, and the call overhead is measurable
    # on the packet path.  _NO_VALUE entries mean "call fn()".

    def _put(self, sim: "Simulation", item: Any, resume: Resume) -> None:
        if self._getters:
            # Hand the item straight to the longest-waiting consumer.
            getter = self._getters.popleft()
            sim._seq += 1
            sim._ready.append((sim._seq, getter, item))
            sim._seq += 1
            sim._ready.append((sim._seq, resume, _NO_VALUE))
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            sim._seq += 1
            sim._ready.append((sim._seq, resume, _NO_VALUE))
        else:
            self._putters.append((item, resume))

    def _get(self, sim: "Simulation", resume: Resume) -> None:
        if self._items:
            item = self._items.popleft()
            if self._putters:
                pending, putter = self._putters.popleft()
                self._items.append(pending)
                sim._seq += 1
                sim._ready.append((sim._seq, putter, _NO_VALUE))
            sim._seq += 1
            sim._ready.append((sim._seq, resume, item))
        elif self._putters:
            pending, putter = self._putters.popleft()
            sim._seq += 1
            sim._ready.append((sim._seq, putter, _NO_VALUE))
            sim._seq += 1
            sim._ready.append((sim._seq, resume, pending))
        else:
            self._getters.append(resume)
