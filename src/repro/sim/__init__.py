"""Discrete-event simulation kernel (the NOSE operating-system substitute).

Public surface::

    from repro.sim import Simulation, Server, Store
    from repro.sim import Delay, Use, Acquire, Release, Put, Get, Join, WaitAll
"""

from .events import Acquire, Delay, Get, Join, Put, Release, Use, WaitAll
from .kernel import Process, Simulation, run_to_completion
from .resources import IntervalStats, Server, Store

__all__ = [
    "Acquire",
    "Delay",
    "Get",
    "IntervalStats",
    "Join",
    "Process",
    "Put",
    "Release",
    "Server",
    "Simulation",
    "Store",
    "Use",
    "WaitAll",
    "run_to_completion",
]
