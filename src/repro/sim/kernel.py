"""Generator-based discrete-event simulation kernel.

This is the NOSE substitute: the paper's operating system provides
lightweight processes with cheap message passing; here a
:class:`Simulation` owns a priority queue of timestamped wake-ups and a set
of :class:`Process` objects (plain Python generators).  Processes yield
effect objects from :mod:`repro.sim.events`; the kernel performs the effect
and resumes the generator when it completes.

The kernel is deterministic: simultaneous events fire in the order they were
scheduled (FIFO tie-break on a sequence counter), so a given workload always
produces exactly the same simulated timeline.

Hot-path design (the kernel dominates a simulation's wall-clock cost):

* Effects dispatch through a type-keyed table (``_HANDLERS``) instead of an
  ``isinstance`` ladder.
* Each :class:`Process` carries one preallocated ``_resume`` closure; the
  kernel never allocates a fresh callback per step.
* Zero-delay wake-ups (``call_after(0.0, …)`` — mailbox hand-offs, slot
  grants, spawns) skip the heap entirely and go through a FIFO *ready*
  deque.  Ready entries and heap events share the global sequence counter,
  so the execution order is exactly the (time, seq) total order the simple
  heap-only kernel produced: timelines are bit-identical.

Telemetry (:meth:`Simulation.set_sample_hook`) is *pulled*, never
scheduled: the kernel invokes the hook when the clock is about to cross
the next sample boundary, instead of the sampler posting wake-up events.
A sampler therefore consumes no sequence numbers, never appears in the
heap, and cannot move the final clock — the timeline is bit-identical
with sampling on or off, by construction rather than by discipline.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from ..errors import SimulationError
from .events import Acquire, Delay, Get, Join, Put, Release, Use, WaitAll

ProcessGen = Generator[Any, Any, Any]

#: Sentinel distinguishing "call fn()" from "call fn(value)" ready entries.
_NO_VALUE = object()


class Process:
    """A running simulation process wrapping a generator.

    Attributes:
        name: Diagnostic label used in error messages.
        finished: True once the generator has returned or raised.
        value: The generator's return value (valid when ``finished``).
        blocked_on: The effect this process is currently suspended on
            (diagnostics; ``None`` while runnable or finished).
        parent: The process that was running when this one was spawned
            (``None`` for externally spawned roots).  Attribution metadata
            only — helper processes (couriers, page feeders) resolve to
            the operator that created them by walking this chain.
    """

    __slots__ = (
        "_gen", "name", "finished", "value", "failure", "_waiters",
        "blocked_on", "_resume", "parent",
    )

    def __init__(self, gen: ProcessGen, name: str = "proc") -> None:
        self._gen = gen
        self.name = name
        self.finished = False
        self.value: Any = None
        self.failure: Optional[BaseException] = None
        self._waiters: list[Callable[[Any], None]] = []
        self.blocked_on: Any = None
        self._resume: Callable[..., None] = _unspawned
        self.parent: Optional["Process"] = None

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        state = "done" if self.finished else "running"
        return f"<Process {self.name} {state}>"

    def _add_waiter(self, resume: Callable[[Any], None]) -> None:
        if self.finished:
            resume(self.value)
        else:
            self._waiters.append(resume)


def _unspawned(value: Any = None) -> None:  # pragma: no cover - guard only
    raise SimulationError("process resumed before being spawned")


class Simulation:
    """Discrete-event simulation with generator processes.

    Typical usage::

        sim = Simulation()
        sim.spawn(my_process(sim), name="scan")
        sim.run()
        print(sim.now)
    """

    __slots__ = (
        "_now", "_seq", "_heap", "_ready", "_active", "_procs",
        "events_processed", "_current", "_sample_hook", "_sample_due",
    )

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        # Heap entries carry an optional resume argument so resources can
        # schedule a bound method + arg instead of allocating a closure
        # per service interval; ``_NO_VALUE`` means "call fn()".
        self._heap: list[tuple[float, int, Callable[..., None], Any]] = []
        self._ready: deque[tuple[int, Callable[..., None], Any]] = deque()
        self._active = 0
        self._procs: list[Process] = []
        self.events_processed = 0
        #: The process whose generator is currently executing (None between
        #: steps).  Purely observational: profilers read it to attribute
        #: resource usage; spawn() reads it to record parentage.
        self._current: Optional[Process] = None
        # Pulled telemetry (see set_sample_hook).  The hook is invoked by
        # run() when the clock is about to advance to or past _sample_due;
        # float("inf") disables the check with one dead comparison per
        # heap pop.
        self._sample_hook: Optional[Callable[[float], float]] = None
        self._sample_due = float("inf")

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def call_at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before now {self._now}"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn, _NO_VALUE))

    def call_after(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        if delay == 0.0:
            self._seq += 1
            self._ready.append((self._seq, fn, _NO_VALUE))
            return
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, fn, _NO_VALUE))

    def _schedule_now(self, fn: Callable[..., None], value: Any = _NO_VALUE) -> None:
        """Zero-delay schedule without allocating a closure for ``value``."""
        self._seq += 1
        self._ready.append((self._seq, fn, value))

    # ------------------------------------------------------------------
    # pulled telemetry
    # ------------------------------------------------------------------
    def set_sample_hook(
        self, hook: Optional[Callable[[float], float]], first_due: float
    ) -> None:
        """Install a passive sampling hook (or remove it with ``None``).

        ``hook(limit)`` is called when the clock is about to advance to a
        heap event at ``time >= first_due``; it must observe whatever
        state it wants (resources pro-rate their accounting to any
        timestamp) for every sample boundary ``<= limit`` and return the
        next due time.  The hook runs *before* the events at ``limit``
        fire, so a sample at boundary ``t`` sees the state produced by
        all events strictly before ``t``'s crossing — a deterministic
        cut.  The kernel never schedules anything on the hook's behalf:
        no sequence numbers are consumed and the final clock is
        untouched, so timelines are bit-identical with sampling on/off.
        """
        self._sample_hook = hook
        self._sample_due = float("inf") if hook is None else first_due

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def spawn(self, gen: ProcessGen, name: str = "proc") -> Process:
        """Start a new process immediately (at the current time)."""
        proc = Process(gen, name)
        proc.parent = self._current
        step = self._step

        def resume(value: Any = None, _proc: Process = proc) -> None:
            step(_proc, value)

        proc._resume = resume
        self._active += 1
        self._procs.append(proc)
        self._schedule_now(resume)
        return proc

    def _step(self, proc: Process, value: Any) -> None:
        """Resume ``proc`` with ``value`` and perform its next effect."""
        # blocked_on is not cleared here: it is overwritten below on every
        # yield, and a finished process never reaches the deadlock report.
        self._current = proc
        try:
            effect = proc._gen.send(value)
        except StopIteration as stop:
            self._finish(proc, stop.value)
            return
        except BaseException as exc:
            proc.finished = True
            proc.failure = exc
            self._active -= 1
            raise SimulationError(
                f"process {proc.name!r} failed at t={self._now:.6f}"
            ) from exc
        proc.blocked_on = effect
        # The four hot effects dispatch inline (one type check each, no
        # handler-table lookup and no _do_* frame); everything else falls
        # through to the table.
        cls = effect.__class__
        if cls is Use:
            effect.server._use(self, effect.duration, proc._resume, proc)
            return
        if cls is Get:
            effect.store._get(self, proc._resume)
            return
        if cls is Put:
            effect.store._put(self, effect.item, proc._resume)
            return
        if cls is Delay:
            duration = effect.duration
            if duration < 0:
                raise SimulationError(
                    f"process {proc.name!r} yielded negative delay"
                )
            self._seq += 1
            if duration == 0.0:
                self._ready.append((self._seq, proc._resume, _NO_VALUE))
            else:
                heapq.heappush(
                    self._heap,
                    (self._now + duration, self._seq, proc._resume, _NO_VALUE),
                )
            return
        handler = _HANDLERS.get(cls)
        if handler is None:
            raise SimulationError(
                f"process {proc.name!r} yielded unknown effect {effect!r}"
            )
        handler(self, proc, effect)

    def _finish(self, proc: Process, value: Any) -> None:
        proc.finished = True
        proc.value = value
        self._active -= 1
        waiters, proc._waiters = proc._waiters, []
        for resume in waiters:
            resume(value)

    def _perform(self, proc: Process, effect: Any) -> None:
        """Perform one yielded effect for ``proc`` (dispatch-table entry)."""
        proc.blocked_on = effect
        handler = _HANDLERS.get(effect.__class__)
        if handler is None:
            raise SimulationError(
                f"process {proc.name!r} yielded unknown effect {effect!r}"
            )
        handler(self, proc, effect)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains (or simulated ``until``).

        Returns the final simulated time.  The cutoff and early-drain
        paths are consistent: with ``until`` given, the clock always
        advances to ``until`` even when the queue drains first.  A cutoff
        leaves every not-yet-due event in the queue, so a subsequent
        ``run()`` resumes exactly where this one stopped.

        Raises:
            SimulationError: if the event queue drains while unfinished
                processes remain blocked — a deadlocked dataflow must not
                masquerade as a fast completion.  The error names every
                stuck process and the Store/Server it blocks on.
        """
        heap = self._heap
        ready = self._ready
        heappop = heapq.heappop
        pop_ready = ready.popleft
        no_cutoff = until is None
        events = 0
        # Local mirror of self._now: only heap pops advance the clock, so
        # the hot ready-vs-heap comparison can read a local.  sample_due
        # mirrors self._sample_due the same way (inf when no hook).
        now = self._now
        sample_due = self._sample_due
        try:
            while heap or ready:
                # Ready entries fire at the current timestamp; heap events
                # already due at `now` with a smaller sequence number fire
                # first, preserving the global (time, seq) order.
                if ready and (
                    not heap
                    or heap[0][0] > now
                    or heap[0][1] > ready[0][0]
                ):
                    _seq, fn, value = pop_ready()
                    events += 1
                    if value is _NO_VALUE:
                        fn()
                    else:
                        fn(value)
                    continue
                event = heappop(heap)
                time = event[0]
                if not no_cutoff and time > until:
                    heapq.heappush(heap, event)
                    if until >= sample_due:
                        self._sample_due = self._sample_hook(until)
                    self._now = until
                    return self._now
                if time >= sample_due:
                    # Sample every boundary the clock is about to cross,
                    # before the events at `time` fire.
                    sample_due = self._sample_due = self._sample_hook(time)
                self._now = now = time
                events += 1
                arg = event[3]
                if arg is _NO_VALUE:
                    event[2]()
                else:
                    event[2](arg)
        finally:
            self.events_processed += events
        if self._active > 0:
            raise SimulationError(self._deadlock_message())
        if until is not None and until > self._now:
            if until >= self._sample_due:
                self._sample_due = self._sample_hook(until)
            self._now = until
        return self._now

    def _deadlock_message(self) -> str:
        stuck = [p for p in self._procs if not p.finished]
        lines = [
            f"deadlock at t={self._now:.6f}:"
            f" {len(stuck)} process(es) blocked with no pending events"
        ]
        for proc in stuck:
            lines.append(
                f"  - {proc.name!r} blocked on"
                f" {_describe_block(proc.blocked_on)}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# effect handlers (type-keyed dispatch)
# ---------------------------------------------------------------------------


def _do_delay(sim: Simulation, proc: Process, effect: Delay) -> None:
    duration = effect.duration
    if duration < 0:
        raise SimulationError(
            f"process {proc.name!r} yielded negative delay"
        )
    if duration == 0.0:
        sim._schedule_now(proc._resume)
    else:
        sim._seq += 1
        heapq.heappush(
            sim._heap, (sim._now + duration, sim._seq, proc._resume, _NO_VALUE)
        )


def _do_use(sim: Simulation, proc: Process, effect: Use) -> None:
    effect.server._use(sim, effect.duration, proc._resume, proc)


def _do_acquire(sim: Simulation, proc: Process, effect: Acquire) -> None:
    effect.server._acquire(sim, proc._resume)


def _do_release(sim: Simulation, proc: Process, effect: Release) -> None:
    effect.server._release(sim)
    sim._schedule_now(proc._resume)


def _do_put(sim: Simulation, proc: Process, effect: Put) -> None:
    effect.store._put(sim, effect.item, proc._resume)


def _do_get(sim: Simulation, proc: Process, effect: Get) -> None:
    effect.store._get(sim, proc._resume)


def _do_join(sim: Simulation, proc: Process, effect: Join) -> None:
    effect.process._add_waiter(proc._resume)


def _do_wait_all(sim: Simulation, proc: Process, effect: WaitAll) -> None:
    _wait_all(list(effect.processes), proc._resume)


_HANDLERS: dict[type, Callable[[Simulation, Process, Any], None]] = {
    Delay: _do_delay,
    Use: _do_use,
    Acquire: _do_acquire,
    Release: _do_release,
    Put: _do_put,
    Get: _do_get,
    Join: _do_join,
    WaitAll: _do_wait_all,
}


def _describe_block(effect: Any) -> str:
    """Human-readable description of the effect a stuck process waits on."""
    if isinstance(effect, Get):
        return f"Get(Store {effect.store.name!r}, empty)"
    if isinstance(effect, Put):
        return f"Put(Store {effect.store.name!r}, full)"
    if isinstance(effect, Acquire):
        return f"Acquire(Server {effect.server.name!r})"
    if isinstance(effect, Use):
        return f"Use(Server {effect.server.name!r})"
    if isinstance(effect, Join):
        return f"Join(process {effect.process.name!r})"
    if isinstance(effect, WaitAll):
        pending = [p.name for p in effect.processes if not p.finished]
        return f"WaitAll(pending: {', '.join(pending) or 'none'})"
    if effect is None:
        return "nothing (never scheduled)"
    return repr(effect)


def _wait_all(procs: list[Process], resume: Callable[[Any], None]) -> None:
    """Resume once every process in ``procs`` finished, with their values."""
    remaining = len(procs)
    results: list[Any] = [None] * len(procs)
    if remaining == 0:
        resume(results)
        return

    state = {"left": remaining}

    def make_waiter(index: int) -> Callable[[Any], None]:
        def waiter(value: Any) -> None:
            results[index] = value
            state["left"] -= 1
            if state["left"] == 0:
                resume(results)

        return waiter

    for i, proc in enumerate(procs):
        proc._add_waiter(make_waiter(i))


def run_to_completion(gens: Iterable[ProcessGen]) -> float:
    """Convenience: run a fresh simulation over ``gens`` and return end time."""
    sim = Simulation()
    for i, gen in enumerate(gens):
        sim.spawn(gen, name=f"proc-{i}")
    return sim.run()
