"""repro — a reproduction of the Gamma database machine performance study.

This package implements, from scratch, the systems evaluated in "A
Performance Analysis of the Gamma Database Machine" (DeWitt,
Ghandeharizadeh & Schneider, SIGMOD 1988): the Gamma shared-nothing
dataflow database machine, its WiSS storage substrate, the NOSE-style
process/communication layer (as a discrete-event simulation), the Teradata
DBC/1012 baseline, the Wisconsin benchmark workload, and a harness that
regenerates every table and figure of the paper.

Quick start::

    from repro import GammaMachine, Query, RangePredicate

    machine = GammaMachine()
    machine.load_wisconsin("tenk", 10_000, clustered_on="unique1")
    result = machine.run(
        Query.select("tenk", RangePredicate("unique1", 0, 99), into="out")
    )
    print(f"{result.response_time:.2f} modeled seconds")
"""

from .engine import (
    AccessPath,
    AggregateNode,
    AppendTuple,
    DeleteTuple,
    ExactMatch,
    GammaMachine,
    JoinMode,
    JoinNode,
    ModifyTuple,
    Query,
    QueryResult,
    RangePredicate,
    ScanNode,
    TruePredicate,
)
from .catalog import Hashed, RangePartitioned, RoundRobin, UniformRange
from .hardware import GammaConfig, TeradataConfig
from .metrics import MetricsRegistry, TraceBuffer, UtilisationReport
from .quel import QuelSession
from .workloads import generate_tuples, selection_range, wisconsin_schema

__version__ = "1.0.0"

__all__ = [
    "AccessPath",
    "AggregateNode",
    "AppendTuple",
    "DeleteTuple",
    "ExactMatch",
    "GammaConfig",
    "GammaMachine",
    "Hashed",
    "JoinMode",
    "JoinNode",
    "MetricsRegistry",
    "ModifyTuple",
    "QuelSession",
    "Query",
    "QueryResult",
    "RangePartitioned",
    "RangePredicate",
    "RoundRobin",
    "ScanNode",
    "TeradataConfig",
    "TraceBuffer",
    "TruePredicate",
    "UniformRange",
    "UtilisationReport",
    "__version__",
    "generate_tuples",
    "selection_range",
    "wisconsin_schema",
]
