"""Time-series telemetry: sampled cluster metrics over simulated time.

Every existing observability surface (MetricsRegistry, UtilisationReport,
EXPLAIN ANALYZE profiles) reports end-of-run aggregates; this module adds
the *time axis*.  A :class:`TelemetrySampler` observes the cluster on a
fixed simulated-time cadence and records one value per interval per
track: server utilisation / queue depth / queue wait, admission queue
and MPL occupancy, lock-manager held/waiting counts, buffer and
hash-table bytes, and anything else wired in via :meth:`add_gauge`.

Passivity is structural, not best-effort.  The sampler never schedules a
simulation event: the kernel *pulls* it (see
:meth:`~repro.sim.Simulation.set_sample_hook`) whenever the clock is
about to cross the next sample boundary, so event order, sequence
numbers and the clock itself are bit-identical with sampling on or off.
Each sample at boundary ``t`` observes the state left by every event
strictly before ``t`` — a deterministic cut of the simulation — and the
:class:`~repro.sim.Server` accessors pro-rate in-flight service to ``t``
exactly.

Surfaces: :meth:`TelemetrySampler.to_dict` (JSON schema persisted by the
result store), :meth:`TelemetrySampler.export_counters` (Perfetto
counter tracks merged into a :class:`~repro.metrics.trace.TraceBuffer`),
and :func:`render_dashboard` (ASCII sparklines reusing the profile
timeline's density ramp).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from ..errors import ReproError
from .timeline import sparkline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.kernel import Simulation
    from ..sim.resources import Server
    from .trace import TraceBuffer
    from .workload import QueryRecord

#: A probe reads simulation state at one sample boundary and appends to
#: the series it owns.  Probes must be pure observers: reading counters
#: and pro-rated accruals only, never scheduling events or mutating
#: engine state.
Probe = Callable[[float], None]


class SampleSeries:
    """One telemetry track: (time, value) pairs at the sample cadence.

    With a ``cap`` the series is a ring buffer — the oldest samples fall
    off and ``dropped`` counts them, so thousand-client runs hold O(cap)
    memory per track while exports still say what was lost.
    """

    __slots__ = ("node", "track", "unit", "times", "values", "dropped")

    def __init__(
        self,
        node: str,
        track: str,
        unit: str = "",
        cap: Optional[int] = None,
    ) -> None:
        self.node = node
        self.track = track
        self.unit = unit
        self.times: deque[float] = deque(maxlen=cap)
        self.values: deque[float] = deque(maxlen=cap)
        self.dropped = 0

    @property
    def key(self) -> str:
        return f"{self.node}.{self.track}"

    def __len__(self) -> int:
        return len(self.values)

    def append(self, t: float, value: float) -> None:
        times = self.times
        if times.maxlen is not None and len(times) == times.maxlen:
            self.dropped += 1
        times.append(t)
        self.values.append(value)

    @property
    def last(self) -> float:
        return self.values[-1] if self.values else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "node": self.node,
            "track": self.track,
            "unit": self.unit,
            "dropped": self.dropped,
            "times": list(self.times),
            "values": list(self.values),
        }

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<SampleSeries {self.key} n={len(self.values)}>"


class TelemetrySampler:
    """Samples wired gauges every ``interval`` simulated seconds.

    Wiring helpers (:meth:`watch_server`, :meth:`watch_group`,
    :meth:`watch_admission`, :meth:`watch_locks`, :meth:`add_gauge`)
    register probes; :meth:`attach` installs the kernel's pull hook.
    Per-interval rates (utilisation, mean queue wait) are computed as
    deltas of the servers' cumulative accruals between consecutive
    boundaries, so every interval is exact rather than a point sample.
    """

    #: Machines with at most this many disk sites also get per-node
    #: lanes (beyond the cluster aggregate) — enough to chart, not
    #: enough to drown a 1000-site dashboard.
    per_node_limit = 8

    def __init__(
        self,
        interval: float = 0.25,
        cap: Optional[int] = None,
        slo: Optional[Any] = None,
    ) -> None:
        if interval <= 0.0:
            raise ReproError(f"sample interval must be > 0, got {interval}")
        if cap is not None and cap < 1:
            raise ReproError(f"sample cap must be >= 1, got {cap}")
        self.interval = interval
        self.cap = cap
        #: Optional sliding-window latency tracker; wired into the
        #: sample cadence when it exposes ``wire(sampler)`` (see
        #: :class:`repro.metrics.slo.SlidingWindowTracker`).
        self.slo = slo
        self.series: dict[str, SampleSeries] = {}
        self.samples = 0
        self._probes: list[Probe] = []
        self._ticks = 0
        self._sim: Optional["Simulation"] = None
        if slo is not None and hasattr(slo, "wire"):
            slo.wire(self)

    # -- kernel hookup ----------------------------------------------------
    def attach(self, sim: "Simulation") -> None:
        """Install the pull hook; the first boundary is one interval in."""
        self._sim = sim
        self._ticks = 0
        sim.set_sample_hook(self._on_due, self.interval)

    def detach(self) -> None:
        if self._sim is not None:
            self._sim.set_sample_hook(None, float("inf"))
            self._sim = None

    def _on_due(self, limit: float) -> float:
        """Sample every boundary ``<= limit``; return the next due time."""
        ticks = self._ticks
        interval = self.interval
        probes = self._probes
        due = (ticks + 1) * interval
        while due <= limit:
            for probe in probes:
                probe(due)
            self.samples += 1
            ticks += 1
            due = (ticks + 1) * interval
        self._ticks = ticks
        return due

    # -- series / probe registry ------------------------------------------
    def series_for(
        self, node: str, track: str, unit: str = ""
    ) -> SampleSeries:
        """The series for (node, track), created on first use."""
        key = f"{node}.{track}"
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = SampleSeries(
                node, track, unit, self.cap
            )
        return series

    def add_probe(self, probe: Probe) -> None:
        self._probes.append(probe)

    def add_gauge(
        self, node: str, track: str, unit: str, read: Callable[[], float]
    ) -> SampleSeries:
        """Sample ``read()`` every interval into one series."""
        series = self.series_for(node, track, unit)

        def probe(t: float) -> None:
            series.append(t, float(read()))

        self.add_probe(probe)
        return series

    # -- wiring helpers ----------------------------------------------------
    def watch_server(
        self, server: "Server", node: str, prefix: str
    ) -> None:
        """Per-interval utilisation, queue depth and mean queue wait for
        one :class:`~repro.sim.Server`."""
        util = self.series_for(node, f"{prefix}.util", "frac")
        qdepth = self.series_for(node, f"{prefix}.qdepth", "requests")
        wait = self.series_for(node, f"{prefix}.wait", "s")
        cap = float(server.capacity)
        # (last boundary, slot-seconds, wait total, wait count) at it.
        state = [0.0, 0.0, 0.0, 0]

        def probe(t: float) -> None:
            _busy, slots, _qlen = server._prorated(t)
            dt = t - state[0]
            du = slots - state[1]
            util.append(t, du / (dt * cap) if dt > 0.0 else 0.0)
            qdepth.append(t, float(server.queue_length))
            stats = server.wait_stats
            dn = stats.count - state[3]
            dw = stats.total - state[2]
            wait.append(t, dw / dn if dn else 0.0)
            state[0] = t
            state[1] = slots
            state[2] = stats.total
            state[3] = stats.count

        self.add_probe(probe)

    def watch_group(
        self,
        node: str,
        prefix: str,
        members: Sequence[tuple[str, "Server"]],
    ) -> None:
        """Aggregate per-interval utilisation over a server group.

        Tracks ``{prefix}.mean`` / ``.max`` / ``.min`` / ``.spread``
        (max minus min — the skew detector's signal) so a 1000-site
        cluster costs four series, not four thousand.
        """
        group = list(members)
        if not group:
            return
        mean_s = self.series_for(node, f"{prefix}.mean", "frac")
        max_s = self.series_for(node, f"{prefix}.max", "frac")
        min_s = self.series_for(node, f"{prefix}.min", "frac")
        spread_s = self.series_for(node, f"{prefix}.spread", "frac")
        caps = [float(server.capacity) for _name, server in group]
        state = [0.0] + [0.0] * len(group)  # boundary, then slot-seconds

        def probe(t: float) -> None:
            dt = t - state[0]
            lo = hi = total = 0.0
            for i, (_name, server) in enumerate(group):
                _busy, slots, _qlen = server._prorated(t)
                u = (slots - state[i + 1]) / (dt * caps[i]) if dt > 0.0 \
                    else 0.0
                state[i + 1] = slots
                total += u
                if i == 0:
                    lo = hi = u
                else:
                    lo = u if u < lo else lo
                    hi = u if u > hi else hi
            state[0] = t
            mean_s.append(t, total / len(group))
            max_s.append(t, hi)
            min_s.append(t, lo)
            spread_s.append(t, hi - lo)

        self.add_probe(probe)

    def watch_admission(self, controller: Any) -> None:
        """Admission-queue depth, occupied MPL slots and cumulative
        timeouts (node ``admission``)."""
        queued = self.series_for("admission", "queued", "requests")
        running = self.series_for("admission", "running", "requests")
        timeouts = self.series_for("admission", "timeouts", "count")

        def probe(t: float) -> None:
            queued.append(t, float(controller.queue_length))
            running.append(t, float(controller.running))
            timeouts.append(t, float(controller.timeouts))

        self.add_probe(probe)

    def watch_locks(self, locks: Any) -> None:
        """Held / waiting lock counts plus cumulative deadlocks and lock
        timeouts (node ``locks``)."""
        held = self.series_for("locks", "held", "locks")
        waiting = self.series_for("locks", "waiting", "requests")
        deadlocks = self.series_for("locks", "deadlocks", "count")
        timeouts = self.series_for("locks", "timeouts", "count")
        states = locks._locks

        def probe(t: float) -> None:
            n_held = 0
            n_wait = 0
            for state in states.values():
                n_held += len(state.holders)
                n_wait += len(state.queue)
            held.append(t, float(n_held))
            waiting.append(t, float(n_wait))
            deadlocks.append(t, float(locks.deadlocks))
            timeouts.append(t, float(locks.timeouts))

        self.add_probe(probe)

    # -- completions -------------------------------------------------------
    def observe_completion(self, record: "QueryRecord") -> None:
        """Feed one finished workload request to the SLO tracker."""
        if self.slo is not None:
            self.slo.record(record.finished, record.latency, record.ok)

    # -- export ------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Total samples evicted across every ring-capped series."""
        return sum(s.dropped for s in self.series.values())

    def to_dict(self) -> dict[str, Any]:
        """The persisted telemetry schema (stable key order)."""
        return {
            "interval": self.interval,
            "samples": self.samples,
            "cap": self.cap,
            "dropped": self.dropped,
            "series": {
                key: self.series[key].as_dict()
                for key in sorted(self.series)
            },
        }

    def export_counters(self, trace: "TraceBuffer") -> int:
        """Merge every series into ``trace`` as Perfetto counter tracks
        (one track per series, unit-labelled).  Returns the number of
        counter events emitted."""
        emitted = 0
        for key in sorted(self.series):
            series = self.series[key]
            for t, value in zip(series.times, series.values):
                trace.counter(
                    series.node, series.track, t, {series.track: value},
                    unit=series.unit or None,
                )
                emitted += 1
        return emitted


# ---------------------------------------------------------------------------
# dashboard rendering
# ---------------------------------------------------------------------------


def render_dashboard(
    sampler: TelemetrySampler,
    alerts: Optional[Sequence[Any]] = None,
    width: int = 60,
) -> str:
    """One terminal screen of sparklines, one line per telemetry track.

    Each line is self-normalised to the track's own [min, max] (flat
    tracks render blank) with the last and peak values printed beside
    it; detector alerts (see :mod:`repro.metrics.slo`) are appended with
    their simulated timestamps.
    """
    span = sampler.samples * sampler.interval
    lines = [
        f"telemetry: {sampler.samples} samples"
        f" x {sampler.interval:g}s = {span:g}s simulated"
        + (f", {sampler.dropped} dropped" if sampler.dropped else "")
    ]
    label_w = max(
        (len(key) for key in sampler.series), default=0
    )
    for key in sorted(sampler.series):
        series = sampler.series[key]
        values = list(series.values)
        if not values:
            continue
        unit = f" {series.unit}" if series.unit else ""
        lines.append(
            f"{key:<{label_w}} |{sparkline(values, width)}|"
            f" last={series.last:.4g} peak={max(values):.4g}{unit}"
        )
    if alerts:
        lines.append("alerts:")
        for alert in alerts:
            lines.append(f"  {alert}")
    return "\n".join(lines)
