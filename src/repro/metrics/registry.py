"""Typed per-node and per-operator counters for one query execution.

The registry replaces the old ad-hoc ``ctx.stats`` Counter as the single
place execution-layer instrumentation reports to.  The legacy query-wide
counter keys (``packets_sent``, ``spool_pages_written``, ...) are still
maintained — ``ExecutionContext.stats`` is now a view of
:attr:`MetricsRegistry.query` — but every event is *also* attributed to
the node (and, where meaningful, the operator) that caused it, which is
what the paper's resource-utilisation arguments need.

Everything here is passive bookkeeping: recording a metric never touches
the simulation, so timelines are bit-identical with metrics interrogated
or ignored.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Optional


class NodeMetrics:
    """Per-node execution counters (one instance per processor)."""

    __slots__ = (
        "name",
        "tuples_in",
        "tuples_out",
        "packets_sent",
        "packets_received",
        "packets_short_circuited",
        "control_messages",
        "spool_pages_read",
        "spool_pages_written",
        "hash_table_peak_bytes",
        "overflow_chunks",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.tuples_in = 0
        self.tuples_out = 0
        self.packets_sent = 0
        self.packets_received = 0
        self.packets_short_circuited = 0
        self.control_messages = 0
        self.spool_pages_read = 0
        self.spool_pages_written = 0
        self.hash_table_peak_bytes = 0.0
        self.overflow_chunks = 0

    def as_dict(self) -> dict[str, Any]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"<NodeMetrics {self.name} in={self.tuples_in}"
            f" out={self.tuples_out}>"
        )


class OperatorMetrics:
    """Per-operator counters (one instance per operator process)."""

    __slots__ = (
        "label",
        "node",
        "tuples_in",
        "tuples_out",
        "started_at",
        "finished_at",
    )

    def __init__(self, label: str, node: str) -> None:
        self.label = label
        self.node = node
        self.tuples_in = 0
        self.tuples_out = 0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    @property
    def elapsed(self) -> Optional[float]:
        if self.started_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def as_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "node": self.node,
            "tuples_in": self.tuples_in,
            "tuples_out": self.tuples_out,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<OperatorMetrics {self.label}@{self.node}>"


class MetricsRegistry:
    """Query-wide, per-node and per-operator counters for one execution."""

    def __init__(self) -> None:
        self.query: Counter[str] = Counter()
        self.nodes: dict[str, NodeMetrics] = {}
        self.operators: dict[str, OperatorMetrics] = {}

    # -- access -----------------------------------------------------------
    def node(self, name: str) -> NodeMetrics:
        metrics = self.nodes.get(name)
        if metrics is None:
            metrics = self.nodes[name] = NodeMetrics(name)
        return metrics

    def operator(self, label: str, node: str) -> OperatorMetrics:
        metrics = self.operators.get(label)
        if metrics is None:
            metrics = self.operators[label] = OperatorMetrics(label, node)
        return metrics

    # -- generic ----------------------------------------------------------
    def add(self, key: str, n: int = 1) -> None:
        """Bump a query-wide counter (legacy ``ctx.stats`` key space)."""
        self.query[key] += n

    # -- typed recording --------------------------------------------------
    def record_packet_sent(
        self, node: str, n_tuples: int, short_circuit: bool = False
    ) -> None:
        self.query["packets_sent"] += 1
        self.query["tuples_shipped"] += n_tuples
        nm = self.node(node)
        nm.packets_sent += 1
        nm.tuples_out += n_tuples
        if short_circuit:
            self.query["packets_short_circuited"] += 1
            nm.packets_short_circuited += 1

    def record_packet_received(self, node: str, n_tuples: int) -> None:
        self.query["packets_received"] += 1
        nm = self.node(node)
        nm.packets_received += 1
        nm.tuples_in += n_tuples

    def record_control_message(self, node: str, n: int = 1) -> None:
        self.query["control_messages"] += n
        self.node(node).control_messages += n

    def record_spool_write(self, node: str, n_pages: int = 1) -> None:
        self.query["spool_pages_written"] += n_pages
        self.node(node).spool_pages_written += n_pages

    def record_spool_read(self, node: str, n_pages: int = 1) -> None:
        self.query["spool_pages_read"] += n_pages
        self.node(node).spool_pages_read += n_pages

    def record_hash_table_bytes(self, node: str, bytes_used: float) -> None:
        nm = self.node(node)
        if bytes_used > nm.hash_table_peak_bytes:
            nm.hash_table_peak_bytes = bytes_used

    def record_overflow_chunk(self, node: str) -> None:
        self.query["hash_overflows"] += 1
        self.node(node).overflow_chunks += 1

    def record_operator_start(
        self, label: str, node: str, now: float
    ) -> OperatorMetrics:
        metrics = self.operator(label, node)
        metrics.started_at = now
        return metrics

    def record_operator_finish(self, label: str, node: str, now: float) -> None:
        self.operator(label, node).finished_at = now

    def record_operator_tuples(
        self, label: str, node: str, tuples_in: int = 0, tuples_out: int = 0
    ) -> None:
        metrics = self.operator(label, node)
        metrics.tuples_in += tuples_in
        metrics.tuples_out += tuples_out

    # -- export -----------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A plain-dict dump of every counter (for results/serialisation)."""
        return {
            "query": dict(self.query),
            "nodes": {k: v.as_dict() for k, v in sorted(self.nodes.items())},
            "operators": {
                k: v.as_dict() for k, v in sorted(self.operators.items())
            },
        }
