"""Workload-level metrics: per-query latency records and their summary.

The paper reports single-query response times; a multiuser benchmark
needs the distributional view — per-query latency percentiles, queue
waits, and throughput in queries per second of *simulated* time.  All
numbers here are derived from simulated timestamps recorded by the
workload runner, so a seeded workload reproduces them bit-identically.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    ``q`` in (0, 100].  Empty input returns 0.0.
    """
    if not values:
        return 0.0
    if not 0.0 < q <= 100.0:
        raise ValueError(f"percentile {q} outside (0, 100]")
    ordered = sorted(values)
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency (or wait-time) sample: percentiles and moments."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "LatencyStats":
        if not values:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            count=len(values),
            mean=sum(values) / len(values),
            p50=percentile(values, 50.0),
            p95=percentile(values, 95.0),
            p99=percentile(values, 99.0),
            max=max(values),
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


@dataclass(frozen=True)
class QueryRecord:
    """One request's lifecycle timestamps inside a workload run.

    Attributes:
        index: Global submission index (0-based, submission order).
        client: Terminal number (closed loop) or -1 (open-loop arrivals).
        kind: The mix entry's label ("10% selection", "joinABprime", ...).
        submitted: Simulated time the request entered the admission queue.
        admitted: Time it won an execution slot (None if it timed out
            while still queued).
        finished: Completion (or abort) time.
        error: ``"ExceptionName: message"`` when the request failed;
            ``None`` on success.
    """

    index: int
    client: int
    kind: str
    submitted: float
    admitted: Optional[float]
    finished: float
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def latency(self) -> float:
        """Submission to completion — what a terminal user experiences."""
        return self.finished - self.submitted

    @property
    def queue_wait(self) -> float:
        """Time spent in the admission queue before execution (or abort)."""
        start = self.admitted if self.admitted is not None else self.finished
        return start - self.submitted

    @property
    def service_time(self) -> float:
        """Admission to completion — execution under contention."""
        if self.admitted is None:
            return 0.0
        return self.finished - self.admitted

    def as_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "client": self.client,
            "kind": self.kind,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "finished": self.finished,
            "latency": self.latency,
            "queue_wait": self.queue_wait,
            "service_time": self.service_time,
            "error": self.error,
        }


@dataclass
class WorkloadResult:
    """Outcome of one multiuser workload run on one machine.

    ``latency``/``queue_wait``/``service`` summarise completed requests;
    failed ones (deadlock victims, admission timeouts, lock timeouts)
    are counted separately and never pollute the percentiles.
    """

    machine: str
    mix: str
    arrival: str
    clients: int
    mpl: int
    policy: str
    seed: int
    elapsed: float
    records: list[QueryRecord] = field(default_factory=list)
    admission: dict[str, Any] = field(default_factory=dict)

    @property
    def submitted(self) -> int:
        return len(self.records)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.ok)

    @property
    def failed(self) -> int:
        return self.submitted - self.completed

    @property
    def throughput(self) -> float:
        """Completed queries per second of simulated time."""
        if self.elapsed <= 0.0:
            return 0.0
        return self.completed / self.elapsed

    @property
    def latency(self) -> LatencyStats:
        return LatencyStats.from_values(
            [r.latency for r in self.records if r.ok]
        )

    @property
    def queue_wait(self) -> LatencyStats:
        return LatencyStats.from_values(
            [r.queue_wait for r in self.records if r.ok]
        )

    @property
    def service(self) -> LatencyStats:
        return LatencyStats.from_values(
            [r.service_time for r in self.records if r.ok]
        )

    def by_kind(self) -> dict[str, LatencyStats]:
        """Completed-request latency summaries per mix entry."""
        buckets: dict[str, list[float]] = {}
        for record in self.records:
            if record.ok:
                buckets.setdefault(record.kind, []).append(record.latency)
        return {
            kind: LatencyStats.from_values(values)
            for kind, values in sorted(buckets.items())
        }

    def errors_by_type(self) -> dict[str, int]:
        """Failure counts keyed by exception name."""
        counts: dict[str, int] = {}
        for record in self.records:
            if record.error is not None:
                name = record.error.split(":", 1)[0]
                counts[name] = counts.get(name, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict[str, Any]:
        return {
            "machine": self.machine,
            "mix": self.mix,
            "arrival": self.arrival,
            "clients": self.clients,
            "mpl": self.mpl,
            "policy": self.policy,
            "seed": self.seed,
            "elapsed": self.elapsed,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "errors": self.errors_by_type(),
            "throughput": self.throughput,
            "latency": self.latency.as_dict(),
            "queue_wait": self.queue_wait.as_dict(),
            "service": self.service.as_dict(),
            "by_kind": {
                kind: stats.as_dict()
                for kind, stats in self.by_kind().items()
            },
            "admission": dict(self.admission),
            "records": [r.as_dict() for r in self.records],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"<WorkloadResult {self.machine}/{self.mix} mpl={self.mpl}"
            f" {self.completed}/{self.submitted} ok"
            f" {self.throughput:.3f} q/s p95={self.latency.p95:.3f}s>"
        )
