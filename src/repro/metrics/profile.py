"""Query profiler: EXPLAIN ANALYZE over the physical IR.

A :class:`Profiler` attaches to one query execution (Gamma or Teradata)
and folds every hardware service interval back onto the IR node that
caused it:

* drivers *register* each operator process against an IR node id and a
  phase ("build", "probe", "overflow", ...) when they spawn it;
* every :class:`~repro.sim.Server` carrying a ``profile_hook`` reports
  ``(server, process, start, duration)`` at service start; the profiler
  resolves the process to an operator by walking ``Process.parent`` —
  helper processes (couriers, page feeders) need no explicit
  registration;
* ports report tuple counts for the process currently executing.

Everything is passive — the profiler never schedules simulation events,
so timelines are bit-identical with profiling on or off (pinned by the
golden-timeline tests).  :meth:`Profiler.finish` condenses the recording
into a serialisable :class:`QueryProfile`: per-operator spans, a bucketed
:class:`~repro.metrics.timeline.PhaseTimeline`, the critical path through
the operator DAG, and a bottleneck verdict.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from .timeline import Interval, PhaseTimeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim import Process, Server

#: Bucket label for busy time no registered operator claims (scheduler
#: control messages, host round-trips, lock/recovery traffic).
OTHER = "(other)"

#: Per-operator busy spread (max site / mean site) beyond which the
#: bottleneck verdict becomes "skew" instead of "<resource>-bound".
SKEW_THRESHOLD = 2.0


@dataclass
class OperatorSpan:
    """Activity attributed to one IR node across all sites."""

    op_id: str
    first: float = float("inf")
    last: float = 0.0
    busy: dict[str, float] = field(default_factory=dict)
    by_node: dict[str, float] = field(default_factory=dict)
    by_phase: dict[str, float] = field(default_factory=dict)
    tuples_in: int = 0
    tuples_out: int = 0
    pages: int = 0

    @property
    def total_busy(self) -> float:
        return sum(self.busy.values())

    @property
    def window(self) -> float:
        """Wall-clock (simulated) extent from first to last activity."""
        if self.first > self.last:
            return 0.0
        return self.last - self.first

    def as_dict(self) -> dict[str, Any]:
        return {
            "op_id": self.op_id,
            "first": None if self.first > self.last else self.first,
            "last": None if self.first > self.last else self.last,
            "busy": dict(sorted(self.busy.items())),
            "by_node": dict(sorted(self.by_node.items())),
            "by_phase": dict(sorted(self.by_phase.items())),
            "tuples_in": self.tuples_in,
            "tuples_out": self.tuples_out,
            "pages": self.pages,
        }


class Profiler:
    """Collects attributed service intervals for one query execution."""

    def __init__(self) -> None:
        self.spans: dict[str, OperatorSpan] = {}
        self.intervals: list[Interval] = []
        self._registered: dict[Any, tuple[str, Optional[str]]] = {}
        self._resolved: dict[Any, tuple[str, Optional[str]]] = {}
        self._servers: dict[Any, tuple[str, str]] = {}
        self.class_counts: Counter[str] = Counter()
        self.server_busy: dict[str, float] = {}
        self._server_class: dict[str, str] = {}
        #: Nodes each operator was *placed* on, whether or not they ever
        #: logged an interval — the skew verdict must count a node that
        #: did zero work.
        self.placements: dict[str, set[str]] = {}

    # -- wiring ------------------------------------------------------------
    def wire_server(
        self, server: "Server", resource_class: str, node_name: str
    ) -> None:
        """Attach the profile hook to ``server``, declaring its resource
        class explicitly (never inferred from the server's name)."""
        self._servers[server] = (resource_class, node_name)
        self._server_class[server.name] = resource_class
        self.class_counts[resource_class] += 1
        server.profile_hook = self._on_service

    def register(
        self,
        proc: "Process",
        op_id: str,
        phase: Optional[str] = None,
        node: Optional[str] = None,
    ) -> None:
        """Bind a spawned operator process to an IR node id and phase.

        ``node`` declares the processor the fragment was placed on, so
        the operator's per-node accounting includes sites that end up
        doing no work at all (the most extreme skew).
        """
        self._registered[proc] = (op_id, phase)
        self._resolved[proc] = (op_id, phase)
        if node is not None:
            self.placements.setdefault(op_id, set()).add(node)

    # -- recording (hot path, must stay passive) ---------------------------
    def _resolve(self, proc: Optional["Process"]) -> tuple[str, Optional[str]]:
        if proc is None:
            return (OTHER, None)
        hit = self._resolved.get(proc)
        if hit is not None:
            return hit
        chain = []
        found: Optional[tuple[str, Optional[str]]] = None
        cursor: Optional["Process"] = proc
        while cursor is not None:
            found = self._resolved.get(cursor)
            if found is not None:
                break
            chain.append(cursor)
            cursor = cursor.parent
        result = found if found is not None else (OTHER, None)
        for entry in chain:
            self._resolved[entry] = result
        return result

    def _span(self, op_id: str) -> OperatorSpan:
        span = self.spans.get(op_id)
        if span is None:
            span = self.spans[op_id] = OperatorSpan(op_id)
        return span

    def _on_service(
        self,
        server: "Server",
        proc: Optional["Process"],
        start: float,
        dur: float,
    ) -> None:
        resource, node = self._servers[server]
        self.server_busy[server.name] = (
            self.server_busy.get(server.name, 0.0) + dur
        )
        op_id, phase = self._resolve(proc)
        span = self._span(op_id)
        if start < span.first:
            span.first = start
        end = start + dur
        if end > span.last:
            span.last = end
        span.busy[resource] = span.busy.get(resource, 0.0) + dur
        span.by_node[node] = span.by_node.get(node, 0.0) + dur
        if phase:
            span.by_phase[phase] = span.by_phase.get(phase, 0.0) + dur
        if resource == "disk":
            span.pages += 1
        self.intervals.append((op_id, phase, resource, node, start, dur))

    def record_tuples(
        self,
        proc: Optional["Process"],
        tuples_in: int = 0,
        tuples_out: int = 0,
    ) -> None:
        """Attribute tuple counts to whichever operator ``proc`` serves."""
        op_id, _phase = self._resolve(proc)
        span = self._span(op_id)
        span.tuples_in += tuples_in
        span.tuples_out += tuples_out

    def add_tuples(
        self, op_id: str, tuples_in: int = 0, tuples_out: int = 0
    ) -> None:
        """Attribute tuple counts directly to an IR node id."""
        span = self._span(op_id)
        span.tuples_in += tuples_in
        span.tuples_out += tuples_out

    # -- condensing --------------------------------------------------------
    def finish(
        self,
        ir: Optional[Any],
        elapsed: float,
        n_buckets: int = 48,
        op_ids: Optional[set[str]] = None,
    ) -> "QueryProfile":
        """Fold the recording into a :class:`QueryProfile`.

        ``ir`` may be a PhysicalIR (tree + critical path are derived from
        its operator DAG), an UpdateIR (single-node tree), or ``None``.

        ``op_ids`` restricts the profile to one request's IR nodes: when
        several concurrent requests share a profiler, each request's
        profile contains only the spans/intervals its own operators
        caused (shared unattributed time — scheduler control traffic,
        lock wakeups — is excluded rather than multiply counted).
        """
        intervals = self.intervals
        spans = self.spans
        if op_ids is not None:
            wanted = set(op_ids)
            intervals = [iv for iv in self.intervals if iv[0] in wanted]
            spans = {
                op_id: span for op_id, span in self.spans.items()
                if op_id in wanted
            }
        timeline = PhaseTimeline.from_intervals(
            intervals, elapsed, self.class_counts, n_buckets
        )
        root = getattr(ir, "root", None)
        tree = _plan_tree(root) if root is not None else _update_tree(ir)
        path = _critical_path(root, spans) if root is not None else []
        if not path and ir is not None and hasattr(ir, "op_id"):
            span = spans.get(ir.op_id)
            if span is not None:
                path = [_path_entry(span, wait=0.0)]
        if op_ids is None:
            verdict = self._verdict(elapsed)
        else:
            verdict = self._subset_verdict(intervals, spans, elapsed)
        return QueryProfile(
            elapsed=elapsed,
            spans=dict(spans),
            timeline=timeline,
            critical_path=path,
            verdict=verdict,
            tree=tree,
            plan=str(getattr(ir, "description", "") or ""),
            placements={
                op_id: tuple(sorted(nodes))
                for op_id, nodes in self.placements.items()
            },
        )

    def _verdict(self, elapsed: float) -> str:
        """``cpu-bound`` / ``disk-bound`` / ``net-bound`` / ``skew``."""
        if elapsed <= 0.0 or not self.server_busy:
            return "idle"
        peak: dict[str, float] = {}
        for name, busy in self.server_busy.items():
            resource = self._server_class[name]
            fraction = busy / elapsed
            if fraction > peak.get(resource, 0.0):
                peak[resource] = fraction
        if not peak:
            return "idle"
        return self._classify(peak, self.spans, self.intervals)

    def _subset_verdict(
        self,
        intervals: list[Interval],
        spans: dict[str, OperatorSpan],
        elapsed: float,
    ) -> str:
        """The verdict over one request's share of a shared recording.

        Peak busy fractions come from the filtered intervals grouped by
        (resource, node) — each node carries at most one server per
        resource class, so this matches the per-server accounting the
        full-run verdict uses.
        """
        if elapsed <= 0.0 or not intervals:
            return "idle"
        busy_by: Counter[tuple[str, str]] = Counter()
        for _op_id, _phase, resource, node, _start, dur in intervals:
            busy_by[(resource, node)] += dur
        peak: dict[str, float] = {}
        for (resource, _node), busy in busy_by.items():
            fraction = busy / elapsed
            if fraction > peak.get(resource, 0.0):
                peak[resource] = fraction
        return self._classify(peak, spans, intervals)

    def _classify(
        self,
        peak: dict[str, float],
        spans: dict[str, OperatorSpan],
        intervals: list[Interval],
    ) -> str:
        dominant = max(peak, key=lambda r: peak[r])
        busiest = max(
            (s for s in spans.values() if s.op_id != OTHER),
            key=lambda s: s.total_busy,
            default=None,
        )
        if busiest is not None and busiest.busy:
            # Compare only the sites doing the span's dominant kind of
            # work — mixing disk-site scan time with the slivers of net
            # time on other nodes would flag uniform plans as skewed.
            span_cls = max(busiest.busy, key=lambda c: busiest.busy[c])
            per_node: Counter[str] = Counter()
            # Every placed node participates in the mean, at zero if it
            # never logged an interval — a fragment doing no work at all
            # is the most extreme skew, not evidence of uniformity.
            for node in self.placements.get(busiest.op_id, ()):
                per_node[node] = 0
            for op_id, _phase, cls, node, _start, dur in intervals:
                if op_id == busiest.op_id and cls == span_cls:
                    per_node[node] += dur
            if len(per_node) >= 2:
                shares = list(per_node.values())
                mean = sum(shares) / len(shares)
                if mean > 0.0 and max(shares) / mean > SKEW_THRESHOLD:
                    return "skew"
        return f"{dominant}-bound"


# ---------------------------------------------------------------------------
# IR walking (duck-typed so metrics never imports the engine package)
# ---------------------------------------------------------------------------


def _ir_children(node: Any) -> list[Any]:
    """Input operators of an IR node, in plan order.

    Duck-typed on the PR 3 IR shapes: hash-join probes carry
    ``build_input`` + ``source``, sort-merge joins ``left`` + ``right``,
    unary operators ``source``, scans nothing.
    """
    build = getattr(node, "build_input", None)
    if build is not None:
        return [build, node.source]
    left = getattr(node, "left", None)
    if left is not None:
        return [left, node.right]
    source = getattr(node, "source", None)
    return [source] if source is not None else []


def _exchange_kind(node: Any) -> Optional[str]:
    exchange = getattr(node, "exchange", None)
    if exchange is None:
        return None
    kind = getattr(exchange, "kind", None)
    return getattr(kind, "value", str(kind)) if kind is not None else None


def _plan_tree(node: Any) -> dict[str, Any]:
    return {
        "op_id": node.op_id,
        "label": node.describe(),
        "exchange": _exchange_kind(node),
        "children": [_plan_tree(child) for child in _ir_children(node)],
    }


def _update_tree(ir: Optional[Any]) -> Optional[dict[str, Any]]:
    op_id = getattr(ir, "op_id", None)
    if op_id is None:
        return None
    return {
        "op_id": op_id,
        "label": str(getattr(ir, "description", op_id)),
        "exchange": None,
        "children": [],
    }


def _path_entry(span: OperatorSpan, wait: float) -> dict[str, Any]:
    return {
        "op_id": span.op_id,
        "first": None if span.first > span.last else span.first,
        "last": None if span.first > span.last else span.last,
        "busy": span.total_busy,
        "wait_for_input": wait,
    }


def _critical_path(
    root: Any, spans: dict[str, OperatorSpan]
) -> list[dict[str, Any]]:
    """Longest dependency chain of spans through the operator DAG.

    Walk from the plan root towards the leaves, at each operator
    following the *gating* input — the child whose span finished last.
    ``wait_for_input`` on each entry is how long the operator was live
    before that gating input completed (pipelining overlap): large waits
    mark edges where the operator mostly sat on its input.
    """
    path: list[dict[str, Any]] = []
    node = root
    while node is not None:
        span = spans.get(node.op_id)
        gating = None
        gating_span = None
        for child in _ir_children(node):
            child_span = spans.get(child.op_id)
            if child_span is None or child_span.first > child_span.last:
                continue
            if gating_span is None or child_span.last > gating_span.last:
                gating, gating_span = child, child_span
        if span is not None and span.first <= span.last:
            wait = 0.0
            if gating_span is not None:
                wait = max(0.0, gating_span.last - span.first)
            path.append(_path_entry(span, wait))
        node = gating
    return path


# ---------------------------------------------------------------------------
# the finished profile
# ---------------------------------------------------------------------------


@dataclass
class QueryProfile:
    """Serialisable EXPLAIN ANALYZE payload for one executed query."""

    elapsed: float
    spans: dict[str, OperatorSpan]
    timeline: PhaseTimeline
    critical_path: list[dict[str, Any]]
    verdict: str
    tree: Optional[dict[str, Any]]
    plan: str = ""
    #: Placed nodes per operator (includes nodes that logged no work).
    placements: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def node_busy(self, op_id: str) -> dict[str, float]:
        """Per-node busy seconds for one operator, with every *placed*
        node present (at 0.0 when it never logged an interval)."""
        span = self.spans.get(op_id)
        per_node = {node: 0.0 for node in self.placements.get(op_id, ())}
        if span is not None:
            for node, busy in span.by_node.items():
                per_node[node] = per_node.get(node, 0.0) + busy
        return per_node

    def utilisation_spread(self, op_id: str) -> float:
        """max/mean per-node busy for one operator — 1.0 is perfectly
        uniform; large values mean a few sites carried the work."""
        per_node = self.node_busy(op_id)
        if not per_node:
            return 1.0
        mean = sum(per_node.values()) / len(per_node)
        if mean <= 0.0:
            return 1.0
        return max(per_node.values()) / mean

    def to_dict(self) -> dict[str, Any]:
        return {
            "elapsed": self.elapsed,
            "verdict": self.verdict,
            "plan": self.plan,
            "tree": self.tree,
            "spans": {
                op_id: span.as_dict()
                for op_id, span in sorted(self.spans.items())
            },
            "critical_path": list(self.critical_path),
            "timeline": self.timeline.to_dict(),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    # -- rendering ---------------------------------------------------------
    def render(self) -> str:
        """The EXPLAIN ANALYZE text: annotated plan tree, critical path,
        and per-resource / per-phase timelines."""
        lines = [
            f"EXPLAIN ANALYZE  elapsed={self.elapsed:.6f}s"
            f"  verdict={self.verdict}",
        ]
        if self.plan:
            lines.append(f"plan: {self.plan}")
        on_path = {entry["op_id"] for entry in self.critical_path}
        if self.tree is not None:
            lines.append("")
            self._render_node(self.tree, "", True, on_path, lines)
        hidden = sorted(
            op_id for op_id in self.spans
            if op_id != OTHER and not _in_tree(self.tree, op_id)
        )
        for op_id in hidden:
            lines.append(f"  {op_id}: {self._span_note(self.spans[op_id])}")
        if self.critical_path:
            lines.append("")
            lines.append("critical path (root -> gating input):")
            for entry in self.critical_path:
                wait = entry["wait_for_input"]
                lines.append(
                    f"  {entry['op_id']:<16} busy={entry['busy']:.4f}s"
                    f"  wait={wait:.4f}s"
                )
        lines.extend(self._render_timeline())
        return "\n".join(lines)

    def _render_node(
        self,
        tree: dict[str, Any],
        prefix: str,
        is_last: bool,
        on_path: set[str],
        lines: list[str],
    ) -> None:
        connector = "" if not prefix else ("`-- " if is_last else "|-- ")
        marker = "*" if tree["op_id"] in on_path else " "
        exchange = f" <-{tree['exchange']}-" if tree["exchange"] else ""
        span = self.spans.get(tree["op_id"])
        note = self._span_note(span) if span is not None else "(no activity)"
        lines.append(
            f"{prefix}{connector}{marker} {tree['label']}{exchange}  {note}"
        )
        children = tree["children"]
        child_prefix = prefix + (
            "" if not prefix else ("    " if is_last else "|   ")
        )
        for i, child in enumerate(children):
            self._render_node(
                child, child_prefix, i == len(children) - 1, on_path, lines
            )

    def _span_note(self, span: OperatorSpan) -> str:
        busy = " ".join(
            f"{resource}={span.busy[resource]:.4f}s"
            for resource in ("cpu", "disk", "net")
            if resource in span.busy
        )
        window = (
            f"[{span.first:.4f}..{span.last:.4f}]"
            if span.first <= span.last else "[idle]"
        )
        parts = [window]
        if busy:
            parts.append(busy)
        if span.tuples_in or span.tuples_out:
            parts.append(f"rows={span.tuples_in}->{span.tuples_out}")
        if span.pages:
            parts.append(f"pages={span.pages}")
        return " ".join(parts)

    def _render_timeline(self) -> list[str]:
        lines: list[str] = []
        if self.timeline.width <= 0.0:
            return lines
        lines.append("")
        lines.append(
            f"timeline ({self.timeline.n_buckets} x"
            f" {self.timeline.width:.6f}s buckets, machine busy fraction):"
        )
        for resource in ("cpu", "disk", "net"):
            if resource in self.timeline.resource_busy:
                strip = self.timeline.strip(
                    self.timeline.utilisation(resource)
                )
                lines.append(f"  {resource:<5}|{strip}|")
        phased = sorted(
            key for key in self.timeline.phase_busy if "/" in key
        )
        if phased:
            lines.append("phases (each normalised to its own peak):")
            for key in phased:
                lines.append(
                    f"  {key:<18}|{self.timeline.phase_strip(key)}|"
                )
        return lines


def _in_tree(tree: Optional[dict[str, Any]], op_id: str) -> bool:
    if tree is None:
        return False
    if tree["op_id"] == op_id:
        return True
    return any(_in_tree(child, op_id) for child in tree["children"])


def explain_analyze(result: Any) -> str:
    """Render the EXPLAIN ANALYZE text for a profiled query result.

    ``result`` is a :class:`~repro.engine.results.QueryResult` from
    ``machine.run(query, profile=True)`` (either machine).
    """
    profile = getattr(result, "profile", None)
    if profile is None:
        raise ValueError(
            "result has no profile; run the query with profile=True"
        )
    return profile.render()
