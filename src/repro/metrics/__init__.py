"""Observability layer for the simulated machines.

Four pieces, all passive (they never schedule simulation events, so the
simulated timeline is bit-identical with metrics enabled or disabled):

* :class:`MetricsRegistry` — typed per-node and per-operator counters
  (tuples, packets, spool I/O, control messages, hash-table bytes,
  overflow chunks), threaded through every execution context.
* :class:`TraceBuffer` — a structured trace-event stream (operator
  start/stop, packet send/receive, disk/CPU/network service intervals,
  counter tracks) with a Chrome-trace-format exporter for
  ``chrome://tracing`` / Perfetto.
* :class:`UtilisationReport` — the post-run per-node CPU/disk/network
  busy fractions the paper's Figures 1-8 arguments are built on.
* :class:`Profiler` / :class:`QueryProfile` — EXPLAIN ANALYZE over the
  physical IR: per-operator spans split by resource class, bucketed
  phase timelines, critical-path extraction and a bottleneck verdict,
  rendered by :func:`explain_analyze`.
* :class:`QueryRecord` / :class:`LatencyStats` / :class:`WorkloadResult`
  — per-query latency records and their percentile/throughput summary
  for multiuser workload runs.
* :class:`TelemetrySampler` / :class:`SampleSeries` — per-interval time
  series over every server, the admission controller, the lock manager
  and memory gauges, pulled by the kernel at a fixed simulated cadence
  (never scheduled, so the timeline is bit-identical either way).
* :class:`SlidingWindowTracker` / :class:`Alert` and the ``detect_*``
  rules — windowed latency percentiles and overload/convoy/skew onset
  detection with simulated timestamps.
"""

from .profile import OperatorSpan, Profiler, QueryProfile, explain_analyze
from .registry import MetricsRegistry, NodeMetrics, OperatorMetrics
from .report import NodeUtilisation, UtilisationReport, peak_utilisation
from .slo import (
    Alert,
    SlidingWindowTracker,
    detect_all,
    detect_convoy,
    detect_overload,
    detect_skew,
)
from .telemetry import SampleSeries, TelemetrySampler, render_dashboard
from .timeline import PhaseTimeline, density_strip, sparkline
from .trace import TraceBuffer
from .workload import LatencyStats, QueryRecord, WorkloadResult, percentile

__all__ = [
    "Alert",
    "LatencyStats",
    "MetricsRegistry",
    "NodeMetrics",
    "NodeUtilisation",
    "OperatorMetrics",
    "OperatorSpan",
    "PhaseTimeline",
    "Profiler",
    "QueryProfile",
    "QueryRecord",
    "SampleSeries",
    "SlidingWindowTracker",
    "TelemetrySampler",
    "TraceBuffer",
    "UtilisationReport",
    "WorkloadResult",
    "density_strip",
    "detect_all",
    "detect_convoy",
    "detect_overload",
    "detect_skew",
    "explain_analyze",
    "peak_utilisation",
    "percentile",
    "render_dashboard",
    "sparkline",
]
