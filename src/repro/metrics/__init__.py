"""Observability layer for the simulated machines.

Three pieces, all passive (they never schedule simulation events, so the
simulated timeline is bit-identical with metrics enabled or disabled):

* :class:`MetricsRegistry` — typed per-node and per-operator counters
  (tuples, packets, spool I/O, control messages, hash-table bytes,
  overflow chunks), threaded through every execution context.
* :class:`TraceBuffer` — a structured trace-event stream (operator
  start/stop, packet send/receive, disk/CPU/network service intervals)
  with a Chrome-trace-format exporter for ``chrome://tracing`` /
  Perfetto.
* :class:`UtilisationReport` — the post-run per-node CPU/disk/network
  busy fractions the paper's Figures 1-8 arguments are built on.
"""

from .registry import MetricsRegistry, NodeMetrics, OperatorMetrics
from .report import NodeUtilisation, UtilisationReport, peak_utilisation
from .trace import TraceBuffer

__all__ = [
    "MetricsRegistry",
    "NodeMetrics",
    "NodeUtilisation",
    "OperatorMetrics",
    "TraceBuffer",
    "UtilisationReport",
    "peak_utilisation",
]
