"""Observability layer for the simulated machines.

Four pieces, all passive (they never schedule simulation events, so the
simulated timeline is bit-identical with metrics enabled or disabled):

* :class:`MetricsRegistry` — typed per-node and per-operator counters
  (tuples, packets, spool I/O, control messages, hash-table bytes,
  overflow chunks), threaded through every execution context.
* :class:`TraceBuffer` — a structured trace-event stream (operator
  start/stop, packet send/receive, disk/CPU/network service intervals,
  counter tracks) with a Chrome-trace-format exporter for
  ``chrome://tracing`` / Perfetto.
* :class:`UtilisationReport` — the post-run per-node CPU/disk/network
  busy fractions the paper's Figures 1-8 arguments are built on.
* :class:`Profiler` / :class:`QueryProfile` — EXPLAIN ANALYZE over the
  physical IR: per-operator spans split by resource class, bucketed
  phase timelines, critical-path extraction and a bottleneck verdict,
  rendered by :func:`explain_analyze`.
* :class:`QueryRecord` / :class:`LatencyStats` / :class:`WorkloadResult`
  — per-query latency records and their percentile/throughput summary
  for multiuser workload runs.
"""

from .profile import OperatorSpan, Profiler, QueryProfile, explain_analyze
from .registry import MetricsRegistry, NodeMetrics, OperatorMetrics
from .report import NodeUtilisation, UtilisationReport, peak_utilisation
from .timeline import PhaseTimeline
from .trace import TraceBuffer
from .workload import LatencyStats, QueryRecord, WorkloadResult, percentile

__all__ = [
    "LatencyStats",
    "MetricsRegistry",
    "NodeMetrics",
    "NodeUtilisation",
    "OperatorMetrics",
    "OperatorSpan",
    "PhaseTimeline",
    "Profiler",
    "QueryProfile",
    "QueryRecord",
    "TraceBuffer",
    "UtilisationReport",
    "WorkloadResult",
    "explain_analyze",
    "peak_utilisation",
    "percentile",
]
