"""Phase timelines: bucketed busy-time series over simulated time.

The profiler records every service interval it attributes (operator,
phase, resource class, node, start, duration).  A :class:`PhaseTimeline`
folds those intervals into fixed-width buckets so the *shape* of a run is
visible — join build vs. probe vs. overflow phases, and the Figure 5-8
CPU <-> disk crossover — not just whole-run totals.

Everything here is post-hoc arithmetic over recorded intervals; nothing
touches the simulation.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence

#: One attributed service interval:
#: (op_id, phase, resource_class, node, start, duration).
Interval = tuple[str, Optional[str], str, str, float, float]

#: Density ramp used by the ASCII strip renderer (space = idle).
_RAMP = " .:-=*#%@"


def density_strip(values: Sequence[float]) -> str:
    """Render a 0..1 series as a one-line ASCII density strip.

    The shared renderer behind :meth:`PhaseTimeline.strip` and the
    telemetry dashboard sparklines — out-of-range values clip.
    """
    out = []
    top = len(_RAMP) - 1
    for v in values:
        v = 0.0 if v < 0.0 else (1.0 if v > 1.0 else v)
        out.append(_RAMP[round(v * top)])
    return "".join(out)


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """A self-normalised density strip for an arbitrary series.

    Values are scaled to the series' own [min, max] span (a flat series
    renders idle), and — when ``width`` is given and smaller than the
    series — adjacent samples are averaged into ``width`` columns so a
    long telemetry run still fits one terminal line.
    """
    vals = [float(v) for v in values]
    if width is not None and width > 0 and len(vals) > width:
        folded = []
        n = len(vals)
        for i in range(width):
            lo = i * n // width
            hi = max(lo + 1, (i + 1) * n // width)
            chunk = vals[lo:hi]
            folded.append(sum(chunk) / len(chunk))
        vals = folded
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    span = hi - lo
    if span <= 0.0:
        return " " * len(vals)
    return density_strip([(v - lo) / span for v in vals])


def _spread(
    series: list[float], start: float, dur: float, width: float
) -> None:
    """Add ``dur`` seconds beginning at ``start`` into fixed-width buckets,
    clipping each interval to the bucket boundaries it overlaps."""
    if dur <= 0.0 or width <= 0.0:
        return
    end = start + dur
    n = len(series)
    first = min(n - 1, max(0, int(start / width)))
    last = min(n - 1, max(0, int((end / width) - 1e-12)))
    for i in range(first, last + 1):
        lo = max(start, i * width)
        hi = min(end, (i + 1) * width)
        if hi > lo:
            series[i] += hi - lo


class PhaseTimeline:
    """Busy seconds per bucket, split by resource class and by op/phase.

    ``resource_busy[cls][i]`` is the total busy slot-seconds of resource
    class ``cls`` (cpu/disk/net) inside bucket ``i``;
    ``phase_busy["op/phase"][i]`` is the same for one operator phase.
    :meth:`utilisation` normalises a class series by bucket width times
    the number of servers in the class, giving a 0..1 time series.
    """

    def __init__(
        self,
        elapsed: float,
        n_buckets: int,
        resource_busy: dict[str, list[float]],
        phase_busy: dict[str, list[float]],
        class_counts: Mapping[str, int],
    ) -> None:
        self.elapsed = elapsed
        self.n_buckets = n_buckets
        self.width = elapsed / n_buckets if n_buckets and elapsed > 0 else 0.0
        self.resource_busy = resource_busy
        self.phase_busy = phase_busy
        self.class_counts = dict(class_counts)

    @classmethod
    def from_intervals(
        cls,
        intervals: Iterable[Interval],
        elapsed: float,
        class_counts: Mapping[str, int],
        n_buckets: int = 48,
    ) -> "PhaseTimeline":
        n_buckets = max(1, n_buckets)
        resource_busy: dict[str, list[float]] = {}
        phase_busy: dict[str, list[float]] = {}
        width = elapsed / n_buckets if elapsed > 0 else 0.0
        for op_id, phase, resource, _node, start, dur in intervals:
            if width <= 0.0:
                break
            series = resource_busy.get(resource)
            if series is None:
                series = resource_busy[resource] = [0.0] * n_buckets
            _spread(series, start, dur, width)
            key = f"{op_id}/{phase}" if phase else op_id
            series = phase_busy.get(key)
            if series is None:
                series = phase_busy[key] = [0.0] * n_buckets
            _spread(series, start, dur, width)
        return cls(elapsed, n_buckets, resource_busy, phase_busy, class_counts)

    def utilisation(self, resource: str) -> list[float]:
        """Per-bucket busy fraction (0..1) for one resource class."""
        series = self.resource_busy.get(resource)
        if series is None or self.width <= 0.0:
            return [0.0] * self.n_buckets
        denom = self.width * max(1, self.class_counts.get(resource, 1))
        return [min(1.0, v / denom) for v in series]

    def strip(self, values: Sequence[float]) -> str:
        """Render a 0..1 series as a one-line ASCII density strip."""
        return density_strip(values)

    def phase_strip(self, key: str) -> str:
        """ASCII strip for one op/phase, normalised to its own peak."""
        series = self.phase_busy.get(key)
        if not series:
            return " " * self.n_buckets
        peak = max(series)
        if peak <= 0.0:
            return " " * self.n_buckets
        return self.strip([v / peak for v in series])

    def to_dict(self) -> dict[str, Any]:
        return {
            "elapsed": self.elapsed,
            "n_buckets": self.n_buckets,
            "bucket_width": self.width,
            "class_counts": dict(self.class_counts),
            "resource_busy": {
                k: list(v) for k, v in sorted(self.resource_busy.items())
            },
            "phase_busy": {
                k: list(v) for k, v in sorted(self.phase_busy.items())
            },
        }
