"""Sliding-window SLO monitoring and rule-based overload detection.

The paper's multiuser question is *when* the machine saturates, not just
how it averages out: knee curves of latency percentiles against offered
load, and the moment queues start growing without bound.  End-of-run
aggregates (:class:`~repro.metrics.WorkloadResult`) cannot show that;
this module watches the run as it unfolds — in simulated time, fed by
the workload runner's per-query completions and the telemetry sampler's
per-interval gauges.

* :class:`SlidingWindowTracker` — windowed p50/p95/p99, throughput and
  error rate over the trailing ``window`` seconds, plus deterministic
  warm-up detection (the first time the windowed median settles near
  the steady-state median).
* :class:`Alert` and the ``detect_*`` rules — overload onset (sustained
  admission-queue growth), lock convoys (sustained lock-wait spikes)
  and skew hotspots (sustained per-node utilisation spread), each
  stamped with the simulated time it fired.

Everything here is passive arithmetic over recorded samples; nothing
touches the simulation.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Sequence

from ..errors import ReproError
from .workload import percentile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .telemetry import TelemetrySampler


class SlidingWindowTracker:
    """Latency/throughput/error-rate over a trailing simulated-time window.

    ``record`` is fed each completion (in nondecreasing finish order —
    the workload runner's natural order); ``snapshot(now)`` summarises
    the window ``(now - window, now]``.  ``wire(sampler)`` registers a
    telemetry probe so the windowed percentiles become time series on
    the normal sample cadence (node ``slo``).
    """

    def __init__(self, window: float = 2.0) -> None:
        if window <= 0.0:
            raise ReproError(f"SLO window must be > 0, got {window}")
        self.window = window
        self._times: list[float] = []
        self._latencies: list[float] = []
        self._ok: list[bool] = []

    def __len__(self) -> int:
        return len(self._times)

    def record(self, finished: float, latency: float, ok: bool) -> None:
        if self._times and finished < self._times[-1]:
            raise ReproError(
                "completions must arrive in nondecreasing finish order:"
                f" {finished} after {self._times[-1]}"
            )
        self._times.append(finished)
        self._latencies.append(latency)
        self._ok.append(ok)

    # ------------------------------------------------------------------
    def _window_bounds(self, now: float) -> tuple[int, int]:
        """Index range of completions in ``(now - window, now]``."""
        lo = bisect_right(self._times, now - self.window)
        hi = bisect_right(self._times, now)
        return lo, hi

    def snapshot(self, now: float) -> dict[str, Any]:
        """Windowed summary at ``now``; all-zero when the window is
        empty, percentiles over successful completions only."""
        lo, hi = self._window_bounds(now)
        count = hi - lo
        ok_lat = [
            self._latencies[i] for i in range(lo, hi) if self._ok[i]
        ]
        errors = count - len(ok_lat)
        return {
            "t": now,
            "window": self.window,
            "count": count,
            "errors": errors,
            "error_rate": errors / count if count else 0.0,
            "throughput": len(ok_lat) / self.window,
            "p50": percentile(ok_lat, 50.0),
            "p95": percentile(ok_lat, 95.0),
            "p99": percentile(ok_lat, 99.0),
        }

    def wire(self, sampler: "TelemetrySampler") -> None:
        """Publish the windowed summary as telemetry tracks."""
        p50 = sampler.series_for("slo", "p50", "s")
        p95 = sampler.series_for("slo", "p95", "s")
        p99 = sampler.series_for("slo", "p99", "s")
        rate = sampler.series_for("slo", "throughput", "q/s")
        err = sampler.series_for("slo", "error_rate", "frac")

        def probe(t: float) -> None:
            snap = self.snapshot(t)
            p50.append(t, snap["p50"])
            p95.append(t, snap["p95"])
            p99.append(t, snap["p99"])
            rate.append(t, snap["throughput"])
            err.append(t, snap["error_rate"])

        sampler.add_probe(probe)

    def warmup_end(self, tolerance: float = 0.25) -> Optional[float]:
        """The first completion time whose windowed median is within
        ``tolerance`` of the steady-state median.

        Steady state is the median latency of the second half of
        successful completions.  Returns ``None`` when there are fewer
        than four successes or the window never settles — both mean "do
        not trust a warm-up split on this run".
        """
        ok_times = [
            t for t, ok in zip(self._times, self._ok) if ok
        ]
        if len(ok_times) < 4:
            return None
        ok_lat = [
            lat for lat, ok in zip(self._latencies, self._ok) if ok
        ]
        steady = percentile(ok_lat[len(ok_lat) // 2:], 50.0)
        ceiling = steady * (1.0 + tolerance)
        for t in ok_times:
            snap = self.snapshot(t)
            if snap["count"] and snap["p50"] <= ceiling:
                return t
        return None


# ---------------------------------------------------------------------------
# rule-based detectors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Alert:
    """One detector firing, stamped with the simulated time it fired."""

    kind: str
    at: float
    value: float
    detail: str

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "at": self.at,
            "value": self.value,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        return f"[{self.kind}] t={self.at:g}s {self.detail}"


def _sustained_above(
    times: Sequence[float],
    values: Sequence[float],
    threshold: float,
    sustain: int,
    kind: str,
    detail: str,
) -> list[Alert]:
    """Fire once per excursion: ``sustain`` consecutive samples at or
    above ``threshold`` raise an alert; re-arming requires one sample
    below it."""
    alerts: list[Alert] = []
    run = 0
    armed = True
    for t, v in zip(times, values):
        if v >= threshold:
            run += 1
            if armed and run >= sustain:
                alerts.append(Alert(
                    kind, t, v,
                    f"{detail} >= {threshold:g}"
                    f" for {sustain} samples (now {v:g})",
                ))
                armed = False
        else:
            run = 0
            armed = True
    return alerts


def detect_overload(
    times: Sequence[float],
    depths: Sequence[float],
    sustain: int = 3,
    min_growth: float = 1.0,
) -> list[Alert]:
    """Overload onset: the admission queue grew monotonically over
    ``sustain`` consecutive intervals by at least ``min_growth``
    requests.  Fires once per excursion (re-arms when the queue
    shrinks)."""
    alerts: list[Alert] = []
    armed = True
    for i in range(len(depths)):
        if i >= 1 and depths[i] < depths[i - 1]:
            armed = True
        if i < sustain:
            continue
        window = [depths[j] for j in range(i - sustain, i + 1)]
        grew = all(b >= a for a, b in zip(window, window[1:]))
        if armed and grew and window[-1] - window[0] >= min_growth:
            alerts.append(Alert(
                "overload", times[i], depths[i],
                f"admission queue grew {window[0]:g} -> {window[-1]:g}"
                f" over {sustain} intervals",
            ))
            armed = False
    return alerts


def detect_convoy(
    times: Sequence[float],
    waiting: Sequence[float],
    threshold: float = 2.0,
    sustain: int = 2,
) -> list[Alert]:
    """Lock convoy: sustained spike in transactions waiting on locks."""
    return _sustained_above(
        times, waiting, threshold, sustain,
        "convoy", "lock waiters",
    )


def detect_skew(
    times: Sequence[float],
    spreads: Sequence[float],
    threshold: float = 0.5,
    sustain: int = 3,
) -> list[Alert]:
    """Skew hotspot: sustained per-node utilisation spread (max - min)."""
    return _sustained_above(
        times, spreads, threshold, sustain,
        "skew", "cpu utilisation spread",
    )


def detect_all(
    sampler: "TelemetrySampler",
    overload_sustain: int = 3,
    convoy_threshold: float = 2.0,
    skew_threshold: float = 0.5,
) -> list[Alert]:
    """Run every detector against the sampler's canonical tracks.

    Missing tracks are skipped, so the same call serves both machines
    and partial wirings.  Alerts come back in simulated-time order.
    """
    alerts: list[Alert] = []
    series = sampler.series
    queued = series.get("admission.queued")
    if queued is not None:
        alerts.extend(detect_overload(
            list(queued.times), list(queued.values),
            sustain=overload_sustain,
        ))
    waiting = series.get("locks.waiting")
    if waiting is not None:
        alerts.extend(detect_convoy(
            list(waiting.times), list(waiting.values),
            threshold=convoy_threshold,
        ))
    spread = series.get("cluster.cpu.util.spread")
    if spread is not None:
        alerts.extend(detect_skew(
            list(spread.times), list(spread.values),
            threshold=skew_threshold,
        ))
    alerts.sort(key=lambda a: (a.at, a.kind))
    return alerts
