"""Structured trace events with a Chrome-trace-format JSON exporter.

A :class:`TraceBuffer` collects timestamped events as the simulation runs
— operator start/stop, packet send/receive, disk/CPU/network service
intervals — and exports them in the Trace Event Format understood by
``chrome://tracing`` and https://ui.perfetto.dev.  Simulated seconds map
to trace microseconds.

Each simulated node becomes a trace *process* and each resource or
operator on it a *thread*, so Perfetto renders one swim-lane per
CPU/disk/NIC per node — the picture behind the paper's Figures 1-8
utilisation arguments.

Recording is append-only Python-list work: no simulation events are ever
scheduled, so tracing cannot change the timeline.

Long workloads can bound memory with ``TraceBuffer(cap=...)``: data
events ride a ring buffer (the oldest fall off, ``dropped`` counts
them and the export surfaces the count under ``otherData``), while the
process/thread name metadata needed to label tracks is kept separately
and never evicted.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Optional

_US = 1_000_000  # simulated seconds -> trace microseconds


class TraceBuffer:
    """An in-memory stream of Chrome-trace events.

    ``cap`` bounds the number of retained *data* events (durations,
    instants, counters); ``None`` keeps everything.  Metadata events
    (process/thread names) are always retained — a capped trace still
    opens in Perfetto with labelled tracks.
    """

    def __init__(self, cap: Optional[int] = None) -> None:
        if cap is not None and cap < 1:
            raise ValueError(f"trace cap must be >= 1, got {cap}")
        self.cap = cap
        self._meta: list[dict[str, Any]] = []
        self._data: deque[dict[str, Any]] = deque(maxlen=cap)
        self.dropped = 0
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[str, str], int] = {}

    @property
    def events(self) -> list[dict[str, Any]]:
        """Every retained event, metadata first (export order)."""
        return self._meta + list(self._data)

    def __len__(self) -> int:
        return len(self._meta) + len(self._data)

    def _record(self, event: dict[str, Any]) -> None:
        data = self._data
        if data.maxlen is not None and len(data) == data.maxlen:
            self.dropped += 1
        data.append(event)

    # -- pid/tid management -----------------------------------------------
    def _pid(self, node: str) -> int:
        pid = self._pids.get(node)
        if pid is None:
            pid = self._pids[node] = len(self._pids) + 1
            self._meta.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": node},
            })
        return pid

    def _tid(self, node: str, lane: str) -> int:
        key = (node, lane)
        tid = self._tids.get(key)
        if tid is None:
            tid = self._tids[key] = (
                sum(1 for n, _ in self._tids if n == node) + 1
            )
            self._meta.append({
                "name": "thread_name", "ph": "M",
                "pid": self._pid(node), "tid": tid,
                "args": {"name": lane},
            })
        return tid

    # -- recording --------------------------------------------------------
    def duration(
        self,
        node: str,
        lane: str,
        name: str,
        start: float,
        dur: float,
        cat: str = "sim",
        args: Optional[dict[str, Any]] = None,
    ) -> None:
        """A complete event: ``name`` occupied ``lane`` for ``dur`` seconds."""
        event = {
            "name": name, "cat": cat, "ph": "X",
            "ts": start * _US, "dur": dur * _US,
            "pid": self._pid(node), "tid": self._tid(node, lane),
        }
        if args:
            event["args"] = args
        self._record(event)

    def instant(
        self,
        node: str,
        lane: str,
        name: str,
        ts: float,
        cat: str = "sim",
        args: Optional[dict[str, Any]] = None,
    ) -> None:
        """A point event (packet send/receive, control message)."""
        event = {
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": ts * _US,
            "pid": self._pid(node), "tid": self._tid(node, lane),
        }
        if args:
            event["args"] = args
        self._record(event)

    def counter(
        self,
        node: str,
        name: str,
        ts: float,
        values: dict[str, float],
        unit: Optional[str] = None,
    ) -> None:
        """A counter-track sample (``ph: "C"``).

        Perfetto renders one stacked counter track per (process, name),
        one series per key in ``values`` — used for hash-table bytes,
        port queue depth and overflow chunks so the Figure 13 traces show
        memory pressure over time, not just duration swim-lanes.
        ``unit`` is appended to the track name (``"depth [pages]"``) so
        the UI labels the axis.
        """
        self._record({
            "name": f"{name} [{unit}]" if unit else name,
            "cat": "counter", "ph": "C", "ts": ts * _US,
            "pid": self._pid(node), "tid": 0,
            "args": dict(values),
        })

    # -- export -----------------------------------------------------------
    def to_chrome(self) -> dict[str, Any]:
        """The Trace Event Format document (JSON-serialisable dict).

        Uncapped buffers keep the historical two-key shape; capped ones
        add ``otherData`` reporting the ring size and evicted events.
        """
        doc: dict[str, Any] = {
            "traceEvents": self.events, "displayTimeUnit": "ms",
        }
        if self.cap is not None:
            doc["otherData"] = {
                "cap": self.cap, "droppedEvents": self.dropped,
            }
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_chrome())

    def write(self, path: str) -> str:
        """Write the trace JSON; open the file in Perfetto to view it."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)
        return path
