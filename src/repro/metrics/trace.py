"""Structured trace events with a Chrome-trace-format JSON exporter.

A :class:`TraceBuffer` collects timestamped events as the simulation runs
— operator start/stop, packet send/receive, disk/CPU/network service
intervals — and exports them in the Trace Event Format understood by
``chrome://tracing`` and https://ui.perfetto.dev.  Simulated seconds map
to trace microseconds.

Each simulated node becomes a trace *process* and each resource or
operator on it a *thread*, so Perfetto renders one swim-lane per
CPU/disk/NIC per node — the picture behind the paper's Figures 1-8
utilisation arguments.

Recording is append-only Python-list work: no simulation events are ever
scheduled, so tracing cannot change the timeline.
"""

from __future__ import annotations

import json
from typing import Any, Optional

_US = 1_000_000  # simulated seconds -> trace microseconds


class TraceBuffer:
    """An in-memory stream of Chrome-trace events."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[str, str], int] = {}

    def __len__(self) -> int:
        return len(self.events)

    # -- pid/tid management -----------------------------------------------
    def _pid(self, node: str) -> int:
        pid = self._pids.get(node)
        if pid is None:
            pid = self._pids[node] = len(self._pids) + 1
            self.events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": node},
            })
        return pid

    def _tid(self, node: str, lane: str) -> int:
        key = (node, lane)
        tid = self._tids.get(key)
        if tid is None:
            tid = self._tids[key] = (
                sum(1 for n, _ in self._tids if n == node) + 1
            )
            self.events.append({
                "name": "thread_name", "ph": "M",
                "pid": self._pid(node), "tid": tid,
                "args": {"name": lane},
            })
        return tid

    # -- recording --------------------------------------------------------
    def duration(
        self,
        node: str,
        lane: str,
        name: str,
        start: float,
        dur: float,
        cat: str = "sim",
        args: Optional[dict[str, Any]] = None,
    ) -> None:
        """A complete event: ``name`` occupied ``lane`` for ``dur`` seconds."""
        event = {
            "name": name, "cat": cat, "ph": "X",
            "ts": start * _US, "dur": dur * _US,
            "pid": self._pid(node), "tid": self._tid(node, lane),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(
        self,
        node: str,
        lane: str,
        name: str,
        ts: float,
        cat: str = "sim",
        args: Optional[dict[str, Any]] = None,
    ) -> None:
        """A point event (packet send/receive, control message)."""
        event = {
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": ts * _US,
            "pid": self._pid(node), "tid": self._tid(node, lane),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(
        self,
        node: str,
        name: str,
        ts: float,
        values: dict[str, float],
    ) -> None:
        """A counter-track sample (``ph: "C"``).

        Perfetto renders one stacked counter track per (process, name),
        one series per key in ``values`` — used for hash-table bytes,
        port queue depth and overflow chunks so the Figure 13 traces show
        memory pressure over time, not just duration swim-lanes.
        """
        self.events.append({
            "name": name, "cat": "counter", "ph": "C", "ts": ts * _US,
            "pid": self._pid(node), "tid": 0,
            "args": dict(values),
        })

    # -- export -----------------------------------------------------------
    def to_chrome(self) -> dict[str, Any]:
        """The Trace Event Format document (JSON-serialisable dict)."""
        return {"traceEvents": self.events, "displayTimeUnit": "ms"}

    def to_json(self) -> str:
        return json.dumps(self.to_chrome())

    def write(self, path: str) -> str:
        """Write the trace JSON; open the file in Perfetto to view it."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh)
        return path
