"""Post-run utilisation reports.

The paper explains every headline result through resource utilisation:
linear selection speedup because the disks stay saturated (Figures 1-4),
the CPU-bound to disk-bound crossover as the page size grows (Figures
5-8), network-interface throttling of high-selectivity queries.  A
:class:`UtilisationReport` prints exactly those per-node CPU/disk/network
busy fractions for one finished execution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Optional


def peak_utilisation(
    utilisations: Mapping[str, float], resource: str
) -> float:
    """Busiest node's busy fraction for one resource class.

    Operates on the flat ``{"node.resource": fraction}`` mapping carried
    by ``QueryResult.utilisations``.  Matching is strict: either the bare
    key equals ``resource`` (``"ring"``, ``"ynet"``) or the key's final
    dot-separated component does — so resource ``"nic"`` matches
    ``"host.nic"`` but never a *node* that merely contains ``nic``
    (``"nic0.cpu"``, ``"mechanic.disk"``).  Non-finite values (an empty
    run reported as NaN upstream) are ignored; an empty mapping yields
    ``0.0``.
    """
    suffix = f".{resource}"
    return max(
        (
            value for key, value in utilisations.items()
            if (key == resource or key.endswith(suffix))
            and math.isfinite(value)
        ),
        default=0.0,
    )


@dataclass
class NodeUtilisation:
    """Busy fractions and key counters for one processor."""

    name: str
    cpu: float
    disk: Optional[float]
    nic: Optional[float]
    pages_read: int = 0
    pages_written: int = 0
    tuples_in: int = 0
    tuples_out: int = 0

    @property
    def busiest_resource(self) -> tuple[str, float]:
        candidates = [("cpu", self.cpu)]
        if self.disk is not None:
            candidates.append(("disk", self.disk))
        if self.nic is not None:
            candidates.append(("nic", self.nic))
        return max(candidates, key=lambda kv: kv[1])


class UtilisationReport:
    """Per-node CPU/disk/network busy fractions for one execution."""

    def __init__(
        self,
        elapsed: float,
        rows: list[NodeUtilisation],
        ring: Optional[float] = None,
    ) -> None:
        self.elapsed = elapsed
        self.rows = rows
        self.ring = ring

    @classmethod
    def from_context(cls, ctx: Any) -> "UtilisationReport":
        """Build from a finished :class:`~repro.engine.node.ExecutionContext`.

        Duck-typed on purpose (``ctx`` needs ``sim``, ``nodes``, ``net``
        and ``metrics``) so the metrics layer never imports the engine.
        """
        now = ctx.sim.now
        rows = []
        for name, node in ctx.nodes.items():
            nm = ctx.metrics.node(name)
            interface = ctx.net.interfaces.get(name)
            rows.append(NodeUtilisation(
                name=name,
                cpu=node.cpu.utilisation(now),
                disk=(
                    node.drive.server.utilisation(now)
                    if node.drive is not None else None
                ),
                nic=(
                    interface.server.utilisation(now)
                    if interface is not None else None
                ),
                pages_read=node.drive.pages_read if node.drive else 0,
                pages_written=node.drive.pages_written if node.drive else 0,
                tuples_in=nm.tuples_in,
                tuples_out=nm.tuples_out,
            ))
        return cls(now, rows, ring=ctx.net.ring.utilisation(now))

    # -- analysis ---------------------------------------------------------
    def bottleneck(self) -> tuple[str, str, float]:
        """(node, resource, busy fraction) of the most utilised resource."""
        best = ("", "none", 0.0)
        for row in self.rows:
            resource, value = row.busiest_resource
            if value > best[2]:
                best = (row.name, resource, value)
        if self.ring is not None and self.ring > best[2]:
            best = ("ring", "ring", self.ring)
        return best

    def max_utilisation(self, resource: str) -> float:
        """Highest busy fraction of ``resource`` (cpu|disk|nic) on any node."""
        values = [
            getattr(row, resource)
            for row in self.rows
            if getattr(row, resource) is not None
            and math.isfinite(getattr(row, resource))
        ]
        return max(values, default=0.0)

    def as_dict(self) -> dict[str, float]:
        """Flat ``{"node.resource": fraction}`` map (QueryResult shape)."""
        out: dict[str, float] = {}
        for row in self.rows:
            out[f"{row.name}.cpu"] = row.cpu
            if row.disk is not None:
                out[f"{row.name}.disk"] = row.disk
            if row.nic is not None:
                out[f"{row.name}.nic"] = row.nic
        if self.ring is not None:
            out["ring"] = self.ring
        return out

    # -- rendering --------------------------------------------------------
    @staticmethod
    def _fmt(value: Optional[float], missing: str) -> str:
        """``0.00`` for non-finite fractions (zero-elapsed runs), never NaN."""
        if value is None:
            return missing
        if not math.isfinite(value):
            value = 0.0
        return f"{value:.2f}"

    def to_markdown(self) -> str:
        lines = [
            f"### Utilisation over {self.elapsed:.3f} simulated seconds",
            "",
            "| node | cpu | disk | nic | pages r/w | tuples in/out |",
            "|---|---|---|---|---|---|",
        ]
        for row in self.rows:
            disk = self._fmt(row.disk, "—")
            nic = self._fmt(row.nic, "—")
            lines.append(
                f"| {row.name} | {self._fmt(row.cpu, '—')} | {disk} | {nic}"
                f" | {row.pages_read}/{row.pages_written}"
                f" | {row.tuples_in}/{row.tuples_out} |"
            )
        if self.ring is not None:
            lines.append(f"| ring | — | — | {self.ring:.2f} | — | — |")
        node, resource, value = self.bottleneck()
        lines.append("")
        lines.append(f"Bottleneck: {resource} at {node} ({value:.0%} busy)")
        return "\n".join(lines)

    def __str__(self) -> str:
        header = (
            f"{'node':>10} {'cpu':>6} {'disk':>6} {'nic':>6}"
            f" {'pages r/w':>12} {'tuples in/out':>16}"
        )
        lines = [
            f"utilisation over {self.elapsed:.3f}s simulated", header,
        ]
        for row in self.rows:
            disk = self._fmt(row.disk, "-")
            nic = self._fmt(row.nic, "-")
            lines.append(
                f"{row.name:>10} {self._fmt(row.cpu, '-'):>6} {disk:>6}"
                f" {nic:>6}"
                f" {f'{row.pages_read}/{row.pages_written}':>12}"
                f" {f'{row.tuples_in}/{row.tuples_out}':>16}"
            )
        node, resource, value = self.bottleneck()
        lines.append(f"bottleneck: {resource}@{node} {value:.0%}")
        return "\n".join(lines)
