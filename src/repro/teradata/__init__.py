"""The Teradata DBC/1012 baseline (Section 3 of the paper)."""

from .amp import Amp, AmpFragment, DenseHashIndex, hash_key_order
from .costs import DEFAULT_TERADATA_COSTS, TeradataCosts
from .machine import TeradataMachine, TeradataRelation

__all__ = [
    "Amp",
    "AmpFragment",
    "DEFAULT_TERADATA_COSTS",
    "DenseHashIndex",
    "TeradataCosts",
    "TeradataMachine",
    "TeradataRelation",
    "hash_key_order",
]
