"""Instruction/IO budgets for the Teradata DBC/1012 software path.

The DBC/1012 release 2.3 executed queries interpretively on 80286 AMPs
with full concurrency control and recovery; its per-tuple costs are an
order of magnitude above Gamma's compiled predicates.  The budgets below
were fitted against the Teradata columns of Tables 1-3 (themselves from the
MCC study [DEWI87]) and frozen; EXPERIMENTS.md reports the residuals.

Key fitted anchors:

* 1 % non-indexed selection: 6.86 / 28.22 / 213.13 s for 10 k / 100 k / 1 M
  ⇒ ≈4.2 ms of AMP work per scanned tuple.
* 10 % vs 1 % selections ⇒ ≈180 ms per *stored* result tuple (the
  single-tuple-optimised ``INSERT INTO`` path: ≥3 random I/Os plus logging
  and interpretation).
* single-tuple select ≈ 1.08 s ⇒ ≈1 s of host/IFP/Y-net fixed path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class TeradataCosts:
    """Instruction budgets (counts at the AMP's 1 MIPS) and I/O counts."""

    scan_tuple: float = 2600.0
    """Read + evaluate one tuple during a file scan (interpreted path)."""

    index_entry: float = 1500.0
    """Examine one dense-index entry (hash order, so a range predicate
    must look at every entry)."""

    page_io_setup: float = 2000.0
    """Per-page file-system overhead."""

    insert_tuple_cpu: float = 95_000.0
    """CPU portion of storing one result tuple via ``INSERT INTO``
    (locking, journaling bookkeeping, format conversion)."""

    redistribute_tuple: float = 3500.0
    """Hash + enqueue one tuple for the Y-net."""

    receive_tuple: float = 12_000.0
    """Dequeue one redistributed tuple and append it to a spool file."""

    sort_tuple_pass: float = 3200.0
    """Comparison/move cost per tuple per sort pass."""

    merge_tuple: float = 3000.0
    """Advance the sort-merge join by one tuple."""

    join_result_tuple: float = 3000.0
    """Materialise one joined output tuple."""

    aggregate_tuple: float = 3000.0
    """Fold one tuple into an aggregate accumulator (interpreted path)."""

    exact_match_cpu: float = 30_000.0
    """AMP work for a hash-addressed single-tuple retrieval."""

    update_tuple_cpu: float = 150_000.0
    """Single-tuple update path with full concurrency control and
    recovery (locks, transient + permanent journal)."""

    index_maintenance_cpu: float = 120_000.0
    """Maintain one dense secondary index entry under logging."""

    host_roundtrip_s: float = 0.95
    """Fixed host (AMDAHL/MVS) + IFP parse/dispatch + Y-net round trip."""

    result_table_create_s: float = 3.3
    """Fixed cost of creating and cataloguing a result table before an
    ``INSERT INTO ... SELECT`` (dictionary rows, locks on 20 AMPs).  Fitted
    from the intercept of the Table 1 response-time lines."""

    update_host_s: float = 0.45
    """Fixed host/IFP path for a single-tuple update (shorter than a
    retrieval: no result table, no answer set)."""

    update_ios: float = 3.0
    """Random I/Os per single-tuple update (data block + transient and
    permanent journal — the ">= 3 I/Os per tuple inserted" of Section 4)."""

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigError(f"cost {name} must be non-negative")


DEFAULT_TERADATA_COSTS = TeradataCosts()
