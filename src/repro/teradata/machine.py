"""The Teradata DBC/1012 baseline machine.

The comparison system of Sections 3-7: 4 IFPs, 20 AMPs with two DSUs each,
a 12 MB/s Y-net, release 2.3 software.  It accepts the same
:class:`~repro.engine.plan.Query` objects as :class:`~repro.engine.machine.
GammaMachine`, so every benchmark runs the identical workload on both
machines.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence
from zlib import crc32

from ..catalog import gamma_hash
from ..engine.plan import Query, UpdateRequest
from ..engine.results import QueryResult
from ..errors import CatalogError
from ..hardware import TeradataConfig
from ..metrics import Profiler
from ..sim import Simulation
from ..storage import Schema
from ..workloads import generate_tuples, wisconsin_schema
from .amp import Amp, AmpFragment
from .costs import DEFAULT_TERADATA_COSTS, TeradataCosts
from .executor import TeradataRun, TeradataUpdateRun
from .planner import TeradataPlanner


def _wire_profiler(profiler, amps, ynet=None) -> None:
    """Classify every hardware server so spans split busy time correctly."""
    for amp in amps:
        profiler.wire_server(amp.cpu, "cpu", amp.name)
        for drive in amp.drives:
            profiler.wire_server(drive.server, "disk", amp.name)
    if ynet is not None:
        profiler.wire_server(ynet, "net", "ynet")


def _wire_telemetry(sampler, sim, amps, ynet=None) -> None:
    """Attach a telemetry sampler to a DBC/1012 simulation.

    Mirrors :meth:`repro.engine.node.ExecutionContext._wire_telemetry`:
    cluster-aggregate CPU/disk utilisation tracks, per-AMP lanes on
    small machines, and the Y-net server — so the same dashboard and
    detectors read both machines.
    """
    sampler.attach(sim)
    sampler.watch_group(
        "cluster", "cpu.util", [(amp.name, amp.cpu) for amp in amps]
    )
    sampler.watch_group(
        "cluster", "disk.util",
        [(amp.name, drive.server) for amp in amps for drive in amp.drives],
    )
    if ynet is not None:
        sampler.watch_server(ynet, "ynet", "net")
    if len(amps) <= sampler.per_node_limit:
        for amp in amps:
            sampler.watch_server(amp.cpu, amp.name, "cpu")
            for drive in amp.drives:
                sampler.watch_server(drive.server, amp.name, "disk")


def _amp_utilisations(sim, amps, ynet=None) -> dict[str, float]:
    """Per-AMP CPU/disk (and Y-net) busy fractions for one finished run."""
    now = sim.now
    out: dict[str, float] = {}
    for amp in amps:
        out[f"{amp.name}.cpu"] = amp.cpu.utilisation(now)
        for drive in amp.drives:
            out[f"{drive.name}"] = drive.server.utilisation(now)
    if ynet is not None:
        out["ynet"] = ynet.utilisation(now)
    return out


class TeradataRelation:
    """A relation hash-partitioned on its primary key across all AMPs."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        key_attr: str,
        fragments: Sequence[AmpFragment],
    ) -> None:
        self.name = name
        self.schema = schema
        self.key_attr = key_attr
        self.fragments = list(fragments)

    @property
    def num_records(self) -> int:
        return sum(f.num_records for f in self.fragments)

    @property
    def num_pages(self) -> int:
        return sum(f.num_pages for f in self.fragments)

    @property
    def n_sites(self) -> int:
        return len(self.fragments)

    def indexed_attrs(self) -> set[str]:
        return set(self.fragments[0].indexes)

    def records(self) -> Iterable[tuple]:
        for fragment in self.fragments:
            yield from fragment.live_records()

    def amp_of_key(self, value: object, n_amps: int) -> int:
        return gamma_hash(value, n_amps)


class TeradataMachine:
    """A configured DBC/1012 with a catalog of loaded relations."""

    def __init__(
        self,
        config: Optional[TeradataConfig] = None,
        costs: TeradataCosts = DEFAULT_TERADATA_COSTS,
        skew_strategy: str = "hash",
    ) -> None:
        self.config = config or TeradataConfig.paper_default()
        self.costs = costs
        self.relations: dict[str, TeradataRelation] = {}
        #: Join redistribution strategy handed to every planner this
        #: machine constructs (see :mod:`repro.engine.skew`).
        self.skew_strategy = skew_strategy

    def _planner(self) -> TeradataPlanner:
        return TeradataPlanner(
            self.config, self, self.costs, skew_strategy=self.skew_strategy
        )

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"<TeradataMachine {self.config.n_amps} AMPs,"
            f" {len(self.relations)} relations>"
        )

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load_relation(
        self,
        name: str,
        schema: Schema,
        records: Sequence[tuple],
        primary_key: str,
        secondary_on: Iterable[str] = (),
    ) -> TeradataRelation:
        """Hash tuples to AMPs on the primary key; store in hash-key order.

        "Whenever a tuple is to be inserted into a relation, a hash
        function is applied to the primary key of the relation to select
        an AMP for storage."
        """
        if name in self.relations:
            raise CatalogError(f"relation {name!r} already exists")
        key_pos = schema.position(primary_key)
        n = self.config.n_amps
        buckets: list[list[tuple]] = [[] for _ in range(n)]
        for record in records:
            buckets[gamma_hash(record[key_pos], n)].append(record)
        fragments = [
            AmpFragment(
                f"{name}.a{i}", schema, primary_key,
                self.config.page_size, bucket,
            )
            for i, bucket in enumerate(buckets)
        ]
        relation = TeradataRelation(name, schema, primary_key, fragments)
        for attr in secondary_on:
            for fragment in fragments:
                fragment.add_index(attr)
        self.relations[name] = relation
        return relation

    def load_wisconsin(
        self,
        name: str,
        n: int,
        seed: Optional[int] = None,
        secondary_on: Iterable[str] = (),
        strings: str = "cheap",
    ) -> TeradataRelation:
        if seed is None:
            # crc32, not builtin hash: string hashing is salted per process,
            # and a per-run default seed would defeat reproducibility.
            seed = crc32(name.encode("utf-8")) % (2**31)
        records = list(
            generate_tuples(n, seed=seed, strings=strings)  # type: ignore[arg-type]
        )
        return self.load_relation(
            name, wisconsin_schema(), records,
            primary_key="unique1", secondary_on=secondary_on,
        )

    def lookup(self, name: str) -> TeradataRelation:
        try:
            return self.relations[name]
        except KeyError:
            raise CatalogError(f"unknown relation {name!r}") from None

    def drop_relation(self, name: str) -> None:
        self.lookup(name)
        del self.relations[name]

    def drop_if_exists(self, name: str) -> None:
        self.relations.pop(name, None)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        query: Query,
        profile: bool = False,
        telemetry: Optional["Any"] = None,
    ) -> QueryResult:
        """Execute a retrieval query (selection / join / aggregate)."""
        if query.into is not None and query.into in self.relations:
            raise CatalogError(f"result relation {query.into!r} exists")
        ir = self._planner().plan(query)
        sim = Simulation()
        amps = [Amp(sim, i, self.config) for i in range(self.config.n_amps)]
        profiler = Profiler() if profile else None
        run = TeradataRun(self, sim, amps, ir, profiler=profiler)
        if profiler is not None:
            _wire_profiler(profiler, amps, run.ynet)
        if telemetry is not None:
            _wire_telemetry(telemetry, sim, amps, run.ynet)
        sim.spawn(run.coordinator(), name="ifp")
        response_time = sim.run()
        if query.into is not None and run.result_relation is not None:
            self.relations[query.into] = run.result_relation
        result = QueryResult(
            response_time=response_time,
            tuples=run.collected if query.into is None else None,
            result_relation=query.into,
            result_count=run.result_count,
            stats=dict(run.stats),
            utilisations=_amp_utilisations(sim, amps, run.ynet),
            plan=run.plan_description,
        )
        if profiler is not None:
            result.profile = profiler.finish(ir, response_time)
        return result

    def run_workload(
        self, mix: "Any", spec: "Any", telemetry: Optional["Any"] = None
    ) -> "Any":
        """Run a multiuser workload on the DBC/1012: terminals submitting
        a query mix into one live simulation, behind admission control.

        The counterpart of
        :meth:`~repro.engine.machine.GammaMachine.run_workload` — the
        same :class:`~repro.workloads.multiuser.QueryMix` and
        :class:`~repro.workloads.multiuser.WorkloadSpec` drive both
        machines, so MPL sweeps compare them on identical workloads.
        All requests share one simulation, one set of AMPs and the
        single physical Y-net (the DBC/1012's broadcast network is the
        shared resource multiuser contention exposes first).
        """
        from ..sim import Server
        from ..workloads.multiuser import drive_workload

        sim = Simulation()
        amps = [Amp(sim, i, self.config) for i in range(self.config.n_amps)]
        ynet = Server("ynet")
        if telemetry is not None:
            _wire_telemetry(telemetry, sim, amps, ynet)
        machine = self

        class _Session:
            label = "teradata"

            @staticmethod
            def execute(index: int, request: Query | UpdateRequest) -> "Any":
                planner = machine._planner()
                planner.id_prefix = f"q{index}."
                if isinstance(request, Query):
                    if request.into is not None:
                        raise CatalogError(
                            "workload queries must stream to the host"
                            f" (into=None), got into={request.into!r}"
                        )
                    run: Any = TeradataRun(
                        machine, sim, amps, planner.plan(request),
                        ynet=ynet, tag=f"q{index}.",
                    )
                else:
                    run = TeradataUpdateRun(
                        machine, sim, amps, planner.compile_update(request)
                    )
                yield from run.coordinator()

        _Session.sim = sim
        return drive_workload(_Session, spec, mix, telemetry=telemetry)

    def update(
        self, request: UpdateRequest, profile: bool = False
    ) -> QueryResult:
        ir = self._planner().compile_update(request)
        sim = Simulation()
        amps = [Amp(sim, i, self.config) for i in range(self.config.n_amps)]
        run = TeradataUpdateRun(self, sim, amps, ir)
        proc = sim.spawn(run.coordinator(), name="ifp")
        profiler: Optional[Profiler] = None
        if profile:
            profiler = Profiler()
            _wire_profiler(profiler, amps)
            # Updates execute inline in the coordinator process.
            profiler.register(proc, ir.op_id, "update")
        response_time = sim.run()
        result = QueryResult(
            response_time=response_time,
            result_count=run.affected,
            stats=dict(run.stats),
            utilisations=_amp_utilisations(sim, amps),
            plan=ir.description,
        )
        if profiler is not None:
            result.profile = profiler.finish(ir, response_time)
        return result
