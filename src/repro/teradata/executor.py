"""Query execution on the Teradata DBC/1012 model.

The executor is a driver over the shared physical IR
(:mod:`repro.engine.ir`): it walks the operator DAG produced by
:class:`~repro.teradata.planner.TeradataPlanner` and lowers each Exchange
edge to the DBC/1012's machinery — spool-file redistributions over the
Y-net (a :class:`~repro.sim.Server` moving 4 KB packages), with
``LOCAL`` edges consumed in place (the primary-key join shortcut).

Selections scan (or fully scan a dense index over) each AMP's fragment;
results are redistributed by hashing the result key and stored through the
single-tuple-optimised ``INSERT INTO`` path (≈3 random I/Os plus heavy CPU
per tuple — the dominant cost in Tables 1 and 2).  Joins redistribute both
source relations by hashing the join attribute (skipped when it is the
primary key), sort the spool files, then sort-merge.  Aggregates fold
accumulators AMP-locally and merge them on one AMP (scalar) or
redistribute on the grouping attribute first (grouped).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Generator, Optional

from ..catalog import gamma_hash
from ..engine.ir import (
    AggregateOp,
    Exchange,
    ExchangeKind,
    PhysicalIR,
    ScanOp,
    SortMergeJoinOp,
    UpdateIR,
)
from ..engine.operators.aggregate import _Accumulator
from ..engine.plan import (
    AccessPath,
    AppendTuple,
    DeleteTuple,
    ExactMatch,
    ModifyTuple,
)
from ..errors import PlanError
from ..metrics import Profiler
from ..sim import Delay, Process, Server, Simulation, Use, WaitAll
from ..storage import Schema, external_sort, records_per_page
from .amp import Amp, AmpFragment

PACKAGE_BYTES = 4096  # Y-net moves spool pages


class TeradataRun:
    """One retrieval query on the DBC/1012."""

    def __init__(
        self, machine: "Any", sim: Simulation, amps: list[Amp],
        ir: PhysicalIR, profiler: Optional[Profiler] = None,
        ynet: Optional[Server] = None, tag: str = "",
    ) -> None:
        self.machine = machine
        self.costs = machine.costs
        self.config = machine.config
        self.sim = sim
        self.amps = amps
        self.ir = ir
        self.into = ir.into
        # Concurrent runs in one simulation share the single physical
        # Y-net (pass ``ynet``) and need distinct spool-file namespaces
        # (pass a per-request ``tag``); a standalone run owns both.
        self.ynet = Server("ynet") if ynet is None else ynet
        self.tag = tag
        self.profiler = profiler
        self.stats: Counter[str] = Counter()
        self.collected: list[tuple] = []
        self.result_count = 0
        self.result_relation: Optional[Any] = None
        self.plan_description = ir.description
        self._tmp = 0

    def _register(
        self, proc: Process, op_id: str, phase: Optional[str],
        node: Optional[str] = None,
    ) -> Process:
        """Attribute a spawned AMP process to an IR node (profiling only)."""
        if self.profiler is not None:
            self.profiler.register(proc, op_id, phase, node=node)
        return proc

    def _count_tuples(
        self, op_id: str, tuples_in: int = 0, tuples_out: int = 0
    ) -> None:
        if self.profiler is not None:
            self.profiler.add_tuples(
                op_id, tuples_in=tuples_in, tuples_out=tuples_out
            )

    # ------------------------------------------------------------------
    def coordinator(self) -> Generator[Any, Any, None]:
        yield Delay(self.costs.host_roundtrip_s)
        per_amp, schema = yield from self._execute(self.ir.root)
        matches = sum(len(m) for m in per_amp)
        self.result_count = matches
        if self.into is not None:
            yield Delay(self.costs.result_table_create_s)
            yield from self._store_phase(per_amp, schema)
        else:
            for bucket in per_amp:
                self.collected.extend(bucket)
            nbytes = matches * schema.tuple_bytes
            yield Use(self.ynet, nbytes / self.config.network.ring_bandwidth)

    def _execute(
        self, node: Any
    ) -> Generator[Any, Any, tuple[list[list[tuple]], Schema]]:
        if isinstance(node, ScanOp):
            result = yield from self._select_phase(node)
            return result
        if isinstance(node, SortMergeJoinOp):
            result = yield from self._join_phase(node)
            return result
        if isinstance(node, AggregateOp):
            result = yield from self._aggregate_phase(node)
            return result
        raise PlanError(f"Teradata model cannot execute {node!r}")

    # ------------------------------------------------------------------
    # selections
    # ------------------------------------------------------------------
    def _select_phase(
        self, scan: ScanOp
    ) -> Generator[Any, Any, tuple[list[list[tuple]], Schema]]:
        relation = scan.relation
        predicate = scan.predicate
        schema = scan.schema
        out: list[list[tuple]] = [[] for _ in self.amps]

        if scan.path is AccessPath.CLUSTERED_EXACT:
            # Hash-addressed single-tuple retrieval: one AMP, one access.
            amp_no = scan.sites[0]
            proc = self._register(
                self.sim.spawn(
                    self._amp_exact(self.amps[amp_no],
                                    relation.fragments[amp_no], predicate,
                                    out, amp_no),
                    name=f"exact.{amp_no}",
                ),
                scan.op_id, "scan", node=self.amps[amp_no].name,
            )
            yield WaitAll([proc])
            self._count_tuples(scan.op_id, tuples_out=len(out[amp_no]))
            return out, schema

        use_index = scan.path in (
            AccessPath.NONCLUSTERED_EXACT, AccessPath.NONCLUSTERED_INDEX
        )
        procs = []
        for i in scan.sites:
            amp = self.amps[i]
            fragment = relation.fragments[i]
            if use_index:
                gen = self._amp_index_select(amp, fragment, predicate, out, i)
            else:
                gen = self._amp_scan(amp, fragment, predicate, out, i)
            procs.append(
                self._register(
                    self.sim.spawn(gen, name=f"sel.{i}"), scan.op_id, "scan",
                    node=amp.name,
                )
            )
        yield WaitAll(procs)
        self._count_tuples(
            scan.op_id,
            tuples_in=sum(
                relation.fragments[i].num_records for i in scan.sites
            ),
            tuples_out=sum(len(bucket) for bucket in out),
        )
        return out, schema

    def _amp_exact(
        self, amp: Amp, fragment: AmpFragment, predicate: ExactMatch,
        out: list[list[tuple]], i: int,
    ) -> Generator[Any, Any, None]:
        yield from amp.work(self.costs.exact_match_cpu)
        pos = fragment.schema.position(predicate.attr)
        hits = [
            r for r in fragment.live_records() if r[pos] == predicate.value
        ]
        yield from amp.read_page(fragment.name, 0, sequential=False)
        out[i] = hits
        self.stats["pages_read"] += 1

    def _amp_scan(
        self, amp: Amp, fragment: AmpFragment, predicate: Any,
        out: list[list[tuple]], i: int,
    ) -> Generator[Any, Any, None]:
        compiled = predicate.compile(fragment.schema)
        matches = [r for r in fragment.live_records() if compiled(r)]
        out[i] = matches
        n = fragment.num_records
        pages = fragment.num_pages
        self.stats["pages_read"] += pages
        for page_no in range(pages):
            yield from amp.read_page(fragment.name, page_no)
        yield from amp.work(
            self.costs.scan_tuple * n + self.costs.page_io_setup * pages
        )

    def _amp_index_select(
        self, amp: Amp, fragment: AmpFragment, predicate: Any,
        out: list[list[tuple]], i: int,
    ) -> Generator[Any, Any, None]:
        attr = predicate.attr
        index = fragment.indexes[attr]
        if isinstance(predicate, ExactMatch):
            ordinals = index.exact(predicate.value)
        else:
            ordinals = index.matching(predicate.low, predicate.high)
        # The whole index is scanned sequentially (hash order, not key
        # order), then each qualifying tuple costs a random data access.
        for page_no in range(index.num_pages):
            yield from amp.read_page(index.name, page_no)
        yield from amp.work(self.costs.index_entry * len(index.entries))
        hits = []
        for ordinal in ordinals:
            page_no = fragment.page_of_ordinal(ordinal)
            yield from amp.read_page(fragment.name, page_no, sequential=False)
            hits.append(fragment.records[ordinal])
        yield from amp.work(self.costs.scan_tuple * len(hits))
        out[i] = hits
        self.stats["pages_read"] += index.num_pages + len(ordinals)

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------
    def _join_phase(
        self, join: SortMergeJoinOp
    ) -> Generator[Any, Any, tuple[list[list[tuple]], Schema]]:
        left_per_amp, left_schema = yield from self._execute(join.left)
        right_per_amp, right_schema = yield from self._execute(join.right)
        left_pos = left_schema.position(join.left_attr)
        right_pos = right_schema.position(join.right_attr)

        left_spools = yield from self._redistribute(
            left_per_amp, left_pos, left_schema,
            exchange=join.left_exchange,
            op_id=join.op_id,
        )
        right_spools = yield from self._redistribute(
            right_per_amp, right_pos, right_schema,
            exchange=join.right_exchange,
            op_id=join.op_id,
        )

        out: list[list[tuple]] = [[] for _ in self.amps]
        procs = []
        for i, amp in enumerate(self.amps):
            procs.append(
                self._register(
                    self.sim.spawn(
                        self._amp_sort_merge(
                            amp, left_spools[i], right_spools[i],
                            left_pos, right_pos, left_schema, right_schema,
                            out, i,
                        ),
                        name=f"smj.{i}",
                    ),
                    join.op_id, "merge", node=amp.name,
                )
            )
        yield WaitAll(procs)
        self._count_tuples(
            join.op_id,
            tuples_in=sum(len(s) for s in left_spools)
            + sum(len(s) for s in right_spools),
            tuples_out=sum(len(bucket) for bucket in out),
        )
        return out, join.schema

    def _redistribute(
        self,
        per_amp: list[list[tuple]],
        pos: int,
        schema: Schema,
        exchange: Exchange,
        op_id: str = "",
    ) -> Generator[Any, Any, list[list[tuple]]]:
        n_amps = len(self.amps)
        if exchange.kind is ExchangeKind.LOCAL:
            self.stats["redistributions_skipped"] += 1
            return per_amp
        route = self._bucket_route(exchange, n_amps)
        buckets: list[list[tuple]] = [[] for _ in range(n_amps)]
        for source in per_amp:
            for record in source:
                dest = route(record[pos])
                if type(dest) is int:
                    buckets[dest].append(record)
                else:
                    # Fragment-replicate broadcast of a hot key: one
                    # spool copy per AMP.
                    for amp_no in dest:
                        buckets[amp_no].append(record)
        per_page = max(1, records_per_page(self.config.page_size,
                                           schema.tuple_bytes))
        procs = []
        for i, amp in enumerate(self.amps):
            proc = self.sim.spawn(
                self._amp_redistribute(
                    amp, len(per_amp[i]), len(buckets[i]),
                    schema.tuple_bytes, per_page, i,
                ),
                name=f"redist.{i}",
            )
            if op_id:
                self._register(proc, op_id, "redistribute", node=amp.name)
            procs.append(proc)
        yield WaitAll(procs)
        self.stats["tuples_redistributed"] += sum(len(b) for b in buckets)
        return buckets

    def _bucket_route(self, exchange: Exchange, n_amps: int) -> Any:
        """Value → AMP number (or a tuple of AMP numbers for a
        hot-broadcast), mirroring the Gamma driver's ``lower_exchange``
        so both machines split identically under each strategy."""
        kind = exchange.kind
        if kind is ExchangeKind.RANGE:
            from bisect import bisect_right

            boundaries = list(exchange.boundaries or ())
            return lambda value: min(
                bisect_right(boundaries, value), n_amps - 1
            )
        if kind is ExchangeKind.VHASH:
            vmap = tuple(exchange.virtual_map or ())
            if not vmap:
                raise PlanError("vhash exchange needs a virtual_map")
            v = len(vmap)
            return lambda value: vmap[gamma_hash(value, v)] % n_amps
        if kind is ExchangeKind.HOT_BROADCAST:
            hot = exchange.hot_keys or frozenset()
            everywhere = tuple(range(n_amps))

            def broadcast_route(value: Any) -> Any:
                if value in hot:
                    return everywhere
                return gamma_hash(value, n_amps)

            return broadcast_route
        if kind is ExchangeKind.HOT_SPRAY:
            hot = exchange.hot_keys or frozenset()
            state = {"next": 0}

            def spray_route(value: Any) -> int:
                if value in hot:
                    amp_no = state["next"]
                    state["next"] = (amp_no + 1) % n_amps
                    return amp_no
                return gamma_hash(value, n_amps)

            return spray_route
        if kind is ExchangeKind.HASH:
            return lambda value: gamma_hash(value, n_amps)
        raise PlanError(
            f"Teradata model cannot redistribute a {kind.value} exchange"
        )

    def _amp_redistribute(
        self, amp: Amp, n_sent: int, n_received: int,
        tuple_bytes: int, per_page: int, i: int,
    ) -> Generator[Any, Any, None]:
        # Sending side: hash and inject into the Y-net page by page.
        yield from amp.work(self.costs.redistribute_tuple * n_sent)
        sent_pages = (n_sent + per_page - 1) // per_page
        for _ in range(sent_pages):
            yield Use(
                self.ynet,
                PACKAGE_BYTES / self.config.network.ring_bandwidth,
            )
        # Receiving side: append to a local spool file.
        yield from amp.work(self.costs.receive_tuple * n_received)
        spool_pages = (n_received + per_page - 1) // per_page
        spool = f"spool.{i}.{self.tag}{self._tmp}"
        for page_no in range(spool_pages):
            yield from amp.write_page(spool, page_no)
        self.stats["spool_pages"] += spool_pages

    def _amp_sort_merge(
        self,
        amp: Amp,
        left: list[tuple],
        right: list[tuple],
        left_pos: int,
        right_pos: int,
        left_schema: Schema,
        right_schema: Schema,
        out: list[list[tuple]],
        i: int,
    ) -> Generator[Any, Any, None]:
        sorted_left, lstats = external_sort(
            left, key=lambda r: r[left_pos],
            record_bytes=left_schema.tuple_bytes,
            page_size=self.config.page_size,
            memory_bytes=self.config.sort_memory_per_amp,
        )
        sorted_right, rstats = external_sort(
            right, key=lambda r: r[right_pos],
            record_bytes=right_schema.tuple_bytes,
            page_size=self.config.page_size,
            memory_bytes=self.config.sort_memory_per_amp,
        )
        sort_pass_tuples = (
            len(left) * (1 + lstats.merge_passes)
            + len(right) * (1 + rstats.merge_passes)
        )
        yield from amp.work(self.costs.sort_tuple_pass * sort_pass_tuples)
        io_pages = lstats.total_page_ios + rstats.total_page_ios
        for spool_no, stats in (("l", lstats), ("r", rstats)):
            file_id = f"sort.{i}.{spool_no}.{self.tag}{self._tmp}"
            for page_no in range(stats.pages_written):
                yield from amp.write_page(file_id, page_no)
            for page_no in range(stats.pages_read):
                yield from amp.read_page(file_id, page_no % max(1, stats.n_pages or 1))
        self.stats["sort_page_ios"] += io_pages

        matches = _merge_join(sorted_left, sorted_right, left_pos, right_pos)
        yield from amp.work(
            self.costs.merge_tuple * (len(left) + len(right))
            + self.costs.join_result_tuple * len(matches)
        )
        out[i] = matches

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    def _aggregate_phase(
        self, agg: AggregateOp
    ) -> Generator[Any, Any, tuple[list[list[tuple]], Schema]]:
        if agg.stage == "grouped":
            result = yield from self._grouped_aggregate(agg)
            return result
        if agg.stage == "combine":
            result = yield from self._scalar_aggregate(agg)
            return result
        raise PlanError(f"Teradata model cannot execute stage {agg.stage!r}")

    def _grouped_aggregate(
        self, agg: AggregateOp
    ) -> Generator[Any, Any, tuple[list[list[tuple]], Schema]]:
        """Redistribute on the grouping attribute, then fold per AMP."""
        per_amp, child_schema = yield from self._execute(agg.source)
        group_pos = child_schema.position(agg.group_by)
        value_pos = (
            child_schema.position(agg.attr) if agg.attr is not None else None
        )
        spools = yield from self._redistribute(
            per_amp, group_pos, child_schema,
            exchange=agg.exchange,
            op_id=agg.op_id,
        )
        out: list[list[tuple]] = [[] for _ in self.amps]
        procs = []
        for i, amp in enumerate(self.amps):
            procs.append(
                self._register(
                    self.sim.spawn(
                        self._amp_grouped_fold(
                            amp, spools[i], group_pos, value_pos, agg.op,
                            out, i,
                        ),
                        name=f"agg.{i}",
                    ),
                    agg.op_id, "fold", node=amp.name,
                )
            )
        yield WaitAll(procs)
        self._count_tuples(
            agg.op_id,
            tuples_in=sum(len(s) for s in spools),
            tuples_out=sum(len(bucket) for bucket in out),
        )
        return out, agg.schema

    def _amp_grouped_fold(
        self, amp: Amp, rows: list[tuple], group_pos: int,
        value_pos: Optional[int], op: str, out: list[list[tuple]], i: int,
    ) -> Generator[Any, Any, None]:
        yield from amp.work(self.costs.aggregate_tuple * len(rows))
        groups: dict[Any, _Accumulator] = {}
        for record in rows:
            acc = groups.setdefault(record[group_pos], _Accumulator())
            acc.fold(record[value_pos] if value_pos is not None else None)
        out[i] = [(group, acc.result(op)) for group, acc in groups.items()]
        self.stats["tuples_aggregated"] += len(rows)

    def _scalar_aggregate(
        self, agg: AggregateOp
    ) -> Generator[Any, Any, tuple[list[list[tuple]], Schema]]:
        """Fold a partial accumulator on every AMP, combine on AMP 0."""
        partial = agg.source
        assert isinstance(partial, AggregateOp)
        per_amp, child_schema = yield from self._execute(partial.source)
        value_pos = (
            child_schema.position(agg.attr) if agg.attr is not None else None
        )
        partials: list[Optional[tuple]] = [None] * len(self.amps)
        procs = []
        for i, amp in enumerate(self.amps):
            procs.append(
                self._register(
                    self.sim.spawn(
                        self._amp_partial_fold(
                            amp, per_amp[i], value_pos, partials, i
                        ),
                        name=f"agg.{i}",
                    ),
                    partial.op_id, "fold", node=amp.name,
                )
            )
        yield WaitAll(procs)
        out: list[list[tuple]] = [[] for _ in self.amps]
        proc = self._register(
            self.sim.spawn(
                self._amp_combine(self.amps[0], partials, agg.op, out),
                name="agg.combine",
            ),
            agg.op_id, "combine", node=self.amps[0].name,
        )
        yield WaitAll([proc])
        self._count_tuples(
            agg.op_id,
            tuples_in=sum(len(bucket) for bucket in per_amp),
            tuples_out=1,
        )
        return out, agg.schema

    def _amp_partial_fold(
        self, amp: Amp, rows: list[tuple], value_pos: Optional[int],
        partials: list[Optional[tuple]], i: int,
    ) -> Generator[Any, Any, None]:
        yield from amp.work(self.costs.aggregate_tuple * len(rows))
        acc = _Accumulator()
        for record in rows:
            acc.fold(record[value_pos] if value_pos is not None else None)
        partials[i] = acc.as_tuple()
        self.stats["tuples_aggregated"] += len(rows)
        # The four-field accumulator ships to the combiner in one package.
        yield Use(
            self.ynet, PACKAGE_BYTES / self.config.network.ring_bandwidth
        )

    def _amp_combine(
        self, amp: Amp, partials: list[Optional[tuple]], op: str,
        out: list[list[tuple]],
    ) -> Generator[Any, Any, None]:
        yield from amp.work(self.costs.aggregate_tuple * len(partials))
        total = _Accumulator()
        for values in partials:
            if values is not None:
                total.merge(_Accumulator.from_tuple(values))
        out[0] = [(total.result(op),)]

    # ------------------------------------------------------------------
    # storing results
    # ------------------------------------------------------------------
    def _store_phase(
        self, per_amp: list[list[tuple]], schema: Schema
    ) -> Generator[Any, Any, None]:
        """Redistribute result tuples on the result key and INSERT them.

        "the Teradata insert code is currently optimized for single tuple
        and not bulk updates, at least 3 I/Os are incurred for each tuple
        inserted."
        """
        n_amps = len(self.amps)
        buckets: list[list[tuple]] = [[] for _ in range(n_amps)]
        for source in per_amp:
            for record in source:
                buckets[gamma_hash(record[0], n_amps)].append(record)
        per_page = max(
            1, records_per_page(self.config.page_size, schema.tuple_bytes)
        )
        procs = []
        for i, amp in enumerate(self.amps):
            procs.append(
                self._register(
                    self.sim.spawn(
                        self._amp_store(amp, per_amp[i], buckets[i],
                                        schema, per_page, i),
                        name=f"store.{i}",
                    ),
                    self.ir.sink.op_id, "store", node=amp.name,
                )
            )
        yield WaitAll(procs)
        self._count_tuples(
            self.ir.sink.op_id,
            tuples_in=sum(len(bucket) for bucket in buckets),
        )
        fragments = [
            AmpFragment(
                f"{self.into}.a{i}", schema, schema.names()[0],
                self.config.page_size, buckets[i],
            )
            for i in range(n_amps)
        ]
        from .machine import TeradataRelation

        self.result_relation = TeradataRelation(
            self.into, schema, schema.names()[0], fragments
        )

    def _amp_store(
        self, amp: Amp, outgoing: list[tuple], incoming: list[tuple],
        schema: Schema, per_page: int, i: int,
    ) -> Generator[Any, Any, None]:
        yield from amp.work(self.costs.redistribute_tuple * len(outgoing))
        pages = (len(outgoing) + per_page - 1) // per_page
        for _ in range(pages):
            yield Use(
                self.ynet,
                PACKAGE_BYTES / self.config.network.ring_bandwidth,
            )
        # The logged single-tuple INSERT path.
        yield from amp.work(self.costs.insert_tuple_cpu * len(incoming))
        file_id = f"{self.into}.a{i}"
        io_count = int(len(incoming) * self.config.insert_ios_per_tuple)
        for k in range(io_count):
            yield from amp.write_page(file_id, k, sequential=False)
        self.stats["insert_ios"] += io_count


def _merge_join(
    left: list[tuple], right: list[tuple], lpos: int, rpos: int
) -> list[tuple]:
    """Classic sort-merge equi-join with duplicate-run handling."""
    out: list[tuple] = []
    li = ri = 0
    nl, nr = len(left), len(right)
    while li < nl and ri < nr:
        lv = left[li][lpos]
        rv = right[ri][rpos]
        if lv < rv:
            li += 1
        elif lv > rv:
            ri += 1
        else:
            lrun_end = li
            while lrun_end < nl and left[lrun_end][lpos] == lv:
                lrun_end += 1
            rrun_end = ri
            while rrun_end < nr and right[rrun_end][rpos] == rv:
                rrun_end += 1
            for a in range(li, lrun_end):
                for b in range(ri, rrun_end):
                    out.append(left[a] + right[b])
            li, ri = lrun_end, rrun_end
    return out


class TeradataUpdateRun:
    """One single-tuple update on the DBC/1012 (full logging).

    Consumes a compiled :class:`~repro.engine.ir.UpdateIR`: the target
    AMPs, the append's home AMP and whether a modify relocates were all
    decided by the planner; the executor charges the runtime costs.
    """

    def __init__(
        self, machine: "Any", sim: Simulation, amps: list[Amp],
        update: UpdateIR,
    ) -> None:
        self.machine = machine
        self.costs = machine.costs
        self.config = machine.config
        self.sim = sim
        self.amps = amps
        self.update = update
        self.request = update.request
        self.stats: Counter[str] = Counter()
        self.affected = 0

    def coordinator(self) -> Generator[Any, Any, None]:
        yield Delay(self.costs.update_host_s)
        request = self.request
        if isinstance(request, AppendTuple):
            yield from self._append(request)
        elif isinstance(request, DeleteTuple):
            yield from self._delete(request)
        elif isinstance(request, ModifyTuple):
            yield from self._modify(request)
        else:  # pragma: no cover - closed union
            raise PlanError(f"unknown update {request!r}")

    def _locate(
        self, relation: Any, where: ExactMatch
    ) -> tuple[int, Optional[int]]:
        """(amp, ordinal) of the target tuple, or (amp, None).

        The candidate AMPs were decided at compile time: the key's home
        AMP for a hash-addressed match, every AMP otherwise.
        """
        pos = relation.schema.position(where.attr)
        for amp_no in self.update.sites:
            fragment = relation.fragments[amp_no]
            for ordinal, record in enumerate(fragment.records):
                if record is not None and record[pos] == where.value:
                    return amp_no, ordinal
        return 0, None

    def _update_io(self, amp: Amp, file_id: str) -> Generator[Any, Any, None]:
        for k in range(int(self.costs.update_ios)):
            yield from amp.write_page(file_id, k, sequential=False)

    def _append(self, request: AppendTuple) -> Generator[Any, Any, None]:
        relation = self.update.relation
        amp_no = self.update.append_site
        assert amp_no is not None
        amp = self.amps[amp_no]
        fragment = relation.fragments[amp_no]
        fragment.append(request.record)
        yield from amp.work(self.costs.update_tuple_cpu)
        yield from self._update_io(amp, fragment.name)
        if fragment.indexes:
            yield from amp.work(
                self.costs.index_maintenance_cpu * len(fragment.indexes)
            )
            yield from self._update_io(amp, fragment.name + ".idx")
        self.affected = 1

    def _delete(self, request: DeleteTuple) -> Generator[Any, Any, None]:
        relation = self.update.relation
        amp_no, ordinal = self._locate(relation, request.where)
        amp = self.amps[amp_no]
        fragment = relation.fragments[amp_no]
        use_index = (
            request.where.attr == relation.key_attr
            or request.where.attr in fragment.indexes
        )
        yield from amp.work(
            self.costs.exact_match_cpu if use_index
            else self.costs.scan_tuple * fragment.num_records
        )
        yield from amp.read_page(fragment.name, 0, sequential=False)
        if ordinal is None:
            return
        fragment.remove(ordinal)
        yield from amp.work(self.costs.update_tuple_cpu)
        yield from self._update_io(amp, fragment.name)
        if fragment.indexes:
            yield from amp.work(
                self.costs.index_maintenance_cpu * len(fragment.indexes)
            )
            yield from self._update_io(amp, fragment.name + ".idx")
        self.affected = 1

    def _modify(self, request: ModifyTuple) -> Generator[Any, Any, None]:
        relation = self.update.relation
        amp_no, ordinal = self._locate(relation, request.where)
        if ordinal is None:
            yield from self.amps[amp_no].work(self.costs.exact_match_cpu)
            return
        amp = self.amps[amp_no]
        fragment = relation.fragments[amp_no]
        yield from amp.work(self.costs.exact_match_cpu)
        yield from amp.read_page(fragment.name, 0, sequential=False)
        pos = relation.schema.position(request.attr)
        old = fragment.records[ordinal]
        new_record = old[:pos] + (request.value,) + old[pos + 1:]
        if self.update.relocate:
            # Relocation: delete here, re-hash, insert at the new AMP,
            # and fix every secondary index.
            fragment.remove(ordinal)
            yield from amp.work(self.costs.update_tuple_cpu)
            yield from self._update_io(amp, fragment.name)
            new_amp_no = relation.amp_of_key(
                request.value, len(self.amps)
            )
            new_amp = self.amps[new_amp_no]
            relation.fragments[new_amp_no].append(new_record)
            yield from new_amp.work(self.costs.update_tuple_cpu)
            yield from self._update_io(
                new_amp, relation.fragments[new_amp_no].name
            )
            n_indexes = len(fragment.indexes)
            if n_indexes:
                yield from new_amp.work(
                    self.costs.index_maintenance_cpu * n_indexes * 2
                )
                yield from self._update_io(new_amp, fragment.name + ".idx")
        else:
            index_touched = request.attr in fragment.indexes
            fragment.replace(ordinal, new_record)
            yield from amp.work(self.costs.update_tuple_cpu)
            yield from self._update_io(amp, fragment.name)
            if index_touched:
                yield from amp.work(self.costs.index_maintenance_cpu)
                yield from self._update_io(amp, fragment.name + ".idx")
        self.affected = 1
