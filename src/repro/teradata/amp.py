"""Access Module Processors and their hash-key-ordered storage.

Every relation fragment on an AMP is kept in *hash-key order*: tuples are
placed by the hash of the primary key, so an exact-match on the key is one
disk access, but a range predicate — on any attribute — sees the file in
effectively random key order and must scan all of it.  Secondary indexes
are dense and themselves hash-organised, so a range query must scan the
whole index too (the behaviour behind rows 3-4 of Table 1).
"""

from __future__ import annotations

from typing import Any, Generator, Iterator, Optional

from ..catalog import gamma_hash
from ..hardware import DiskDrive, TeradataConfig
from ..sim import Server, Simulation
from ..storage import BufferPool, HeapFile, Schema, records_per_page


def hash_key_order(records: list[tuple], key_pos: int) -> list[tuple]:
    """Sort records the way the DBC/1012 stores them: by key hash."""
    return sorted(
        records, key=lambda r: (gamma_hash(r[key_pos], 1 << 30), r[key_pos])
    )


class DenseHashIndex:
    """A dense secondary index whose rows are hashed, NOT key-sorted.

    "whenever a range query over an indexed attribute is performed, the
    entire index must be scanned."
    """

    ENTRY_BYTES = 16

    def __init__(self, name: str, attr: str, page_size: int) -> None:
        self.name = name
        self.attr = attr
        self.page_size = page_size
        self.entries: list[tuple[Any, int]] = []  # (value, tuple ordinal)

    @property
    def num_pages(self) -> int:
        per_page = records_per_page(self.page_size, self.ENTRY_BYTES)
        return (len(self.entries) + per_page - 1) // per_page

    def build(self, values: list[Any]) -> None:
        pairs = [(v, i) for i, v in enumerate(values)]
        self.entries = sorted(
            pairs, key=lambda e: gamma_hash(e[0], 1 << 30)
        )

    def matching(self, low: Any, high: Any) -> list[int]:
        """Ordinals of tuples with value in [low, high] — found only by
        scanning every entry."""
        return [i for v, i in self.entries if low <= v <= high]

    def exact(self, value: Any) -> list[int]:
        return [i for v, i in self.entries if v == value]


class AmpFragment:
    """One relation's data on one AMP."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        key_attr: str,
        page_size: int,
        records: list[tuple],
    ) -> None:
        self.name = name
        self.schema = schema
        self.key_attr = key_attr
        key_pos = schema.position(key_attr)
        ordered = hash_key_order(records, key_pos)
        self.heap = HeapFile(name, schema, page_size)
        self.heap.bulk_append(ordered)
        self.records = ordered
        self.indexes: dict[str, DenseHashIndex] = {}

    @property
    def num_pages(self) -> int:
        return self.heap.num_pages

    @property
    def num_records(self) -> int:
        return len(self.records)

    def add_index(self, attr: str) -> None:
        index = DenseHashIndex(
            f"{self.name}.idx.{attr}", attr, self.heap.page_size
        )
        pos = self.schema.position(attr)
        index.build([r[pos] for r in self.records])
        self.indexes[attr] = index

    def page_of_ordinal(self, ordinal: int) -> int:
        per_page = self.heap.records_per_full_page
        return ordinal // per_page

    def append(self, record: tuple) -> None:
        self.records.append(record)
        self.heap.append(record)
        pos_by_attr = {
            attr: self.schema.position(attr) for attr in self.indexes
        }
        for attr, index in self.indexes.items():
            index.entries.append(
                (record[pos_by_attr[attr]], len(self.records) - 1)
            )

    def remove(self, ordinal: int) -> tuple:
        record = self.records[ordinal]
        self.records[ordinal] = None  # type: ignore[call-overload]
        for index in self.indexes.values():
            index.entries = [
                (v, i) for v, i in index.entries if i != ordinal
            ]
        return record

    def replace(self, ordinal: int, record: tuple) -> None:
        old = self.records[ordinal]
        self.records[ordinal] = record
        for attr, index in self.indexes.items():
            pos = self.schema.position(attr)
            if old[pos] != record[pos]:
                index.entries = [
                    (v, i) for v, i in index.entries if i != ordinal
                ]
                index.entries.append((record[pos], ordinal))

    def live_records(self) -> Iterator[tuple]:
        return (r for r in self.records if r is not None)


class Amp:
    """One AMP: a CPU, two disk drives, a buffer pool."""

    def __init__(
        self, sim: Simulation, index: int, config: TeradataConfig
    ) -> None:
        self.sim = sim
        self.index = index
        self.name = f"amp{index}"
        self.config = config
        self.cpu = Server(f"{self.name}.cpu")
        self.drives = [
            DiskDrive(f"{self.name}.d{d}", config.disk)
            for d in range(config.disks_per_amp)
        ]
        self._next_drive = 0
        self.buffer = BufferPool(f"{self.name}.buf", 128)

    def work(self, instructions: float) -> Generator[Any, Any, None]:
        if instructions <= 0:
            return
        from ..sim import Use

        yield Use(self.cpu, self.config.cpu.time_for(instructions))

    def _drive_for(self, file_id: str) -> DiskDrive:
        # Files are spread over the AMP's two DSUs by name hash.
        return self.drives[gamma_hash(file_id, len(self.drives))]

    def read_page(
        self, file_id: str, page_no: int, sequential: Optional[bool] = None
    ) -> Generator[Any, Any, None]:
        if self.buffer.access(file_id, page_no):
            return
        yield from self._drive_for(file_id).read(
            file_id, page_no, self.config.page_size, sequential
        )

    def write_page(
        self, file_id: str, page_no: int, sequential: Optional[bool] = None
    ) -> Generator[Any, Any, None]:
        yield from self._drive_for(file_id).write(
            file_id, page_no, self.config.page_size, sequential
        )
        self.buffer.access(file_id, page_no)
