"""The Teradata DBC/1012 query planner: release 2.3 conventions over the
shared physical IR.

The same :class:`~repro.engine.ir.PlanCompiler` walk that produces Gamma
plans produces Teradata plans; this subclass supplies what the DBC/1012
software actually did:

* **hash-addressed exact match** — an equality predicate on the primary
  (partitioning) key goes to exactly one AMP;
* **dense, hash-ordered secondary indexes** — an index range selection
  must scan the *whole* index (the rows are in hash order, not key
  order), so the optimizer compares that full-scan-plus-random-fetches
  cost against a plain file scan (the Table 1 row-3 behaviour);
* **sort-merge joins over spool files** — both inputs are redistributed
  through the Y-net by hashing the join attribute, except that a base
  relation joined on its primary key is already partitioned correctly
  and ships nothing (Table 2 rows 4-6's 25-50 % gain);
* **no selection propagation** — the rewrite hook stays the identity,
  which is why Teradata runs joinAselB *slower* than joinABprime while
  Gamma runs it faster.
"""

from __future__ import annotations

from typing import Any, Optional

from ..engine.ir import (
    Exchange,
    ExchangeKind,
    IRNode,
    Placement,
    PlanCompiler,
    ScanOp,
    SortMergeJoinOp,
)
from ..engine.plan import (
    AccessPath,
    AppendTuple,
    ExactMatch,
    JoinNode,
    ModifyTuple,
    ProjectNode,
    RangePredicate,
    SortNode,
)
from ..engine.skew import (
    SKEW_SAMPLE,
    SKEW_STRATEGIES,
    histogram_boundaries,
    hot_keys,
    virtual_map,
)
from ..errors import PlanError
from .costs import TeradataCosts


class TeradataPlanner(PlanCompiler):
    """Compiles logical plans into DBC/1012-convention physical IR.

    ``skew_strategy`` selects the spool redistribution for joins where
    *both* sides must cross the Y-net: ``"hash"`` (the default
    hash-the-join-attribute), ``"range"``, ``"vhash"`` or
    ``"hot-broadcast"`` — the same statistics as the Gamma planner (see
    :mod:`repro.engine.skew`).  A side consumed in place (``LOCAL``, the
    primary-key shortcut) pins the other side to plain hashing: the
    stored fragments are already hash-partitioned, so any other split of
    the shipped side would misalign the merge.
    """

    def __init__(
        self,
        config: Any,
        catalog: Any,
        costs: TeradataCosts,
        skew_strategy: str = "hash",
    ) -> None:
        super().__init__(config, catalog)
        self.costs = costs
        if skew_strategy not in SKEW_STRATEGIES:
            raise PlanError(
                f"unknown skew_strategy {skew_strategy!r};"
                f" expected one of {SKEW_STRATEGIES}"
            )
        self.skew_strategy = skew_strategy

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def choose_path(self, relation: Any, predicate: Any) -> AccessPath:
        if (
            isinstance(predicate, ExactMatch)
            and predicate.attr == relation.key_attr
        ):
            # Hash-addressed single-tuple retrieval: one AMP, one access.
            return AccessPath.CLUSTERED_EXACT
        attr = getattr(predicate, "attr", None)
        if attr in relation.indexed_attrs():
            if isinstance(predicate, ExactMatch):
                return AccessPath.NONCLUSTERED_EXACT
            if isinstance(predicate, RangePredicate) and self._index_wins(
                relation, predicate
            ):
                return AccessPath.NONCLUSTERED_INDEX
        return AccessPath.FILE_SCAN

    def _index_wins(self, relation: Any, predicate: RangePredicate) -> bool:
        """Cost comparison between a full dense-index scan plus random
        fetches and a plain file scan.  Because the index rows are hashed
        (never key-sorted), the whole index is always read."""
        cpu = self.config.cpu
        disk = self.config.disk
        n = relation.num_records
        per_amp = n / self.config.n_amps
        frag = relation.fragments[0]
        index = frag.indexes[predicate.attr]
        sel = predicate.selectivity(n)
        index_cost = (
            index.num_pages * disk.sequential_access_time(self.config.page_size)
            + per_amp * cpu.time_for(self.costs.index_entry)
            + sel * per_amp * disk.random_access_time(self.config.page_size)
        )
        scan_cost = (
            frag.num_pages * disk.sequential_access_time(self.config.page_size)
            + per_amp * cpu.time_for(self.costs.scan_tuple)
        )
        return index_cost < scan_cost

    def choose_sites(
        self, relation: Any, predicate: Any, path: AccessPath
    ) -> list[int]:
        if path is AccessPath.CLUSTERED_EXACT:
            assert isinstance(predicate, ExactMatch)
            return [relation.amp_of_key(predicate.value, self.config.n_amps)]
        return list(range(self.config.n_amps))

    def scan_placement(self, sites: list[int]) -> Placement:
        return Placement("amps", sites=tuple(sites))

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------
    def lower_join(
        self, node: JoinNode, build: IRNode, probe: IRNode
    ) -> IRNode:
        """A sort-merge join over two spool-file streams, each either
        redistributed by hashing the join attribute or (for a base
        relation joined on its primary key) consumed in place."""
        left_exchange = self._join_exchange(build, node.build_attr)
        right_exchange = self._join_exchange(probe, node.probe_attr)
        if (
            self.skew_strategy != "hash"
            and left_exchange.kind is ExchangeKind.HASH
            and right_exchange.kind is ExchangeKind.HASH
        ):
            exchanges = self._skew_exchanges(node, probe)
            if exchanges is not None:
                left_exchange, right_exchange = exchanges
        return SortMergeJoinOp(
            left=build,
            right=probe,
            left_exchange=left_exchange,
            right_exchange=right_exchange,
            left_attr=node.build_attr,
            right_attr=node.probe_attr,
            mode=node.mode,
            schema=build.schema.concat(probe.schema),
            op_id=self.next_id("smj"),
            placement=Placement("amps"),
        )

    def _join_exchange(self, side: IRNode, attr: str) -> Exchange:
        if (
            isinstance(side, ScanOp)
            and attr == side.relation.key_attr
        ):
            return Exchange(ExchangeKind.LOCAL, attr=attr)
        return Exchange(ExchangeKind.HASH, attr=attr)

    def _skew_exchanges(
        self, node: JoinNode, probe: IRNode
    ) -> Optional[tuple[Exchange, Exchange]]:
        """(left, right) exchanges for the selected strategy, or None to
        keep plain hashing (no sampleable probe relation, one AMP, or no
        hot key detected)."""
        import itertools

        n_amps = self.config.n_amps
        if n_amps <= 1:
            return None
        relation = self._probe_relation(node.probe_attr, probe)
        if relation is None:
            return None
        pos = relation.schema.position(node.probe_attr)
        sample = [
            record[pos]
            for record in itertools.islice(relation.records(), SKEW_SAMPLE)
        ]
        if not sample:
            return None
        if self.skew_strategy == "range":
            boundaries = histogram_boundaries(sample, n_amps)
            if boundaries is None:
                return None
            return (
                Exchange(ExchangeKind.RANGE, attr=node.build_attr,
                         boundaries=boundaries),
                Exchange(ExchangeKind.RANGE, attr=node.probe_attr,
                         boundaries=boundaries),
            )
        if self.skew_strategy == "vhash":
            vmap = virtual_map(sample, n_amps)
            return (
                Exchange(ExchangeKind.VHASH, attr=node.build_attr,
                         virtual_map=vmap),
                Exchange(ExchangeKind.VHASH, attr=node.probe_attr,
                         virtual_map=vmap),
            )
        hot = hot_keys(sample, n_amps)
        if not hot:
            return None
        return (
            Exchange(ExchangeKind.HOT_BROADCAST, attr=node.build_attr,
                     hot_keys=hot),
            Exchange(ExchangeKind.HOT_SPRAY, attr=node.probe_attr,
                     hot_keys=hot),
        )

    def _probe_relation(self, attr: str, node: IRNode) -> Optional[Any]:
        """The base relation the probe-attribute sample is drawn from."""
        if isinstance(node, ScanOp):
            return node.relation if attr in node.relation.schema else None
        if isinstance(node, SortMergeJoinOp):
            return (
                self._probe_relation(attr, node.left)
                or self._probe_relation(attr, node.right)
            )
        return None

    # ------------------------------------------------------------------
    # aggregates / unsupported shapes
    # ------------------------------------------------------------------
    def aggregate_placement(self) -> Placement:
        return Placement("amps")

    def lower_aggregate(self, node: Any, child: IRNode) -> IRNode:
        agg = super().lower_aggregate(node, child)
        if getattr(agg, "stage", None) == "combine":
            # Scalar partials fold in place on each AMP (no round-robin
            # spray to diskless processors — there are none); only the
            # four-field accumulators cross the Y-net to the combiner.
            agg.source.exchange = Exchange(ExchangeKind.LOCAL)
        return agg

    def lower_project(
        self, node: ProjectNode, child: IRNode, positions: list[int]
    ) -> IRNode:
        raise PlanError("Teradata model cannot execute projections")

    def lower_sort(
        self, node: SortNode, child: IRNode, key_pos: int
    ) -> IRNode:
        raise PlanError("Teradata model cannot execute sorts")

    def sort_boundaries(self, attr: str, child: IRNode) -> Optional[list]:
        return None  # pragma: no cover - lower_sort rejects first

    def lower_sink(self, root: IRNode, into: Optional[str]) -> IRNode:
        sink = super().lower_sink(root, into)
        if into is not None:
            # Result tuples are hash-addressed on the result table's
            # first attribute (its primary key) — not round-robin.
            sink.exchange = Exchange(
                ExchangeKind.HASH, attr=root.schema.names()[0]
            )
        return sink

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def append_site(self, relation: Any, request: AppendTuple) -> int:
        key_pos = relation.schema.position(relation.key_attr)
        return relation.amp_of_key(
            request.record[key_pos], self.config.n_amps
        )

    def update_sites(self, relation: Any, where: ExactMatch) -> list[int]:
        if where.attr == relation.key_attr:
            return [relation.amp_of_key(where.value, self.config.n_amps)]
        return list(range(self.config.n_amps))

    def modify_relocates(self, relation: Any, request: ModifyTuple) -> bool:
        return request.attr == relation.key_attr


__all__ = ["TeradataPlanner"]
