"""Horizontal partitioning (declustering) strategies.

Gamma supports four ways of distributing the tuples of a relation across
all disk drives (Section 2 of the paper): round-robin, hashed, range
partitioned with user-specified key ranges, and range partitioned with
uniform distribution.  The same hash function is used at load time and at
join time — the property behind the Local-join short-circuit advantage in
Figures 9/10.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left
from typing import Any, Optional, Sequence
from zlib import crc32

from ..errors import CatalogError
from ..storage import Schema


def stable_hash(value: Any) -> int:
    """A process-stable replacement for builtin ``hash``.

    Python salts ``str``/``bytes`` hashing per process (``PYTHONHASHSEED``),
    so any partitioning decision derived from ``hash("...")`` differs
    between the parent and the ``run_sweep`` worker processes — and between
    runs.  Integers (and tuples of integers) hash identically everywhere,
    so they keep the builtin path bit-for-bit; salted types are routed
    through crc32 of their UTF-8 bytes instead.
    """
    if type(value) is int:
        # The dominant case (Wisconsin attributes): identical to the
        # fall-through ``hash(value)`` below, minus the isinstance ladder.
        return hash(value)
    if isinstance(value, str):
        return crc32(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray)):
        return crc32(bytes(value))
    if isinstance(value, tuple):
        return hash(tuple(stable_hash(v) for v in value))
    return hash(value)


def gamma_hash(value: Any, n_buckets: int) -> int:
    """The randomising function applied to partitioning/join attributes.

    A deterministic multiplicative hash (Knuth) — stable across runs and
    across processes (see :func:`stable_hash`), well mixed for the
    Wisconsin integer attributes, and shared by the load path, the split
    tables and the join operators.
    """
    if n_buckets <= 0:
        raise CatalogError("hash needs at least one bucket")
    h = (
        (hash(value) if type(value) is int else stable_hash(value))
        * 2654435761
    ) & 0xFFFFFFFF
    # Fold the high bits down so that regular key patterns (multiples of
    # 100, say) cannot alias with small bucket counts.
    h ^= h >> 17
    h = (h * 0x9E3779B1) & 0xFFFFFFFF
    h ^= h >> 13
    return h % n_buckets


class PartitioningStrategy(ABC):
    """Maps each tuple of a relation to a home site."""

    #: Strategy name used in catalogs and reports.
    kind: str = "abstract"

    @abstractmethod
    def prepare(self, records: Sequence[tuple], schema: Schema, n_sites: int) -> None:
        """Inspect the load set (needed by uniform-range) before assigning."""

    @abstractmethod
    def site_of(self, record: tuple, n_sites: int) -> int:
        """Home site of ``record``."""

    def site_for_key(self, value: Any, n_sites: int) -> Optional[int]:
        """Site holding key ``value``, when derivable (hash/range only).

        Returning a site lets the scheduler direct an exact-match selection
        to a single processor, the optimisation behind Gamma's 0.15-0.20 s
        single-tuple selects in Table 1.
        """
        return None

    def sites_for_range(
        self, low: Any, high: Any, n_sites: int
    ) -> Optional[list[int]]:
        """Sites that may hold keys in [low, high], when derivable.

        Only range declustering can prune sites for a range predicate —
        one of its advantages over hashing that [RIES78] evaluates.
        """
        return None

    def partition(
        self, records: Sequence[tuple], schema: Schema, n_sites: int
    ) -> list[list[tuple]]:
        """Split ``records`` into one bucket per site."""
        if n_sites < 1:
            raise CatalogError("need at least one site")
        self.prepare(records, schema, n_sites)
        buckets: list[list[tuple]] = [[] for _ in range(n_sites)]
        for record in records:
            buckets[self.site_of(record, n_sites)].append(record)
        return buckets


class RoundRobin(PartitioningStrategy):
    """Tuples dealt to sites in rotation — the default for query results."""

    kind = "round-robin"

    def __init__(self) -> None:
        self._counter = 0

    def prepare(self, records: Sequence[tuple], schema: Schema, n_sites: int) -> None:
        self._counter = 0

    def site_of(self, record: tuple, n_sites: int) -> int:
        site = self._counter % n_sites
        self._counter += 1
        return site


class Hashed(PartitioningStrategy):
    """A randomising function applied to the key attribute picks the site."""

    kind = "hashed"

    def __init__(self, attr: str) -> None:
        self.attr = attr
        self._pos: Optional[int] = None

    def prepare(self, records: Sequence[tuple], schema: Schema, n_sites: int) -> None:
        self._pos = schema.position(self.attr)

    def bind(self, schema: Schema) -> "Hashed":
        """Resolve the attribute position without a load set."""
        self._pos = schema.position(self.attr)
        return self

    def site_of(self, record: tuple, n_sites: int) -> int:
        if self._pos is None:
            raise CatalogError("Hashed strategy not prepared/bound")
        return gamma_hash(record[self._pos], n_sites)

    def site_for_key(self, value: Any, n_sites: int) -> Optional[int]:
        return gamma_hash(value, n_sites)

    def partition(
        self, records: Sequence[tuple], schema: Schema, n_sites: int
    ) -> list[list[tuple]]:
        """Batched load-time declustering: one vectorized hash pass.

        Same bucket contents and order as the per-record base-class loop
        (``hash_route_batch`` matches ``gamma_hash`` bit for bit).
        """
        if n_sites < 1:
            raise CatalogError("need at least one site")
        self.prepare(records, schema, n_sites)
        # Imported lazily: engine.columnar sits above catalog in the
        # layering, and only this method crosses that boundary.
        from ..engine.columnar import partition_batch

        return partition_batch(records, self._pos, n_sites)


class RangePartitioned(PartitioningStrategy):
    """User-specified key ranges: site ``i`` holds keys <= boundaries[i]
    (the last site takes everything above the final boundary)."""

    kind = "range"

    def __init__(self, attr: str, boundaries: Sequence[Any]) -> None:
        if not boundaries:
            raise CatalogError("range partitioning needs boundaries")
        if list(boundaries) != sorted(boundaries):
            raise CatalogError("range boundaries must be sorted")
        self.attr = attr
        self.boundaries = list(boundaries)
        self._pos: Optional[int] = None

    def prepare(self, records: Sequence[tuple], schema: Schema, n_sites: int) -> None:
        if len(self.boundaries) != n_sites - 1:
            raise CatalogError(
                f"{n_sites} sites need {n_sites - 1} boundaries,"
                f" got {len(self.boundaries)}"
            )
        self._pos = schema.position(self.attr)

    def site_of(self, record: tuple, n_sites: int) -> int:
        if self._pos is None:
            raise CatalogError("RangePartitioned strategy not prepared")
        return bisect_left(self.boundaries, record[self._pos])

    def site_for_key(self, value: Any, n_sites: int) -> Optional[int]:
        return bisect_left(self.boundaries, value)

    def sites_for_range(
        self, low: Any, high: Any, n_sites: int
    ) -> Optional[list[int]]:
        first = bisect_left(self.boundaries, low)
        last = min(n_sites - 1, bisect_left(self.boundaries, high))
        return list(range(first, last + 1))


class UniformRange(PartitioningStrategy):
    """System-derived ranges giving each site an equal share of the load
    set (the paper's fourth strategy)."""

    kind = "uniform-range"

    def __init__(self, attr: str) -> None:
        self.attr = attr
        self._delegate: Optional[RangePartitioned] = None
        self._single_site = False

    def prepare(self, records: Sequence[tuple], schema: Schema, n_sites: int) -> None:
        pos = schema.position(self.attr)
        if n_sites == 1:
            self._delegate = None
            self._single_site = True
            return
        self._single_site = False
        keys = sorted(record[pos] for record in records)
        boundaries = []
        for i in range(1, n_sites):
            cut = (i * len(keys)) // n_sites
            boundaries.append(keys[cut - 1] if cut > 0 else keys[0])
        # Strictly increasing boundaries are not guaranteed with duplicate
        # keys; collapse is fine for bisect-based assignment.
        self._delegate = RangePartitioned(self.attr, boundaries)
        self._delegate.prepare(records, schema, n_sites)

    def site_of(self, record: tuple, n_sites: int) -> int:
        if self._single_site:
            return 0
        if self._delegate is None:
            raise CatalogError("UniformRange strategy not prepared")
        return self._delegate.site_of(record, n_sites)

    def site_for_key(self, value: Any, n_sites: int) -> Optional[int]:
        if self._single_site:
            return 0
        if self._delegate is None:
            return None
        return self._delegate.site_for_key(value, n_sites)

    def sites_for_range(
        self, low: Any, high: Any, n_sites: int
    ) -> Optional[list[int]]:
        if self._single_site:
            return [0]
        if self._delegate is None:
            return None
        return self._delegate.sites_for_range(low, high, n_sites)
