"""The database catalog: relation metadata keyed by name."""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from ..errors import CatalogError
from ..storage import Schema, StoredFile
from .partitioning import PartitioningStrategy
from .relation import Relation, collect_statistics


class Catalog:
    """Relation name → :class:`Relation` with create/drop semantics."""

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def lookup(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise CatalogError(
                f"unknown relation {name!r}; have {sorted(self._relations)}"
            ) from None

    def register(self, relation: Relation) -> Relation:
        if relation.name in self._relations:
            raise CatalogError(f"relation {relation.name!r} already exists")
        self._relations[relation.name] = relation
        return relation

    def drop(self, name: str) -> Relation:
        """Drop a relation — Gamma's cheap QUEL-style recovery for aborted
        ``retrieve into`` is exactly "delete all files associated with the
        result relation"."""
        relation = self.lookup(name)
        del self._relations[name]
        return relation

    def create(
        self,
        name: str,
        schema: Schema,
        partitioning: PartitioningStrategy,
        records: Sequence[tuple],
        n_sites: int,
        page_size: int,
        clustered_on: Optional[str] = None,
        secondary_on: Iterable[str] = (),
    ) -> Relation:
        """Partition ``records`` and build one stored fragment per site."""
        buckets = partitioning.partition(records, schema, n_sites)
        fragments = [
            StoredFile.create(
                f"{name}.f{site}", schema, page_size, bucket,
                clustered_on=clustered_on,
            )
            for site, bucket in enumerate(buckets)
        ]
        relation = Relation(
            name, schema, partitioning, fragments,
            statistics=collect_statistics(schema, records),
        )
        for attr in secondary_on:
            relation.add_secondary_index(attr)
        return self.register(relation)
