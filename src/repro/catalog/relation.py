"""Relations: a schema plus one stored fragment per disk site."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..errors import CatalogError
from ..storage import AttrType, Schema, StoredFile
from .partitioning import PartitioningStrategy


@dataclass(frozen=True)
class AttrStats:
    """Catalog statistics for one integer attribute (Selinger-style).

    Collected at load time; the optimizer uses them for selectivity
    estimation and for range-slice boundaries.
    """

    minimum: int
    maximum: int
    distinct_hint: int

    @property
    def width(self) -> int:
        return self.maximum - self.minimum + 1

    def range_selectivity(self, low, high) -> float:
        """Fraction of tuples expected in [low, high] (uniform model)."""
        if high < self.minimum or low > self.maximum:
            return 0.0
        lo = max(low, self.minimum)
        hi = min(high, self.maximum)
        return (hi - lo + 1) / self.width


def collect_statistics(
    schema: Schema, records: Sequence[tuple]
) -> dict[str, AttrStats]:
    """Min/max/distinct statistics for every integer attribute."""
    stats: dict[str, AttrStats] = {}
    if not records:
        return stats
    for position, attribute in enumerate(schema.attributes):
        if attribute.type is not AttrType.INT:
            continue
        values = [r[position] for r in records]
        distinct = len(set(values)) if len(values) <= 100_000 else len(
            set(values[:100_000])
        )
        stats[attribute.name] = AttrStats(
            minimum=min(values), maximum=max(values), distinct_hint=distinct
        )
    return stats


class Relation:
    """A horizontally partitioned relation.

    Attributes:
        name: Relation name (unique within a catalog).
        schema: Tuple layout.
        partitioning: How tuples were declustered at load time.
        fragments: One :class:`StoredFile` per disk site, indexed by site.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        partitioning: PartitioningStrategy,
        fragments: Sequence[StoredFile],
        statistics: Optional[dict[str, AttrStats]] = None,
    ) -> None:
        if not fragments:
            raise CatalogError(f"relation {name!r} needs >= 1 fragment")
        self.name = name
        self.schema = schema
        self.partitioning = partitioning
        self.fragments = list(fragments)
        self.statistics: dict[str, AttrStats] = statistics or {}

    def stats_for(self, attr: str) -> Optional[AttrStats]:
        """Catalog statistics for ``attr``, if collected at load time."""
        return self.statistics.get(attr)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"<Relation {self.name} n={self.num_records}"
            f" sites={self.n_sites} {self.partitioning.kind}>"
        )

    @property
    def n_sites(self) -> int:
        return len(self.fragments)

    @property
    def num_records(self) -> int:
        return sum(f.num_records for f in self.fragments)

    @property
    def num_pages(self) -> int:
        return sum(f.num_pages for f in self.fragments)

    @property
    def clustered_on(self) -> Optional[str]:
        return self.fragments[0].clustered_on

    def indexed_attrs(self) -> set[str]:
        attrs = set(self.fragments[0].secondary)
        if self.clustered_on is not None:
            attrs.add(self.clustered_on)
        return attrs

    def has_index_on(self, attr: str) -> bool:
        return self.fragments[0].has_index_on(attr)

    def add_secondary_index(self, attr: str) -> None:
        """Build a dense non-clustered index on every fragment."""
        for fragment in self.fragments:
            fragment.add_secondary_index(attr)

    def records(self) -> Iterator[tuple]:
        """All tuples across all fragments (functional plane)."""
        for fragment in self.fragments:
            yield from fragment.records()

    def fragment_sizes(self) -> list[int]:
        return [f.num_records for f in self.fragments]
