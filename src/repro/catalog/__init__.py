"""Catalog: relations, fragments and declustering strategies."""

from .catalog import Catalog
from .partitioning import (
    Hashed,
    PartitioningStrategy,
    RangePartitioned,
    RoundRobin,
    UniformRange,
    gamma_hash,
    stable_hash,
)
from .relation import AttrStats, Relation, collect_statistics

__all__ = [
    "AttrStats",
    "Catalog",
    "Hashed",
    "PartitioningStrategy",
    "RangePartitioned",
    "Relation",
    "collect_statistics",
    "RoundRobin",
    "UniformRange",
    "gamma_hash",
    "stable_hash",
]
