"""Abstract syntax for the QUEL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union


@dataclass(frozen=True)
class RangeDecl:
    """``range of a is tenktup``"""

    variable: str
    relation: str


@dataclass(frozen=True)
class AttrRef:
    """``a.unique1`` (attr ``all`` means the whole tuple)."""

    variable: str
    attr: str


@dataclass(frozen=True)
class AggTarget:
    """``min(a.unique2)`` or ``count(a.all by a.ten)``."""

    op: str
    ref: AttrRef
    by: Optional[AttrRef] = None


Target = Union[AttrRef, AggTarget]


@dataclass(frozen=True)
class Comparison:
    """``a.unique1 <= 99`` or the join term ``a.unique2 = b.unique2``."""

    left: AttrRef
    op: str
    right: Any  # int | str | AttrRef

    @property
    def is_join_term(self) -> bool:
        return isinstance(self.right, AttrRef)


@dataclass(frozen=True)
class Retrieve:
    """``retrieve [unique] [into name] (targets) [where ...]
    [sort by var.attr [descending]]``"""

    targets: tuple[Target, ...]
    unique: bool = False
    into: Optional[str] = None
    qualification: tuple[Comparison, ...] = field(default_factory=tuple)
    sort_by: Optional[AttrRef] = None
    sort_descending: bool = False


@dataclass(frozen=True)
class Append:
    """``append to rel (attr = value, ...)``"""

    relation: str
    assignments: tuple[tuple[str, Any], ...]


@dataclass(frozen=True)
class Delete:
    """``delete a where a.unique1 = 55``"""

    variable: str
    qualification: tuple[Comparison, ...]


@dataclass(frozen=True)
class Replace:
    """``replace a (odd100 = 7) where a.unique1 = 56``"""

    variable: str
    assignments: tuple[tuple[str, Any], ...]
    qualification: tuple[Comparison, ...]


Statement = Union[RangeDecl, Retrieve, Append, Delete, Replace]
