"""Recursive-descent parser for the QUEL subset.

Grammar (one statement per parse)::

    statement   := range_decl | retrieve | append | delete | replace
    range_decl  := RANGE OF name IS name
    retrieve    := RETRIEVE [UNIQUE] [INTO name]
                   "(" target ("," target)* ")" [WHERE qual]
                   [SORT BY attr_ref [DESCENDING]]
    target      := attr_ref | agg "(" attr_ref [BY attr_ref] ")"
    attr_ref    := name "." (name | ALL)
    append      := APPEND TO name "(" assign ("," assign)* ")"
    delete      := DELETE name [WHERE qual]
    replace     := REPLACE name "(" assign ("," assign)* ")" [WHERE qual]
    assign      := name "=" literal
    qual        := comparison (AND comparison)*
    comparison  := attr_ref op (literal | attr_ref)
    op          := "=" | "<" | "<=" | ">" | ">="
"""

from __future__ import annotations

from typing import Any, Optional

from .ast import (
    AggTarget,
    Append,
    AttrRef,
    Comparison,
    Delete,
    RangeDecl,
    Replace,
    Retrieve,
    Statement,
    Target,
)
from .lexer import QuelSyntaxError, Token, tokenize

AGG_OPS = {"count", "sum", "avg", "min", "max"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token helpers -----------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            want = value or kind
            raise QuelSyntaxError(
                f"expected {want!r} at position {token.position},"
                f" found {token.value!r}"
            )
        return self.advance()

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    # -- grammar -------------------------------------------------------
    def statement(self) -> Statement:
        token = self.peek()
        if token.kind != "keyword":
            raise QuelSyntaxError(
                f"statement must start with a keyword, found {token.value!r}"
            )
        handlers = {
            "range": self.range_decl,
            "retrieve": self.retrieve,
            "append": self.append,
            "delete": self.delete,
            "replace": self.replace,
        }
        handler = handlers.get(token.value)
        if handler is None:
            raise QuelSyntaxError(f"unknown statement {token.value!r}")
        node = handler()
        self.expect("end")
        return node

    def range_decl(self) -> RangeDecl:
        self.expect("keyword", "range")
        self.expect("keyword", "of")
        variable = self.expect("name").value
        self.expect("keyword", "is")
        relation = self.expect("name").value
        return RangeDecl(variable, relation)

    def retrieve(self) -> Retrieve:
        self.expect("keyword", "retrieve")
        unique = self.accept("keyword", "unique") is not None
        into = None
        if self.accept("keyword", "into"):
            into = self.expect("name").value
        self.expect("punct", "(")
        targets: list[Target] = [self.target()]
        while self.accept("punct", ","):
            targets.append(self.target())
        self.expect("punct", ")")
        qual = self.qualification()
        sort_by = None
        sort_descending = False
        if self.accept("keyword", "sort"):
            self.expect("keyword", "by")
            sort_by = self.attr_ref()
            sort_descending = self.accept("keyword", "descending") is not None
        return Retrieve(tuple(targets), unique, into, tuple(qual),
                        sort_by, sort_descending)

    def target(self) -> Target:
        token = self.peek()
        if token.kind == "keyword" and token.value in AGG_OPS:
            op = self.advance().value
            self.expect("punct", "(")
            ref = self.attr_ref()
            by = None
            if self.accept("keyword", "by"):
                by = self.attr_ref()
            self.expect("punct", ")")
            return AggTarget(op, ref, by)
        return self.attr_ref()

    def attr_ref(self) -> AttrRef:
        variable = self.expect("name").value
        self.expect("punct", ".")
        token = self.peek()
        if token.kind == "keyword" and token.value == "all":
            self.advance()
            return AttrRef(variable, "all")
        return AttrRef(variable, self.expect("name").value)

    def qualification(self) -> list[Comparison]:
        if not self.accept("keyword", "where"):
            return []
        comparisons = [self.comparison()]
        while self.accept("keyword", "and"):
            comparisons.append(self.comparison())
        return comparisons

    def comparison(self) -> Comparison:
        left = self.attr_ref()
        op = self.expect("op").value
        if op == "!=":
            raise QuelSyntaxError("inequality predicates are not supported")
        token = self.peek()
        right: Any
        if token.kind == "int":
            right = int(self.advance().value)
        elif token.kind == "string":
            right = self.advance().value
        elif token.kind == "name":
            right = self.attr_ref()
        else:
            raise QuelSyntaxError(
                f"expected a literal or attribute at {token.position}"
            )
        return Comparison(left, op, right)

    def append(self) -> Append:
        self.expect("keyword", "append")
        self.expect("keyword", "to")
        relation = self.expect("name").value
        assignments = self.assignments()
        return Append(relation, assignments)

    def delete(self) -> Delete:
        self.expect("keyword", "delete")
        variable = self.expect("name").value
        qual = self.qualification()
        return Delete(variable, tuple(qual))

    def replace(self) -> Replace:
        self.expect("keyword", "replace")
        variable = self.expect("name").value
        assignments = self.assignments()
        qual = self.qualification()
        return Replace(variable, assignments, tuple(qual))

    def assignments(self) -> tuple[tuple[str, Any], ...]:
        self.expect("punct", "(")
        pairs = [self.assignment()]
        while self.accept("punct", ","):
            pairs.append(self.assignment())
        self.expect("punct", ")")
        return tuple(pairs)

    def assignment(self) -> tuple[str, Any]:
        attr = self.expect("name").value
        self.expect("op", "=")
        token = self.peek()
        if token.kind == "int":
            return attr, int(self.advance().value)
        if token.kind == "string":
            return attr, self.advance().value
        raise QuelSyntaxError(
            f"expected a literal value at position {token.position}"
        )


def parse(text: str) -> Statement:
    """Parse one QUEL statement."""
    return _Parser(tokenize(text)).statement()
