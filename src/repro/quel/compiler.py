"""Compile QUEL statements into engine queries.

Mirrors the paper's host software pipeline: "Gamma uses traditional
relational techniques for query parsing, optimization and code
generation" — the parser produces the AST, this module performs the
semantic analysis against the catalog and emits
:class:`~repro.engine.plan.Query` / update-request objects, and the engine's
planner takes it from there.

Supported shape (the full benchmark workload): one or two range variables,
single-attribute restrictions per variable, one equi-join term, optional
projection (with ``retrieve unique`` duplicate elimination), scalar and
grouped aggregates, and the append/delete/replace single-tuple updates.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ..catalog import Catalog
from ..engine.plan import (
    AggregateNode,
    AppendTuple,
    DeleteTuple,
    ExactMatch,
    JoinNode,
    ModifyTuple,
    PlanNode,
    ProjectNode,
    Query,
    RangePredicate,
    ScanNode,
    SortNode,
    TruePredicate,
    UpdateRequest,
)
from ..errors import ReproError
from ..storage import AttrType, Schema
from .ast import (
    AggTarget,
    Append,
    AttrRef,
    Comparison,
    Delete,
    RangeDecl,
    Replace,
    Retrieve,
)

#: Sentinel upper/lower bounds for open-ended ranges on 4-byte integers.
INT_MIN = -(2**31)
INT_MAX = 2**31 - 1


class QuelCompileError(ReproError):
    """Raised when a parsed statement cannot be mapped onto the engine."""


Compiled = Union[Query, UpdateRequest]


class QuelCompiler:
    """Stateful compiler holding the session's range-variable bindings."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.ranges: dict[str, str] = {}

    # ------------------------------------------------------------------
    def declare(self, decl: RangeDecl) -> None:
        self.catalog.lookup(decl.relation)  # validate it exists
        self.ranges[decl.variable] = decl.relation

    def relation_of(self, variable: str) -> str:
        try:
            return self.ranges[variable]
        except KeyError:
            raise QuelCompileError(
                f"range variable {variable!r} is not declared"
                f" (use: range of {variable} is <relation>)"
            ) from None

    def schema_of(self, variable: str) -> Schema:
        return self.catalog.lookup(self.relation_of(variable)).schema

    # ------------------------------------------------------------------
    # retrieve
    # ------------------------------------------------------------------
    def compile_retrieve(self, stmt: Retrieve) -> Query:
        variables = self._variables_of(stmt)
        restrictions, join_terms = self._split_qualification(
            stmt.qualification
        )
        if len(join_terms) > 1:
            raise QuelCompileError("at most one join term is supported")
        if len(variables) == 1:
            (variable,) = variables
            root: PlanNode = ScanNode(
                self.relation_of(variable),
                self._predicate_for(variable, restrictions),
            )
            name_of = {variable: dict(
                (a, a) for a in self.schema_of(variable).names()
            )}
        elif len(variables) == 2:
            if not join_terms:
                raise QuelCompileError(
                    "two range variables need an equi-join term"
                )
            root, name_of = self._compile_join(
                join_terms[0], restrictions
            )
        else:
            raise QuelCompileError("at most two range variables are supported")

        root = self._apply_targets(root, stmt, name_of)
        if stmt.sort_by is not None:
            root = SortNode(
                root,
                self._resolve_sort_attr(stmt.sort_by, root, name_of),
                descending=stmt.sort_descending,
            )
        return Query(root, into=stmt.into)

    def _resolve_sort_attr(
        self,
        ref: AttrRef,
        root: PlanNode,
        name_of: dict[str, dict[str, str]],
    ) -> str:
        """Resolve a sort attribute against the root's output schema.

        Aggregate outputs expose synthetic names (the group attribute and
        the op name); everything else uses the variable mapping."""
        if isinstance(root, AggregateNode):
            if ref.attr in (root.group_by, root.op):
                return ref.attr
            raise QuelCompileError(
                f"cannot sort aggregate output by {ref.attr!r}"
            )
        return self._resolve(ref, name_of)

    def _variables_of(self, stmt: Retrieve) -> list[str]:
        seen: list[str] = []

        def note(variable: str) -> None:
            if variable not in seen:
                seen.append(variable)

        for target in stmt.targets:
            if isinstance(target, AggTarget):
                note(target.ref.variable)
                if target.by is not None:
                    note(target.by.variable)
            else:
                note(target.variable)
        for comparison in stmt.qualification:
            note(comparison.left.variable)
            if isinstance(comparison.right, AttrRef):
                note(comparison.right.variable)
        return seen

    def _split_qualification(
        self, qualification: tuple[Comparison, ...]
    ) -> tuple[dict[str, list[Comparison]], list[Comparison]]:
        restrictions: dict[str, list[Comparison]] = {}
        join_terms: list[Comparison] = []
        for comparison in qualification:
            if comparison.is_join_term:
                if comparison.op != "=":
                    raise QuelCompileError("join terms must use '='")
                join_terms.append(comparison)
            else:
                restrictions.setdefault(
                    comparison.left.variable, []
                ).append(comparison)
        return restrictions, join_terms

    def _predicate_for(
        self, variable: str, restrictions: dict[str, list[Comparison]]
    ):
        comparisons = restrictions.get(variable, [])
        if not comparisons:
            return TruePredicate()
        attrs = {c.left.attr for c in comparisons}
        if len(attrs) > 1:
            raise QuelCompileError(
                f"restrictions on {variable!r} must use a single attribute,"
                f" got {sorted(attrs)}"
            )
        (attr,) = attrs
        schema = self.schema_of(variable)
        schema.position(attr)  # validate
        low, high = INT_MIN, INT_MAX
        exact: Optional[Any] = None
        for comparison in comparisons:
            value = comparison.right
            if comparison.op == "=":
                exact = value
            elif comparison.op == "<=":
                high = min(high, value)
            elif comparison.op == "<":
                high = min(high, value - 1)
            elif comparison.op == ">=":
                low = max(low, value)
            elif comparison.op == ">":
                low = max(low, value + 1)
        if exact is not None:
            if not (low <= exact <= high):
                return RangePredicate(attr, 1, 0)  # contradiction: empty
            return ExactMatch(attr, exact)
        return RangePredicate(attr, low, high)

    def _compile_join(
        self,
        join: Comparison,
        restrictions: dict[str, list[Comparison]],
    ) -> tuple[JoinNode, dict[str, dict[str, str]]]:
        left_var = join.left.variable
        right_ref = join.right
        assert isinstance(right_ref, AttrRef)
        right_var = right_ref.variable
        # The restricted (smaller) side builds the hash tables; with both
        # or neither restricted, the left variable of the join term does.
        if right_var in restrictions and left_var not in restrictions:
            build_var, build_attr = right_var, right_ref.attr
            probe_var, probe_attr = left_var, join.left.attr
        else:
            build_var, build_attr = left_var, join.left.attr
            probe_var, probe_attr = right_var, right_ref.attr
        build_schema = self.schema_of(build_var)
        probe_schema = self.schema_of(probe_var)
        node = JoinNode(
            ScanNode(self.relation_of(build_var),
                     self._predicate_for(build_var, restrictions)),
            ScanNode(self.relation_of(probe_var),
                     self._predicate_for(probe_var, restrictions)),
            build_attr,
            probe_attr,
        )
        # Map var.attr -> name in the concatenated result schema (probe
        # attributes are suffixed on clashes).
        joined = build_schema.concat(probe_schema)
        name_of = {
            build_var: {
                a: a for a in build_schema.names()
            },
            probe_var: {
                a: joined.names()[len(build_schema) + i]
                for i, a in enumerate(probe_schema.names())
            },
        }
        return node, name_of

    def _apply_targets(
        self,
        root: PlanNode,
        stmt: Retrieve,
        name_of: dict[str, dict[str, str]],
    ) -> PlanNode:
        aggs = [t for t in stmt.targets if isinstance(t, AggTarget)]
        refs = [t for t in stmt.targets if isinstance(t, AttrRef)]
        if aggs:
            if len(aggs) > 1 or refs:
                raise QuelCompileError(
                    "an aggregate must be the only target"
                )
            (agg,) = aggs
            attr = None
            if agg.ref.attr != "all":
                attr = self._resolve(agg.ref, name_of)
            elif agg.op != "count":
                raise QuelCompileError(f"{agg.op}(x.all) is not meaningful")
            group_by = (
                self._resolve(agg.by, name_of) if agg.by is not None else None
            )
            return AggregateNode(root, agg.op, attr, group_by)
        # Plain target list: var.all for every variable means no projection.
        if all(r.attr == "all" for r in refs) and len(refs) == len(name_of):
            if stmt.unique:
                raise QuelCompileError(
                    "retrieve unique needs an explicit attribute list"
                )
            return root
        attrs: list[str] = []
        for ref in refs:
            if ref.attr == "all":
                attrs.extend(name_of[ref.variable].values())
            else:
                attrs.append(self._resolve(ref, name_of))
        return ProjectNode(root, attrs, unique=stmt.unique)

    def _resolve(
        self, ref: AttrRef, name_of: dict[str, dict[str, str]]
    ) -> str:
        try:
            mapping = name_of[ref.variable]
        except KeyError:
            raise QuelCompileError(
                f"range variable {ref.variable!r} is not declared"
            ) from None
        try:
            return mapping[ref.attr]
        except KeyError:
            raise QuelCompileError(
                f"unknown attribute {ref.variable}.{ref.attr}"
            ) from None

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def compile_append(self, stmt: Append) -> AppendTuple:
        schema = self.catalog.lookup(stmt.relation).schema
        values: dict[str, Any] = dict(stmt.assignments)
        unknown = set(values) - set(schema.names())
        if unknown:
            raise QuelCompileError(f"unknown attributes {sorted(unknown)}")
        record = tuple(
            values.get(
                attribute.name,
                0 if attribute.type is AttrType.INT else "",
            )
            for attribute in schema.attributes
        )
        return AppendTuple(stmt.relation, record)

    def _exact_qualification(
        self, variable: str, qualification: tuple[Comparison, ...]
    ) -> ExactMatch:
        if len(qualification) != 1 or qualification[0].op != "=":
            raise QuelCompileError(
                "single-tuple updates need exactly one equality predicate"
            )
        comparison = qualification[0]
        if comparison.is_join_term:
            raise QuelCompileError("updates cannot use join terms")
        if comparison.left.variable != variable:
            raise QuelCompileError(
                f"predicate must reference {variable!r}"
            )
        schema = self.schema_of(variable)
        schema.position(comparison.left.attr)  # validate
        return ExactMatch(comparison.left.attr, comparison.right)

    def compile_delete(self, stmt: Delete) -> DeleteTuple:
        where = self._exact_qualification(stmt.variable, stmt.qualification)
        return DeleteTuple(self.relation_of(stmt.variable), where)

    def compile_replace(self, stmt: Replace) -> ModifyTuple:
        if len(stmt.assignments) != 1:
            raise QuelCompileError(
                "replace supports exactly one assignment"
            )
        where = self._exact_qualification(stmt.variable, stmt.qualification)
        (attr, value), = stmt.assignments
        self.schema_of(stmt.variable).position(attr)  # validate
        return ModifyTuple(
            self.relation_of(stmt.variable), where, attr, value
        )
