"""Tokenizer for the QUEL subset Gamma's host software accepts.

Token kinds: keywords (case-insensitive), identifiers, integer and string
literals, comparison operators, punctuation.  The lexer is a plain scanner
— no regex table — so error positions are exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError

KEYWORDS = {
    "range", "of", "is", "retrieve", "unique", "into", "where", "and",
    "append", "to", "delete", "replace", "all", "by",
    "count", "sum", "avg", "min", "max", "sort", "descending",
}

OPERATORS = ("<=", ">=", "!=", "=", "<", ">")
PUNCTUATION = "().,"


class QuelSyntaxError(ReproError):
    """Raised for malformed QUEL statements (with position info)."""


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # keyword | name | int | string | op | punct | end
    value: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"Token({self.kind}:{self.value!r}@{self.position})"


def tokenize(text: str) -> list[Token]:
    """Scan ``text`` into tokens, ending with a synthetic ``end`` token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            kind = "keyword" if word.lower() in KEYWORDS else "name"
            value = word.lower() if kind == "keyword" else word
            tokens.append(Token(kind, value, start))
            continue
        if ch.isdigit() or (ch == "-" and i + 1 < n and text[i + 1].isdigit()):
            start = i
            i += 1
            while i < n and text[i].isdigit():
                i += 1
            tokens.append(Token("int", text[start:i], start))
            continue
        if ch == '"':
            start = i
            i += 1
            while i < n and text[i] != '"':
                i += 1
            if i >= n:
                raise QuelSyntaxError(
                    f"unterminated string literal at {start}"
                )
            tokens.append(Token("string", text[start + 1:i], start))
            i += 1
            continue
        matched = False
        for op in OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("op", op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in PUNCTUATION:
            tokens.append(Token("punct", ch, i))
            i += 1
            continue
        raise QuelSyntaxError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token("end", "", n))
    return tokens
