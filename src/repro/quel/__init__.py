"""QUEL front-end: Gamma's query language (an extended INGRES QUEL).

Typical use::

    from repro import GammaMachine
    from repro.quel import QuelSession

    machine = GammaMachine()
    machine.load_wisconsin("tenktup", 10_000)
    session = QuelSession(machine)
    session.execute("range of t is tenktup")
    result = session.execute(
        "retrieve into res (t.all)"
        " where t.unique2 >= 0 and t.unique2 <= 99"
    )
"""

from __future__ import annotations

from typing import Optional

from ..engine.plan import Query, UpdateRequest
from ..engine.results import QueryResult
from .ast import Append, Delete, RangeDecl, Replace, Retrieve
from .compiler import QuelCompileError, QuelCompiler
from .lexer import QuelSyntaxError, tokenize
from .parser import parse


class QuelSession:
    """An interactive session: range declarations plus statement execution."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.compiler = QuelCompiler(machine.catalog)

    def compile(self, text: str) -> Optional[Query | UpdateRequest]:
        """Parse and compile one statement; range declarations return
        None (they only bind a variable)."""
        statement = parse(text)
        if isinstance(statement, RangeDecl):
            self.compiler.declare(statement)
            return None
        if isinstance(statement, Retrieve):
            return self.compiler.compile_retrieve(statement)
        if isinstance(statement, Append):
            return self.compiler.compile_append(statement)
        if isinstance(statement, Delete):
            return self.compiler.compile_delete(statement)
        if isinstance(statement, Replace):
            return self.compiler.compile_replace(statement)
        raise QuelCompileError(f"unhandled statement {statement!r}")

    def execute(self, text: str) -> Optional[QueryResult]:
        """Compile and run one statement; returns None for declarations."""
        compiled = self.compile(text)
        if compiled is None:
            return None
        if isinstance(compiled, Query):
            return self.machine.run(compiled)
        return self.machine.update(compiled)


__all__ = [
    "QuelCompileError",
    "QuelCompiler",
    "QuelSession",
    "QuelSyntaxError",
    "parse",
    "tokenize",
]
