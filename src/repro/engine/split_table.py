"""Split tables: the demultiplexing structure at every operator output.

"The output is a stream of tuples that is demultiplexed through a structure
we term a split table" (Section 2).  For a tuple bound for an N-process
join, the split table hashes the join attribute to a value in 1..N and
forwards the tuple to that process's port; result relations use a
round-robin split instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from ..catalog import gamma_hash
from ..errors import PlanError
from ..storage import Schema
from .bitfilter import BitVectorFilter
from .ports import InputPort


@dataclass(frozen=True)
class Destination:
    """One split-table entry: the address of a receiving process."""

    node_name: str
    port: InputPort


class SplitTable:
    """Routes tuples to destinations by hash, round-robin, or singleton."""

    def __init__(
        self,
        destinations: Sequence[Destination],
        route: Callable[[tuple], Optional[int]],
        route_cost: float,
        kind: str,
        route_batch: Optional[
            Callable[[Sequence[tuple]], list[Any]]
        ] = None,
    ) -> None:
        if not destinations:
            raise PlanError("split table needs at least one destination")
        self.destinations = list(destinations)
        self.route = route
        self.route_cost = route_cost
        self.kind = kind
        self.filter: Optional[BitVectorFilter] = None
        # Batched routing: one call per packet instead of one per tuple.
        # Constructors install a specialized closure; the fallback simply
        # maps route() over the batch, so the destinations are identical
        # by construction.
        if route_batch is None:
            def route_batch(records: Sequence[tuple]) -> list[Any]:
                return [route(record) for record in records]
        self.route_batch = route_batch

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<SplitTable {self.kind} x{len(self.destinations)}>"

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def by_hash(
        cls,
        destinations: Sequence[Destination],
        schema: Schema,
        attr: str,
        costs: Any,
        bit_filter: Optional[BitVectorFilter] = None,
    ) -> "SplitTable":
        """Hash split on ``attr`` — the join redistribution path.

        With a bit-vector filter installed, tuples whose join attribute
        cannot be in the build side are dropped before routing.
        """
        pos = schema.position(attr)
        n = len(destinations)

        # gamma_hash, inlined into the closures: route() runs once per
        # emitted tuple, and the n > 0 precondition is established here
        # (destinations is non-empty) rather than re-checked per call.
        # The bucket arithmetic is bit-identical to gamma_hash.
        from ..catalog.partitioning import stable_hash

        from .columnar import BatchedBitProbe, hash_route_batch

        if bit_filter is None:
            def route(record: tuple) -> Optional[int]:
                value = record[pos]
                h = (
                    (hash(value) if type(value) is int else stable_hash(value))
                    * 2654435761
                ) & 0xFFFFFFFF
                h ^= h >> 17
                h = (h * 0x9E3779B1) & 0xFFFFFFFF
                h ^= h >> 13
                return h % n

            def route_batch(records: Sequence[tuple]) -> list[Any]:
                return hash_route_batch(records, pos, n)
        else:
            might_contain = bit_filter.might_contain
            batched_probe = BatchedBitProbe(
                bit_filter.n_bits, bit_filter._seeds, bit_filter._bits
            )

            def route(record: tuple) -> Optional[int]:
                value = record[pos]
                if not might_contain(value):
                    return None
                h = (
                    (hash(value) if type(value) is int else stable_hash(value))
                    * 2654435761
                ) & 0xFFFFFFFF
                h ^= h >> 17
                h = (h * 0x9E3779B1) & 0xFFFFFFFF
                h ^= h >> 13
                return h % n

            def route_batch(records: Sequence[tuple]) -> list[Any]:
                out: list[Any] = [None] * len(records)
                mask = batched_probe.test(records, pos)
                if mask is not None:
                    # Vector path: every value already passed the
                    # all-ints gate, so ``hash(value)`` is the fast case.
                    for i, keep in enumerate(mask):
                        if keep:
                            h = (
                                hash(records[i][pos]) * 2654435761
                            ) & 0xFFFFFFFF
                            h ^= h >> 17
                            h = (h * 0x9E3779B1) & 0xFFFFFFFF
                            h ^= h >> 13
                            out[i] = h % n
                    return out
                for i, record in enumerate(records):
                    value = record[pos]
                    if might_contain(value):
                        h = (
                            (
                                hash(value) if type(value) is int
                                else stable_hash(value)
                            )
                            * 2654435761
                        ) & 0xFFFFFFFF
                        h ^= h >> 17
                        h = (h * 0x9E3779B1) & 0xFFFFFFFF
                        h ^= h >> 13
                        out[i] = h % n
                return out

        table = cls(
            destinations, route, costs.split_hash, "hash",
            route_batch=route_batch,
        )
        table.filter = bit_filter
        return table

    @classmethod
    def by_function(
        cls,
        destinations: Sequence[Destination],
        schema: Schema,
        attr: str,
        fn: Callable[[Any], int],
        costs: Any,
        bit_filter: Optional[BitVectorFilter] = None,
    ) -> "SplitTable":
        """Split by an arbitrary value→index function.

        Used after a join-overflow hash switch: the scheduler installs the
        new subpartitioning function into the probing selections' split
        tables (Section 6.2.2).
        """
        pos = schema.position(attr)

        if bit_filter is None:
            def route(record: tuple) -> Optional[int]:
                return fn(record[pos])
        else:
            def route(record: tuple) -> Optional[int]:
                value = record[pos]
                if not bit_filter.might_contain(value):
                    return None
                return fn(value)

        table = cls(destinations, route, costs.split_hash, "function")
        table.filter = bit_filter
        return table

    @classmethod
    def by_record_hash(
        cls,
        destinations: Sequence[Destination],
        positions: Sequence[int],
        costs: Any,
    ) -> "SplitTable":
        """Hash on a combination of attributes (the whole projected tuple).

        Used for duplicate-eliminating projections: identical projected
        tuples must meet at the same node."""
        n = len(destinations)
        pos = tuple(positions)

        def route(record: tuple) -> Optional[int]:
            return gamma_hash(tuple(record[p] for p in pos), n)

        return cls(destinations, route, costs.split_hash, "record-hash")

    @classmethod
    def round_robin(
        cls, destinations: Sequence[Destination]
    ) -> "SplitTable":
        """Round-robin split — the default for result relations."""
        n = len(destinations)
        state = {"next": 0}

        def route(record: tuple) -> Optional[int]:
            idx = state["next"]
            state["next"] = (idx + 1) % n
            return idx

        def route_batch(records: Sequence[tuple]) -> list[Any]:
            idx = state["next"]
            count = len(records)
            state["next"] = (idx + count) % n
            return [(idx + i) % n for i in range(count)]

        return cls(
            destinations, route, 0.0, "round-robin", route_batch=route_batch
        )

    @classmethod
    def single(cls, destination: Destination) -> "SplitTable":
        """Everything to one destination (host return, scalar collector)."""
        return cls(
            [destination], lambda record: 0, 0.0, "single",
            route_batch=lambda records: [0] * len(records),
        )
