"""The Gamma database machine: the library's main entry point.

Typical use::

    from repro import GammaMachine, GammaConfig, Query, RangePredicate

    machine = GammaMachine(GammaConfig.paper_default())
    machine.load_wisconsin("tenk", 10_000, clustered_on="unique1",
                           secondary_on=["unique2"])
    result = machine.run(
        Query.select("tenk", RangePredicate("unique2", 0, 99), into="result")
    )
    print(result.response_time, result.result_count)
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence
from zlib import crc32

from ..catalog import Catalog, Hashed, PartitioningStrategy, Relation, RoundRobin
from ..errors import CatalogError, ReproError
from ..hardware import GammaConfig
from ..storage import Schema
from ..workloads import generate_tuples, wisconsin_schema
from .driver import QueryDriver, UpdateDriver
from .ir import ir_op_ids
from .node import ExecutionContext
from .plan import PlanNode, Query, ScanNode, UpdateRequest
from .planner import Planner
from .results import QueryResult


def _scanned_relations(node: PlanNode) -> set[str]:
    """Names of every relation a plan tree reads."""
    names: set[str] = set()
    stack: list[PlanNode] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ScanNode):
            names.add(current.relation)
        stack.extend(current.children())
    return names


class GammaMachine:
    """A configured Gamma instance holding a catalog of loaded relations."""

    def __init__(
        self,
        config: Optional[GammaConfig] = None,
        skew_strategy: str = "hash",
    ) -> None:
        self.config = config or GammaConfig.paper_default()
        self.catalog = Catalog()
        #: Join redistribution strategy handed to every Planner this
        #: machine constructs (see :data:`repro.engine.planner.SKEW_STRATEGIES`).
        self.skew_strategy = skew_strategy

    def _planner(self) -> Planner:
        return Planner(
            self.config, self.catalog, skew_strategy=self.skew_strategy
        )

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"<GammaMachine {self.config.n_disk_sites}+"
            f"{self.config.n_diskless} nodes,"
            f" page={self.config.page_size}B, {len(self.catalog)} relations>"
        )

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load_relation(
        self,
        name: str,
        schema: Schema,
        records: Sequence[tuple],
        partitioning: Optional[PartitioningStrategy] = None,
        clustered_on: Optional[str] = None,
        secondary_on: Iterable[str] = (),
    ) -> Relation:
        """Decluster ``records`` across the disk sites and register them."""
        strategy = partitioning or RoundRobin()
        return self.catalog.create(
            name,
            schema,
            strategy,
            records,
            n_sites=self.config.n_disk_sites,
            page_size=self.config.page_size,
            clustered_on=clustered_on,
            secondary_on=secondary_on,
        )

    def load_wisconsin(
        self,
        name: str,
        n: int,
        seed: Optional[int] = None,
        partition_on: str = "unique1",
        clustered_on: Optional[str] = None,
        secondary_on: Iterable[str] = (),
        strings: str = "cheap",
    ) -> Relation:
        """Load an ``n``-tuple Wisconsin relation hashed on ``unique1``.

        Mirrors Section 4: "Two copies of each relation were created and
        loaded using Uniquel as the key (partitioning) attribute in all
        cases."
        """
        if seed is None:
            # crc32, not builtin hash: string hashing is salted per process,
            # and a per-run default seed would defeat reproducibility.
            seed = crc32(name.encode("utf-8")) % (2**31)
        records = list(
            generate_tuples(n, seed=seed, strings=strings)  # type: ignore[arg-type]
        )
        return self.load_relation(
            name,
            wisconsin_schema(),
            records,
            partitioning=Hashed(partition_on),
            clustered_on=clustered_on,
            secondary_on=secondary_on,
        )

    def load_relation_timed(
        self,
        name: str,
        schema: Schema,
        records: Sequence[tuple],
        partitioning: Optional[PartitioningStrategy] = None,
        clustered_on: Optional[str] = None,
        secondary_on: Iterable[str] = (),
    ) -> tuple[Relation, QueryResult]:
        """Like :meth:`load_relation`, but the load itself is measured.

        The host streams tuples through the declustering split table to a
        loader operator at each disk site (Section 2's load path); index
        builds are charged as bulk sorts plus sequential index-page
        writes.  Returns the relation and the load's timing profile.
        """
        from .loader import LoadRun

        strategy = partitioning or RoundRobin()
        records = list(records)
        ctx = ExecutionContext(self.config)
        run = LoadRun(
            ctx, name, schema, records, strategy,
            clustered_on, list(secondary_on),
        )
        ctx.sim.spawn(run.host_process(), name="load.host")
        response_time = ctx.sim.run()
        relation = self.catalog.create(
            name, schema, strategy, records,
            n_sites=self.config.n_disk_sites,
            page_size=self.config.page_size,
            clustered_on=clustered_on,
            secondary_on=secondary_on,
        )
        result = QueryResult(
            response_time=response_time,
            result_count=run.loaded,
            stats=dict(ctx.stats),
            plan=f"load[{strategy.kind}]({name})",
        )
        return relation, result

    def drop_relation(self, name: str) -> None:
        self.catalog.drop(name)

    def drop_if_exists(self, name: str) -> None:
        if name in self.catalog:
            self.catalog.drop(name)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        query: Query,
        trace: Optional["Any"] = None,
        profile: bool = False,
        telemetry: Optional["Any"] = None,
    ) -> QueryResult:
        """Execute a retrieval query, returning the answer and timings.

        Pass a :class:`~repro.metrics.TraceBuffer` as ``trace`` to record
        the execution's service intervals and operator lifetimes for
        Chrome-trace export; set ``profile=True`` to attach an EXPLAIN
        ANALYZE :class:`~repro.metrics.QueryProfile` to the result; pass
        a :class:`~repro.metrics.telemetry.TelemetrySampler` as
        ``telemetry`` to sample cluster time series on a fixed cadence.
        None of them change the simulated timeline.
        """
        if query.into is not None and query.into in self.catalog:
            raise CatalogError(
                f"result relation {query.into!r} already exists"
            )
        ctx = ExecutionContext(
            self.config, trace=trace, profile=profile, telemetry=telemetry
        )
        plan = self._planner().plan(query)
        run = QueryDriver(ctx, self.catalog, plan)
        ctx.sim.spawn(run.host_process(), name="host")
        response_time = ctx.sim.run()
        ctx.stats["sim_events"] = ctx.sim.events_processed
        result = self._build_result(ctx, run, query, response_time)
        if ctx.profiler is not None:
            result.profile = ctx.profiler.finish(plan, response_time)
        return result

    def run_concurrent(
        self,
        requests: Sequence[Query | UpdateRequest],
        trace: Optional["Any"] = None,
        profile: bool = False,
    ) -> list[QueryResult]:
        """Execute several queries/updates in one simulation.

        The paper defers this: "The validity of this expectation will be
        determined in future multiuser benchmarks of the Gamma database
        machine."  All requests are submitted at t=0 and contend for the
        same CPUs, disks, network interfaces and locks; each result's
        ``response_time`` is its own completion (or abort) time.  This is
        how the Remote-join off-loading claim (Section 6.2.1) can be
        tested: with joins on the diskless processors, the disk sites
        keep capacity for concurrent selections.

        Per-request failures (a deadlock victim, a lock timeout) do not
        fail the batch: the victim's locks are released, its result
        carries the exception in :attr:`QueryResult.error` with
        ``response_time`` at the abort point, and its result relation
        (if any) is not registered.

        ``trace``/``profile`` work as in :meth:`run`: one shared
        :class:`~repro.metrics.TraceBuffer`/:class:`~repro.metrics.Profiler`
        observes the whole run, and with ``profile=True`` each result's
        ``profile`` is that request's own EXPLAIN ANALYZE — operator
        spans filtered to its plan's operators.  Because all requests
        share one simulation, the metrics snapshots and utilisation
        report describe the whole machine over the whole run, not any
        single request.
        """
        queries = [r for r in requests if isinstance(r, Query)]
        for query in queries:
            if query.into is not None and query.into in self.catalog:
                raise CatalogError(
                    f"result relation {query.into!r} already exists"
                )
        names = [q.into for q in queries if q.into is not None]
        if len(names) != len(set(names)):
            raise CatalogError("concurrent queries need distinct result names")
        into_names = set(names)
        for query in queries:
            for relation in sorted(_scanned_relations(query.root)):
                if relation in into_names and relation not in self.catalog:
                    raise CatalogError(
                        f"concurrent request reads {relation!r}, which"
                        " another request in the same batch creates (via"
                        " into=); results only exist after the batch"
                        " completes — submit the reader in a later batch"
                    )
        ctx = ExecutionContext(self.config, trace=trace, profile=profile)
        planner = self._planner()
        runs: list[tuple[Any, Any, Any, list[float], list[BaseException]]] = []
        for i, request in enumerate(requests):
            # Distinct op_id namespaces keep per-request profiles (and the
            # profiler's span keying) from colliding across plans.
            planner.id_prefix = f"q{i}."
            if isinstance(request, Query):
                ir: Any = planner.plan(request)
                run: Any = QueryDriver(ctx, self.catalog, ir)
            else:
                ir = planner.compile_update(request)
                run = UpdateDriver(ctx, self.catalog, ir)
            finished: list[float] = []
            failure: list[BaseException] = []

            def host(run=run, finished=finished, failure=failure):
                try:
                    yield from run.host_process()
                except ReproError as exc:
                    failure.append(exc)
                finally:
                    finished.append(ctx.sim.now)

            ctx.sim.spawn(host(), name=f"host.q{i}")
            runs.append((request, run, ir, finished, failure))
        ctx.sim.run()
        ctx.stats["sim_events"] = ctx.sim.events_processed
        results = []
        for request, run, ir, finished, failure in runs:
            error = failure[0] if failure else None
            response_time = finished[0] if finished else ctx.sim.now
            result = self._build_result(
                ctx, run, request, response_time, error=error
            )
            if ctx.profiler is not None:
                result.profile = ctx.profiler.finish(
                    ir, response_time, op_ids=ir_op_ids(ir)
                )
            results.append(result)
        return results

    def run_workload(
        self, mix: "Any", spec: "Any", telemetry: Optional["Any"] = None
    ) -> "Any":
        """Run a multiuser workload: terminals submitting a query mix
        against one live simulation, behind admission control.

        ``mix`` is a :class:`~repro.workloads.multiuser.QueryMix` whose
        queries are host-bound (``into=None``); ``spec`` is the
        :class:`~repro.workloads.multiuser.WorkloadSpec` (clients,
        arrival process, MPL, admission policy, timeout, seed).  Returns
        the :class:`~repro.metrics.WorkloadResult` with per-query
        latency records and percentile/throughput summaries.  The same
        spec and mix on the same machine reproduce the result bit for
        bit — with or without a ``telemetry`` sampler attached.
        """
        from ..workloads.multiuser import drive_workload

        ctx = ExecutionContext(self.config, telemetry=telemetry)
        ctx.lock_timeout = spec.timeout
        machine = self

        class _Session:
            sim = ctx.sim
            label = "gamma"

            @staticmethod
            def execute(index: int, request: Query | UpdateRequest) -> Any:
                planner = machine._planner()
                planner.id_prefix = f"q{index}."
                if isinstance(request, Query):
                    if request.into is not None:
                        raise CatalogError(
                            "workload queries must stream to the host"
                            f" (into=None), got into={request.into!r}"
                        )
                    run: Any = QueryDriver(
                        ctx, machine.catalog, planner.plan(request)
                    )
                else:
                    run = UpdateDriver(
                        ctx, machine.catalog, planner.compile_update(request)
                    )
                yield from run.host_process()

        return drive_workload(_Session, spec, mix, telemetry=telemetry)

    def update(
        self,
        request: UpdateRequest,
        trace: Optional["Any"] = None,
        profile: bool = False,
        telemetry: Optional["Any"] = None,
    ) -> QueryResult:
        """Execute a single-tuple update request (Table 3 operations)."""
        ctx = ExecutionContext(
            self.config, trace=trace, profile=profile, telemetry=telemetry
        )
        update_ir = self._planner().compile_update(request)
        run = UpdateDriver(ctx, self.catalog, update_ir)
        ctx.sim.spawn(run.host_process(), name="host")
        response_time = ctx.sim.run()
        ctx.stats["sim_events"] = ctx.sim.events_processed
        result = self._build_result(ctx, run, request, response_time)
        if ctx.profiler is not None:
            result.profile = ctx.profiler.finish(update_ir, response_time)
        return result

    def _build_result(
        self,
        ctx: ExecutionContext,
        run: Any,
        request: Query | UpdateRequest,
        response_time: float,
        error: Optional[BaseException] = None,
    ) -> QueryResult:
        """The one result assembler behind ``run``/``run_concurrent``/
        ``update``: registers any result relation and snapshots the
        context's metrics into a :class:`QueryResult`.

        A failed request (``error`` set) never registers its result
        relation — an aborted ``retrieve into`` must not leave a
        half-written relation in the catalog — and reports no tuples.
        """
        snapshot = ctx.metrics.snapshot()
        utilisation_report = ctx.utilisation_report()
        if isinstance(request, Query):
            result_relation = None
            if request.into is not None and error is None:
                self.catalog.register(
                    Relation(request.into, run.plan.schema, RoundRobin(),
                             run.result_fragments)
                )
                result_relation = request.into
            if error is None:
                tuples = run.collected if request.into is None else None
            else:
                tuples = None
            return QueryResult(
                response_time=response_time,
                tuples=tuples,
                result_relation=result_relation,
                result_count=run.result_count if error is None else 0,
                stats=dict(ctx.stats),
                overflows_per_node=run.overflows_per_node,
                partitions_per_node=run.partitions_per_node,
                utilisations=utilisation_report.as_dict(),
                node_metrics=snapshot["nodes"],
                operator_metrics=snapshot["operators"],
                utilisation_report=utilisation_report,
                plan=run.plan.description,
                error=error,
            )
        return QueryResult(
            response_time=response_time,
            result_count=run.affected if error is None else 0,
            stats=dict(ctx.stats),
            utilisations=utilisation_report.as_dict(),
            node_metrics=snapshot["nodes"],
            operator_metrics=snapshot["operators"],
            utilisation_report=utilisation_report,
            plan=run.plan.description,
            error=error,
        )
