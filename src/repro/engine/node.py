"""Processor nodes and the per-query execution context.

An :class:`ExecutionContext` is built fresh for every query (Gamma is
evaluated single-user with cold buffers): it owns the simulation, one
:class:`Node` per processor, the interconnect, the metrics registry and
(optionally) the trace-event stream the benchmarks report.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Any, Generator, Optional

from ..errors import ExecutionError
from ..hardware import DiskDrive, GammaConfig, Interconnect
from ..metrics import MetricsRegistry, Profiler, TraceBuffer, UtilisationReport
from ..metrics.telemetry import TelemetrySampler
from ..sim import Server, Simulation, Use
from ..storage import BufferPool

HOST = "host"
SCHEDULER = "sched"


class Node:
    """One Gamma processor: a CPU server, an optional disk, a buffer pool."""

    def __init__(
        self,
        sim: Simulation,
        name: str,
        config: GammaConfig,
        has_disk: bool,
    ) -> None:
        self.sim = sim
        self.name = name
        self.config = config
        self.cpu = Server(f"{name}.cpu")
        self.drive: Optional[DiskDrive] = (
            DiskDrive(f"{name}.disk", config.disk) if has_disk else None
        )
        buffer_pages = max(
            8, (config.memory_per_node // 2) // config.page_size
        )
        self.buffer = BufferPool(f"{name}.buf", buffer_pages)
        self.instructions_retired = 0.0
        # config.cpu.instructions_per_second, hoisted: work_effect divides
        # by it once per CPU charge, and the property recomputes mips*1e6
        # per call.  Same expression, so the quotient is bit-identical.
        self._instr_per_s = config.cpu.mips * 1e6
        # One mutable Use reused by every work_effect call: the kernel
        # consumes an effect synchronously at the yield (duration is read
        # once and captured by value), so the instance never needs to
        # outlive the next charge.
        self._cpu_effect = Use(self.cpu, 0.0)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        disk = "disk" if self.drive else "diskless"
        return f"<Node {self.name} ({disk})>"

    @property
    def has_disk(self) -> bool:
        return self.drive is not None

    def work(self, instructions: float) -> Generator[Any, Any, None]:
        """Occupy this node's CPU for ``instructions`` of work."""
        if instructions <= 0:
            return
        self.instructions_retired += instructions
        yield Use(self.cpu, self.config.cpu.time_for(instructions))

    def work_effect(self, instructions: float) -> Optional[Use]:
        """Fast-path :meth:`work`: the CPU effect itself, or None for zero.

        ``if (eff := node.work_effect(x)) is not None: yield eff`` inside an
        operator body saves a nested generator frame per charge versus
        ``yield from node.work(x)``; the effect the kernel sees — and so
        the simulated timeline — is identical.
        """
        if instructions <= 0:
            return None
        self.instructions_retired += instructions
        eff = self._cpu_effect
        eff.duration = instructions / self._instr_per_s
        return eff

    def read_page(
        self,
        file_id: str,
        page_no: int,
        nbytes: Optional[int] = None,
        sequential: Optional[bool] = None,
    ) -> Generator[Any, Any, bool]:
        """Read one page through the buffer pool; returns True on a hit."""
        assert self.drive is not None, f"{self.name} has no disk"
        if self.buffer.access(file_id, page_no):
            return True
        size = self.config.page_size if nbytes is None else nbytes
        yield from self.drive.read(file_id, page_no, size, sequential)
        return False

    def read_page_effect(
        self,
        file_id: str,
        page_no: int,
        nbytes: Optional[int] = None,
        sequential: Optional[bool] = None,
    ) -> Optional[Use]:
        """Fast-path :meth:`read_page`: the disk effect, or None on a
        buffer-pool hit.  Identical timeline, one less generator frame."""
        if self.buffer.access(file_id, page_no):
            return None
        size = self.config.page_size if nbytes is None else nbytes
        return self.drive.read_effect(file_id, page_no, size, sequential)

    def read_page_uncached(
        self,
        file_id: str,
        page_no: int,
        nbytes: Optional[int] = None,
    ) -> Generator[Any, Any, None]:
        """A random page read that always goes to the disk.

        Used by the non-clustered index data-fetch path: the paper assumes
        (and measures) that "each tuple causes a page fault", so these
        accesses never hit the pool — which is exactly why larger pages
        *hurt* this access method (Figures 7-8: the longer transfer time
        dominates any fan-out advantage).
        """
        assert self.drive is not None, f"{self.name} has no disk"
        size = self.config.page_size if nbytes is None else nbytes
        yield from self.drive.read(file_id, page_no, size, sequential=False)

    def read_page_uncached_effect(
        self,
        file_id: str,
        page_no: int,
        nbytes: Optional[int] = None,
    ) -> Use:
        """Fast-path :meth:`read_page_uncached`: the disk effect itself."""
        assert self.drive is not None, f"{self.name} has no disk"
        size = self.config.page_size if nbytes is None else nbytes
        return self.drive.read_effect(file_id, page_no, size, sequential=False)

    def write_page(
        self,
        file_id: str,
        page_no: int,
        nbytes: Optional[int] = None,
        sequential: Optional[bool] = None,
    ) -> Generator[Any, Any, None]:
        """Write one page (write-through; the page stays cached)."""
        assert self.drive is not None, f"{self.name} has no disk"
        size = self.config.page_size if nbytes is None else nbytes
        yield from self.drive.write(file_id, page_no, size, sequential)
        self.buffer.access(file_id, page_no)


class ExecutionContext:
    """Everything one query execution needs: sim, nodes, network, metrics.

    ``trace`` (optional) attaches a :class:`~repro.metrics.TraceBuffer`:
    service intervals on every CPU/disk/NIC/ring server and operator
    lifetimes are recorded into it as the simulation runs.  ``profile``
    attaches a :class:`~repro.metrics.Profiler` that attributes every
    service interval to the IR operator whose process consumed it.
    ``telemetry`` attaches a
    :class:`~repro.metrics.telemetry.TelemetrySampler` to the kernel's
    pull hook and wires the cluster's servers, lock manager and buffer
    pools into it.  Tracing, profiling, telemetry and the always-on
    :class:`~repro.metrics.MetricsRegistry` are passive — they never
    schedule events, so the simulated timeline is identical whether or
    not they are inspected.
    """

    def __init__(
        self,
        config: GammaConfig,
        trace: Optional[TraceBuffer] = None,
        profile: bool = False,
        telemetry: Optional["TelemetrySampler"] = None,
    ) -> None:
        self.config = config
        self.metrics = MetricsRegistry()
        self.trace = trace
        self.profiler: Optional[Profiler] = Profiler() if profile else None
        self.sim = Simulation()
        self.disk_nodes = [
            Node(self.sim, f"disk{i}", config, has_disk=True)
            for i in range(config.n_disk_sites)
        ]
        self.diskless_nodes = [
            Node(self.sim, f"proc{i}", config, has_disk=False)
            for i in range(config.n_diskless)
        ]
        self.scheduler_node = Node(self.sim, SCHEDULER, config, has_disk=False)
        self.host_node = Node(self.sim, HOST, config, has_disk=False)
        self.recovery_node: Optional[Node] = (
            Node(self.sim, "recovery", config, has_disk=True)
            if config.use_recovery_server else None
        )
        self.nodes: dict[str, Node] = {
            n.name: n
            for n in [
                *self.disk_nodes,
                *self.diskless_nodes,
                self.scheduler_node,
                self.host_node,
                *([self.recovery_node] if self.recovery_node else []),
            ]
        }
        self.net = Interconnect(config.network, list(self.nodes))
        from .recovery import RecoveryLog

        self.recovery_log: Optional[RecoveryLog] = (
            RecoveryLog(self, self.recovery_node)
            if self.recovery_node else None
        )
        from .locks import LockManager

        self.locks = LockManager(self.sim)
        #: Per-request bound (seconds) on any single lock wait; ``None``
        #: means wait forever.  The workload subsystem sets this so a
        #: query stuck behind a long writer aborts-and-releases instead
        #: of wedging a multiuser run.
        self.lock_timeout: Optional[float] = None
        self._txn_ids = itertools.count(1)
        self._spool_rr = itertools.cycle(range(len(self.disk_nodes)))
        self._temp_ids = itertools.count()
        self.telemetry = telemetry
        if trace is not None:
            self._wire_trace(trace)
        if self.profiler is not None:
            self._wire_profile(self.profiler)
        if telemetry is not None:
            self._wire_telemetry(telemetry)

    @property
    def stats(self) -> Counter[str]:
        """Query-wide counters (view of the metrics registry, kept for
        compatibility with the pre-registry ``ctx.stats`` dict)."""
        return self.metrics.query

    def _wire_trace(self, trace: TraceBuffer) -> None:
        """Attach service-interval observers to every hardware server."""

        def observer(node_name: str, lane: str):
            def on_service(server_name: str, start: float, dur: float) -> None:
                trace.duration(node_name, lane, lane, start, dur, cat=lane)

            return on_service

        for node in self.nodes.values():
            node.cpu.observer = observer(node.name, "cpu")
            if node.drive is not None:
                node.drive.server.observer = observer(node.name, "disk")
        for name, interface in self.net.interfaces.items():
            interface.server.observer = observer(name, "nic")
        self.net.ring.observer = observer("ring", "ring")

    def _wire_profile(self, profiler: Profiler) -> None:
        """Attach profile hooks, declaring each server's resource class
        explicitly (cpu/disk/net) — never inferred from server names."""
        for node in self.nodes.values():
            profiler.wire_server(node.cpu, "cpu", node.name)
            if node.drive is not None:
                profiler.wire_server(node.drive.server, "disk", node.name)
        for name, interface in self.net.interfaces.items():
            profiler.wire_server(interface.server, "net", name)
        profiler.wire_server(self.net.ring, "net", "ring")

    def _wire_telemetry(self, sampler: TelemetrySampler) -> None:
        """Attach the sampler to the kernel and wire cluster gauges.

        Aggregate tracks (mean/max/min/spread utilisation over the CPU,
        disk and NIC groups, lock-manager counts, buffer pages,
        hash-table bytes) are always wired; small machines also get
        per-node lanes so the dashboard can show individual sites.
        """
        sampler.attach(self.sim)
        sampler.watch_group(
            "cluster", "cpu.util",
            [(n.name, n.cpu) for n in self.nodes.values()],
        )
        sampler.watch_group(
            "cluster", "disk.util",
            [
                (n.name, n.drive.server)
                for n in self.nodes.values() if n.drive is not None
            ],
        )
        sampler.watch_group(
            "cluster", "nic.util",
            [
                (name, interface.server)
                for name, interface in self.net.interfaces.items()
            ],
        )
        sampler.watch_server(self.net.ring, "ring", "net")
        if len(self.disk_nodes) <= sampler.per_node_limit:
            for node in self.disk_nodes:
                sampler.watch_server(node.cpu, node.name, "cpu")
                if node.drive is not None:
                    sampler.watch_server(node.drive.server, node.name, "disk")
        sampler.watch_locks(self.locks)
        nodes = list(self.nodes.values())
        sampler.add_gauge(
            "cluster", "mem.buffer_pages", "pages",
            lambda: float(sum(len(n.buffer) for n in nodes)),
        )
        registry_nodes = self.metrics.nodes
        sampler.add_gauge(
            "cluster", "mem.hash_table_peak", "bytes",
            lambda: float(sum(
                nm.hash_table_peak_bytes for nm in registry_nodes.values()
            )),
        )

    # ------------------------------------------------------------------
    # placement helpers
    # ------------------------------------------------------------------
    def join_nodes(self, mode: "Any") -> list[Node]:
        """Nodes hosting join operators for a
        :class:`~repro.engine.plan.JoinMode`."""
        from .plan import JoinMode

        if mode is JoinMode.LOCAL or not self.diskless_nodes:
            return list(self.disk_nodes)
        if mode is JoinMode.REMOTE:
            return list(self.diskless_nodes)
        return [*self.disk_nodes, *self.diskless_nodes]

    def placement_nodes(self, placement: "Any") -> list[Node]:
        """Resolve an IR :class:`~repro.engine.ir.Placement` against this
        machine's processors."""
        if placement.role == "join-sites":
            return self.join_nodes(placement.mode)
        if placement.role == "diskless":
            return list(self.diskless_nodes or self.disk_nodes)
        if placement.role == "disk-sites":
            return list(self.disk_nodes)
        if placement.role == "host":
            return [self.host_node]
        raise ExecutionError(f"unknown placement role {placement.role!r}")

    def spool_target(self, node: Node) -> Node:
        """Disk node that stores a spool file for ``node``.

        Disk sites spool locally; diskless processors are assigned disk
        sites round-robin.
        """
        if node.has_disk:
            return node
        return self.disk_nodes[next(self._spool_rr)]

    def temp_file_id(self, label: str) -> str:
        """A unique file id for a temporary (spool) file."""
        return f"tmp.{label}.{next(self._temp_ids)}"

    def next_txn_id(self) -> int:
        """A fresh transaction id for one query/update execution."""
        return next(self._txn_ids)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def disk_stats(self) -> dict[str, int]:
        read = sum(n.drive.pages_read for n in self.disk_nodes if n.drive)
        written = sum(n.drive.pages_written for n in self.disk_nodes if n.drive)
        return {"pages_read": read, "pages_written": written}

    def utilisations(self) -> dict[str, float]:
        """Flat ``{"node.resource": busy fraction}`` map over all nodes."""
        return self.utilisation_report().as_dict()

    def utilisation_report(self) -> UtilisationReport:
        """The per-node CPU/disk/network busy-fraction report (post-run)."""
        return UtilisationReport.from_context(self)
