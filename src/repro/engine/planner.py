"""The query optimizer: access-path selection and operator placement.

Gamma "uses traditional relational techniques for query parsing,
optimization [SELI79], and code generation".  The decisions that matter for
the paper's experiments are reproduced exactly:

* **access path** — clustered index whenever the predicate is on the
  clustered attribute; non-clustered index only when the estimated number
  of random data-page reads is cheaper than a full sequential scan (this
  is why the optimizer "is smart enough to choose a segment scan" for the
  10 % non-clustered selection);
* **single-site exact match** — an equality predicate on the partitioning
  attribute is sent to exactly one processor;
* **join placement** — Local / Remote / Allnodes per the query's
  :class:`~repro.engine.plan.JoinMode`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..catalog import Catalog, Relation
from ..errors import PlanError
from ..hardware import GammaConfig
from ..storage import Schema, int_attr
from .plan import (
    AccessPath,
    AggregateNode,
    ExactMatch,
    JoinMode,
    JoinNode,
    PlanNode,
    ProjectNode,
    Query,
    RangePredicate,
    ScanNode,
    SortNode,
    TruePredicate,
)


@dataclass
class PhysicalScan:
    """A placed selection: which fragments, which access method."""

    relation: Relation
    predicate: object
    path: AccessPath
    sites: list[int]
    schema: Schema
    estimated_matches: float

    def describe(self) -> str:
        return (
            f"scan({self.relation.name}, {self.path.value},"
            f" sites={len(self.sites)})"
        )


@dataclass
class PhysicalJoin:
    """A placed hash join."""

    build: "PhysicalNode"
    probe: "PhysicalNode"
    build_attr: str
    probe_attr: str
    mode: JoinMode
    schema: Schema

    def describe(self) -> str:
        return (
            f"join[{self.mode.value}]({self.build.describe()},"
            f" {self.probe.describe()})"
        )


@dataclass
class PhysicalAggregate:
    """A placed aggregate."""

    child: "PhysicalNode"
    op: str
    attr: Optional[str]
    group_by: Optional[str]
    schema: Schema

    def describe(self) -> str:
        grouping = f" by {self.group_by}" if self.group_by else ""
        return f"agg[{self.op}{grouping}]({self.child.describe()})"


@dataclass
class PhysicalProject:
    """A placed projection."""

    child: "PhysicalNode"
    positions: list[int]
    unique: bool
    schema: Schema

    def describe(self) -> str:
        kind = "unique" if self.unique else "stream"
        return f"project[{kind}]({self.child.describe()})"


@dataclass
class PhysicalSort:
    """A placed parallel sort: range slices + ordered emission chain."""

    child: "PhysicalNode"
    attr: str
    key_pos: int
    descending: bool
    boundaries: Optional[list]  # None -> single sorter (no statistics)
    schema: Schema

    def describe(self) -> str:
        direction = "desc" if self.descending else "asc"
        width = (len(self.boundaries) + 1) if self.boundaries is not None else 1
        return (
            f"sort[{self.attr} {direction} x{width}]"
            f"({self.child.describe()})"
        )


PhysicalNode = Union[
    PhysicalScan, PhysicalJoin, PhysicalAggregate, PhysicalProject,
    PhysicalSort,
]


@dataclass
class PhysicalPlan:
    """The executable plan: a physical tree plus the result destination."""

    root: PhysicalNode
    into: Optional[str]
    schema: Schema
    description: str = field(default="")


class Planner:
    """Compiles logical :class:`~repro.engine.plan.Query` trees."""

    def __init__(self, config: GammaConfig, catalog: Catalog) -> None:
        self.config = config
        self.catalog = catalog

    def plan(self, query: Query) -> PhysicalPlan:
        root = self._plan_node(query.root)
        return PhysicalPlan(
            root=root,
            into=query.into,
            schema=root.schema,
            description=root.describe(),
        )

    # ------------------------------------------------------------------
    def _plan_node(self, node: PlanNode) -> PhysicalNode:
        if isinstance(node, ScanNode):
            return self._plan_scan(node)
        if isinstance(node, JoinNode):
            return self._plan_join(node)
        if isinstance(node, AggregateNode):
            return self._plan_aggregate(node)
        if isinstance(node, ProjectNode):
            return self._plan_project(node)
        if isinstance(node, SortNode):
            return self._plan_sort(node)
        raise PlanError(f"unknown plan node {node!r}")

    def _plan_sort(self, node: SortNode) -> PhysicalSort:
        child = self._plan_node(node.child)
        key_pos = child.schema.position(node.attr)
        return PhysicalSort(
            child=child,
            attr=node.attr,
            key_pos=key_pos,
            descending=node.descending,
            boundaries=self._sort_boundaries(node.attr, child),
            schema=child.schema,
        )

    def _sort_boundaries(
        self, attr: str, child: PhysicalNode
    ) -> Optional[list]:
        """Range-slice boundaries from catalog statistics.

        The optimizer samples the base relation holding ``attr`` (the
        statistics a Selinger-style catalog keeps); without a base source
        for the attribute the sort degrades to one sorter node — always
        correct, just unparallel.
        """
        import itertools

        n_sorters = max(1, self.config.n_diskless or self.config.n_disk_sites)
        if n_sorters == 1:
            return None
        relation = self._base_relation_with(attr, child)
        if relation is None:
            return None
        pos = relation.schema.position(attr)
        sample = sorted(
            record[pos]
            for record in itertools.islice(relation.records(), 2000)
        )
        if len(sample) < n_sorters:
            return None
        return [
            sample[(len(sample) * i) // n_sorters]
            for i in range(1, n_sorters)
        ]

    def _base_relation_with(
        self, attr: str, node: PhysicalNode
    ) -> Optional[Relation]:
        if isinstance(node, PhysicalScan):
            return node.relation if attr in node.relation.schema else None
        if isinstance(node, PhysicalJoin):
            return (
                self._base_relation_with(attr, node.build)
                or self._base_relation_with(attr, node.probe)
            )
        if isinstance(node, (PhysicalAggregate, PhysicalProject)):
            return self._base_relation_with(attr, node.child)
        if isinstance(node, PhysicalSort):
            return self._base_relation_with(attr, node.child)
        return None

    def _plan_project(self, node: ProjectNode) -> PhysicalProject:
        child = self._plan_node(node.child)
        positions = [child.schema.position(a) for a in node.attrs]
        return PhysicalProject(
            child=child,
            positions=positions,
            unique=node.unique,
            schema=child.schema.project(node.attrs),
        )

    def _plan_scan(self, node: ScanNode) -> PhysicalScan:
        relation = self.catalog.lookup(node.relation)
        predicate = node.predicate
        cardinality = relation.num_records
        est = self._selectivity(relation, predicate) * cardinality
        path = node.forced_path or self._choose_path(relation, predicate)
        sites = self._choose_sites(relation, predicate, path)
        return PhysicalScan(
            relation=relation,
            predicate=predicate,
            path=path,
            sites=sites,
            schema=relation.schema,
            estimated_matches=est,
        )

    def _selectivity(self, relation: Relation, predicate: object) -> float:
        """Selectivity estimate, preferring load-time catalog statistics
        over the uniform-over-cardinality fallback."""
        if isinstance(predicate, RangePredicate):
            stats = relation.stats_for(predicate.attr)
            if stats is not None:
                return stats.range_selectivity(predicate.low, predicate.high)
        if isinstance(predicate, ExactMatch):
            stats = relation.stats_for(predicate.attr)
            if stats is not None and stats.distinct_hint > 0:
                return 1.0 / stats.distinct_hint
        return predicate.selectivity(relation.num_records)

    def _choose_path(self, relation: Relation, predicate: object) -> AccessPath:
        if isinstance(predicate, TruePredicate):
            return AccessPath.FILE_SCAN
        if isinstance(predicate, ExactMatch):
            if predicate.attr == relation.clustered_on:
                return AccessPath.CLUSTERED_EXACT
            if predicate.attr in relation.fragments[0].secondary:
                return AccessPath.NONCLUSTERED_EXACT
            return AccessPath.FILE_SCAN
        if isinstance(predicate, RangePredicate):
            if predicate.attr == relation.clustered_on:
                return AccessPath.CLUSTERED_INDEX
            if predicate.attr in relation.fragments[0].secondary:
                if self._nonclustered_wins(relation, predicate):
                    return AccessPath.NONCLUSTERED_INDEX
            return AccessPath.FILE_SCAN
        raise PlanError(f"unknown predicate {predicate!r}")

    def _nonclustered_wins(
        self, relation: Relation, predicate: RangePredicate
    ) -> bool:
        """Selinger-style I/O comparison: random fetches vs a full scan.

        Each qualifying tuple costs one random data-page read through a
        non-clustered index; a segment scan streams every page at the
        sequential rate.  The 1 % selection wins with the index, the 10 %
        selection loses — matching Table 1 and the paper's remark that "our
        optimizer is smart enough to choose a segment scan for this query".
        """
        disk = self.config.disk
        page = self.config.page_size
        n_sites = max(1, relation.n_sites)
        matches_per_site = (
            self._selectivity(relation, predicate)
            * relation.num_records / n_sites
        )
        pages_per_site = relation.num_pages / n_sites
        index_cost = matches_per_site * disk.random_access_time(page)
        scan_cost = pages_per_site * disk.sequential_access_time(page)
        return index_cost < scan_cost

    def _choose_sites(
        self, relation: Relation, predicate: object, path: AccessPath
    ) -> list[int]:
        all_sites = list(range(relation.n_sites))
        part_attr = getattr(relation.partitioning, "attr", None)
        if isinstance(predicate, ExactMatch) and predicate.attr == part_attr:
            site = relation.partitioning.site_for_key(
                predicate.value, relation.n_sites
            )
            if site is not None:
                return [site]
        if (
            isinstance(predicate, RangePredicate)
            and predicate.attr == part_attr
        ):
            # Range declustering lets the scheduler activate only the
            # sites whose key range intersects the predicate.
            sites = relation.partitioning.sites_for_range(
                predicate.low, predicate.high, relation.n_sites
            )
            if sites is not None:
                return sites
        return all_sites

    def _plan_join(self, node: JoinNode) -> PhysicalJoin:
        node = self._propagate_selection(node)
        build = self._plan_node(node.build)
        probe = self._plan_node(node.probe)
        if node.build_attr not in build.schema:
            raise PlanError(
                f"build attribute {node.build_attr!r} not in build schema"
            )
        if node.probe_attr not in probe.schema:
            raise PlanError(
                f"probe attribute {node.probe_attr!r} not in probe schema"
            )
        return PhysicalJoin(
            build=build,
            probe=probe,
            build_attr=node.build_attr,
            probe_attr=node.probe_attr,
            mode=node.mode,
            schema=build.schema.concat(probe.schema),
        )

    def _propagate_selection(self, node: JoinNode) -> JoinNode:
        """Selection propagation across an equi-join.

        A range predicate on one side's join attribute implies the same
        range on the other side's join attribute.  This is the rewrite the
        paper describes: "Selection propagation by the Gamma optimizer
        reduces joinAselB to joinselAselB", which is why Gamma runs
        joinAselB *faster* than joinABprime while Teradata runs it slower.
        """

        def range_on(child: PlanNode, attr: str) -> Optional[RangePredicate]:
            if (
                isinstance(child, ScanNode)
                and isinstance(child.predicate, RangePredicate)
                and child.predicate.attr == attr
            ):
                return child.predicate
            return None

        def is_unfiltered_scan(child: PlanNode) -> bool:
            return isinstance(child, ScanNode) and isinstance(
                child.predicate, TruePredicate
            )

        build_pred = range_on(node.build, node.build_attr)
        probe_pred = range_on(node.probe, node.probe_attr)
        if build_pred is not None and is_unfiltered_scan(node.probe):
            assert isinstance(node.probe, ScanNode)
            new_probe = ScanNode(
                node.probe.relation,
                RangePredicate(node.probe_attr, build_pred.low, build_pred.high),
                node.probe.forced_path,
            )
            return JoinNode(node.build, new_probe, node.build_attr,
                            node.probe_attr, node.mode)
        if probe_pred is not None and is_unfiltered_scan(node.build):
            assert isinstance(node.build, ScanNode)
            new_build = ScanNode(
                node.build.relation,
                RangePredicate(node.build_attr, probe_pred.low, probe_pred.high),
                node.build.forced_path,
            )
            return JoinNode(new_build, node.probe, node.build_attr,
                            node.probe_attr, node.mode)
        return node

    def _plan_aggregate(self, node: AggregateNode) -> PhysicalAggregate:
        child = self._plan_node(node.child)
        if node.attr is not None and node.attr not in child.schema:
            raise PlanError(f"aggregate attribute {node.attr!r} unknown")
        if node.group_by is not None and node.group_by not in child.schema:
            raise PlanError(f"group-by attribute {node.group_by!r} unknown")
        if node.group_by is not None:
            schema = Schema([int_attr(node.group_by), int_attr(node.op)])
        else:
            schema = Schema([int_attr(node.op)])
        return PhysicalAggregate(
            child=child,
            op=node.op,
            attr=node.attr,
            group_by=node.group_by,
            schema=schema,
        )
