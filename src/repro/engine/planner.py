"""Gamma's query optimizer: access-path selection and operator placement.

Gamma "uses traditional relational techniques for query parsing,
optimization [SELI79], and code generation".  The shared compiler walk and
the physical IR live in :mod:`repro.engine.ir`; this module supplies the
conventions that make the output a *Gamma* plan:

* **access path** — clustered index whenever the predicate is on the
  clustered attribute; non-clustered index only when the estimated number
  of random data-page reads is cheaper than a full sequential scan (this
  is why the optimizer "is smart enough to choose a segment scan" for the
  10 % non-clustered selection);
* **single-site exact match** — an equality predicate on the partitioning
  attribute is sent to exactly one processor;
* **selection propagation** — a range predicate on one side's join
  attribute is propagated to the other side (joinAselB → joinselAselB);
* **join placement** — Local / Remote / Allnodes per the query's
  :class:`~repro.engine.plan.JoinMode`.
"""

from __future__ import annotations

from typing import Optional

from ..catalog import Catalog, Relation
from ..errors import PlanError
from ..hardware import GammaConfig
from .ir import (
    AggregateOp,
    Exchange,
    ExchangeKind,
    HashJoinBuildOp,
    HashJoinProbeOp,
    HostSinkOp,
    IRNode,
    PhysicalIR,
    Placement,
    PlanCompiler,
    ProjectOp,
    ScanOp,
    SortOp,
    SpillConfig,
    StoreOp,
    UpdateIR,
)
from .plan import (
    AccessPath,
    AppendTuple,
    ExactMatch,
    JoinMode,
    JoinNode,
    ModifyTuple,
    PlanNode,
    RangePredicate,
    ScanNode,
    TruePredicate,
)

from .skew import (
    SKEW_SAMPLE,
    SKEW_STRATEGIES,
    histogram_boundaries,
    hot_keys,
    virtual_map,
)

# The IR operator classes under their pre-refactor names: the physical
# node a Gamma plan's ``root`` exposes for a scan / join / aggregate /
# projection / sort is exactly the corresponding IR operator.
PhysicalScan = ScanOp
PhysicalJoin = HashJoinProbeOp
PhysicalAggregate = AggregateOp
PhysicalProject = ProjectOp
PhysicalSort = SortOp
PhysicalPlan = PhysicalIR
PhysicalNode = IRNode


class Planner(PlanCompiler):
    """Compiles logical :class:`~repro.engine.plan.Query` trees into
    Gamma-convention physical IR.

    ``skew_strategy`` selects the join redistribution: ``"hash"`` (the
    paper's plain split table), ``"range"`` (histogram-driven range
    splits), ``"vhash"`` (virtual-processor hashing: over-partition into
    V buckets and bin-pack the V buckets onto the join sites by sampled
    load), or ``"hot-broadcast"`` (fragment-replicate: detected hot keys
    are broadcast on the build side and round-robined on the probe side).
    Everything except ``"hash"`` samples the probe side's base relation
    at plan time, the same way :meth:`sort_boundaries` does.
    """

    def __init__(
        self,
        config: GammaConfig,
        catalog: Catalog,
        skew_strategy: str = "hash",
    ) -> None:
        super().__init__(config, catalog)
        if skew_strategy not in SKEW_STRATEGIES:
            raise PlanError(
                f"unknown skew_strategy {skew_strategy!r};"
                f" expected one of {SKEW_STRATEGIES}"
            )
        self.skew_strategy = skew_strategy

    # ------------------------------------------------------------------
    # scans
    # ------------------------------------------------------------------
    def selectivity(self, relation: Relation, predicate: object) -> float:
        """Selectivity estimate, preferring load-time catalog statistics
        over the uniform-over-cardinality fallback."""
        if isinstance(predicate, RangePredicate):
            stats = relation.stats_for(predicate.attr)
            if stats is not None:
                return stats.range_selectivity(predicate.low, predicate.high)
        if isinstance(predicate, ExactMatch):
            stats = relation.stats_for(predicate.attr)
            if stats is not None and stats.distinct_hint > 0:
                return 1.0 / stats.distinct_hint
        return predicate.selectivity(relation.num_records)

    def choose_path(self, relation: Relation, predicate: object) -> AccessPath:
        if isinstance(predicate, TruePredicate):
            return AccessPath.FILE_SCAN
        if isinstance(predicate, ExactMatch):
            if predicate.attr == relation.clustered_on:
                return AccessPath.CLUSTERED_EXACT
            if predicate.attr in relation.fragments[0].secondary:
                return AccessPath.NONCLUSTERED_EXACT
            return AccessPath.FILE_SCAN
        if isinstance(predicate, RangePredicate):
            if predicate.attr == relation.clustered_on:
                return AccessPath.CLUSTERED_INDEX
            if predicate.attr in relation.fragments[0].secondary:
                if self._nonclustered_wins(relation, predicate):
                    return AccessPath.NONCLUSTERED_INDEX
            return AccessPath.FILE_SCAN
        raise PlanError(f"unknown predicate {predicate!r}")

    def _nonclustered_wins(
        self, relation: Relation, predicate: RangePredicate
    ) -> bool:
        """Selinger-style I/O comparison: random fetches vs a full scan.

        Each qualifying tuple costs one random data-page read through a
        non-clustered index; a segment scan streams every page at the
        sequential rate.  The 1 % selection wins with the index, the 10 %
        selection loses — matching Table 1 and the paper's remark that "our
        optimizer is smart enough to choose a segment scan for this query".
        """
        disk = self.config.disk
        page = self.config.page_size
        n_sites = max(1, relation.n_sites)
        matches_per_site = (
            self.selectivity(relation, predicate)
            * relation.num_records / n_sites
        )
        pages_per_site = relation.num_pages / n_sites
        index_cost = matches_per_site * disk.random_access_time(page)
        scan_cost = pages_per_site * disk.sequential_access_time(page)
        return index_cost < scan_cost

    def choose_sites(
        self, relation: Relation, predicate: object, path: AccessPath
    ) -> list[int]:
        all_sites = list(range(relation.n_sites))
        part_attr = getattr(relation.partitioning, "attr", None)
        if isinstance(predicate, ExactMatch) and predicate.attr == part_attr:
            site = relation.partitioning.site_for_key(
                predicate.value, relation.n_sites
            )
            if site is not None:
                return [site]
        if (
            isinstance(predicate, RangePredicate)
            and predicate.attr == part_attr
        ):
            # Range declustering lets the scheduler activate only the
            # sites whose key range intersects the predicate.
            sites = relation.partitioning.sites_for_range(
                predicate.low, predicate.high, relation.n_sites
            )
            if sites is not None:
                return sites
        return all_sites

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------
    def rewrite_join(self, node: JoinNode) -> JoinNode:
        """Selection propagation across an equi-join.

        A range predicate on one side's join attribute implies the same
        range on the other side's join attribute.  This is the rewrite the
        paper describes: "Selection propagation by the Gamma optimizer
        reduces joinAselB to joinselAselB", which is why Gamma runs
        joinAselB *faster* than joinABprime while Teradata runs it slower.
        """

        def range_on(child: PlanNode, attr: str) -> Optional[RangePredicate]:
            if (
                isinstance(child, ScanNode)
                and isinstance(child.predicate, RangePredicate)
                and child.predicate.attr == attr
            ):
                return child.predicate
            return None

        def is_unfiltered_scan(child: PlanNode) -> bool:
            return isinstance(child, ScanNode) and isinstance(
                child.predicate, TruePredicate
            )

        build_pred = range_on(node.build, node.build_attr)
        probe_pred = range_on(node.probe, node.probe_attr)
        if build_pred is not None and is_unfiltered_scan(node.probe):
            assert isinstance(node.probe, ScanNode)
            new_probe = ScanNode(
                node.probe.relation,
                RangePredicate(node.probe_attr, build_pred.low, build_pred.high),
                node.probe.forced_path,
            )
            return JoinNode(node.build, new_probe, node.build_attr,
                            node.probe_attr, node.mode)
        if probe_pred is not None and is_unfiltered_scan(node.build):
            assert isinstance(node.build, ScanNode)
            new_build = ScanNode(
                node.build.relation,
                RangePredicate(node.build_attr, probe_pred.low, probe_pred.high),
                node.build.forced_path,
            )
            return JoinNode(new_build, node.probe, node.build_attr,
                            node.probe_attr, node.mode)
        return node

    def lower_join(
        self, node: JoinNode, build: IRNode, probe: IRNode
    ) -> IRNode:
        """The default partitioned hash join, with the skew-aware
        redistribution installed on both exchange edges when a non-hash
        strategy is selected (and its statistics are derivable)."""
        joined = super().lower_join(node, build, probe)
        if self.skew_strategy == "hash":
            return joined
        assert isinstance(joined, HashJoinProbeOp)
        exchanges = self._skew_exchanges(node, probe)
        if exchanges is not None:
            joined.build_input.exchange, joined.exchange = exchanges
        return joined

    def join_spill(self) -> Optional[SpillConfig]:
        """The spill strategy the machine config's ``hybrid_*`` knobs
        select, stamped on every compiled join."""
        return SpillConfig.from_config(self.config)

    def _join_fragments(self, mode: JoinMode) -> int:
        """How many fragments a join of this mode runs on (mirrors
        ``ExecutionContext.join_nodes``)."""
        if mode is JoinMode.LOCAL or not self.config.n_diskless:
            return self.config.n_disk_sites
        if mode is JoinMode.REMOTE:
            return self.config.n_diskless
        return self.config.n_disk_sites + self.config.n_diskless

    def _skew_exchanges(
        self, node: JoinNode, probe: IRNode
    ) -> Optional[tuple[Exchange, Exchange]]:
        """(build exchange, probe exchange) for the selected strategy.

        Returns None — keep the plain hash split — when the probe side
        has no sampleable base relation, when a fragment count of one
        makes redistribution moot, or when ``hot-broadcast`` detects no
        hot key (plain hashing is then already balanced).
        """
        import itertools

        n_frag = max(1, self._join_fragments(node.mode))
        if n_frag == 1:
            return None
        relation = self._base_relation_with(node.probe_attr, probe)
        if relation is None:
            return None
        pos = relation.schema.position(node.probe_attr)
        sample = [
            record[pos]
            for record in itertools.islice(
                relation.records(), SKEW_SAMPLE
            )
        ]
        if not sample:
            return None
        if self.skew_strategy == "range":
            boundaries = histogram_boundaries(sample, n_frag)
            if boundaries is None:
                return None
            return (
                Exchange(ExchangeKind.RANGE, attr=node.build_attr,
                         boundaries=boundaries),
                Exchange(ExchangeKind.RANGE, attr=node.probe_attr,
                         boundaries=boundaries),
            )
        if self.skew_strategy == "vhash":
            vmap = virtual_map(sample, n_frag)
            return (
                Exchange(ExchangeKind.VHASH, attr=node.build_attr,
                         virtual_map=vmap),
                Exchange(ExchangeKind.VHASH, attr=node.probe_attr,
                         virtual_map=vmap),
            )
        hot = hot_keys(sample, n_frag)
        if not hot:
            return None
        return (
            Exchange(ExchangeKind.HOT_BROADCAST, attr=node.build_attr,
                     hot_keys=hot),
            Exchange(ExchangeKind.HOT_SPRAY, attr=node.probe_attr,
                     hot_keys=hot),
        )

    # ------------------------------------------------------------------
    # sorts
    # ------------------------------------------------------------------
    def sort_boundaries(self, attr: str, child: IRNode) -> Optional[list]:
        """Range-slice boundaries from catalog statistics.

        The optimizer samples the base relation holding ``attr`` (the
        statistics a Selinger-style catalog keeps); without a base source
        for the attribute the sort degrades to one sorter node — always
        correct, just unparallel.
        """
        import itertools

        n_sorters = max(1, self.config.n_diskless or self.config.n_disk_sites)
        if n_sorters == 1:
            return None
        relation = self._base_relation_with(attr, child)
        if relation is None:
            return None
        pos = relation.schema.position(attr)
        sample = sorted(
            record[pos]
            for record in itertools.islice(relation.records(), 2000)
        )
        if len(sample) < n_sorters:
            return None
        return [
            sample[(len(sample) * i) // n_sorters]
            for i in range(1, n_sorters)
        ]

    def _base_relation_with(
        self, attr: str, node: IRNode
    ) -> Optional[Relation]:
        if isinstance(node, ScanOp):
            return node.relation if attr in node.relation.schema else None
        if isinstance(node, HashJoinProbeOp):
            return (
                self._base_relation_with(attr, node.build)
                or self._base_relation_with(attr, node.source)
            )
        if isinstance(node, (AggregateOp, ProjectOp, SortOp)):
            return self._base_relation_with(attr, node.source)
        return None

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def append_site(self, relation: Relation, request: AppendTuple) -> int:
        # Decide the home site exactly once (round-robin strategies
        # advance a cursor on every call).
        return relation.partitioning.site_of(request.record, relation.n_sites)

    def update_sites(self, relation: Relation, where: ExactMatch) -> list[int]:
        part_attr = getattr(relation.partitioning, "attr", None)
        if where.attr == part_attr:
            site = relation.partitioning.site_for_key(
                where.value, relation.n_sites
            )
            if site is not None:
                return [site]
        return list(range(relation.n_sites))

    def modify_relocates(
        self, relation: Relation, request: ModifyTuple
    ) -> bool:
        part_attr = getattr(relation.partitioning, "attr", None)
        return request.attr == part_attr or (
            request.attr == relation.clustered_on
        )


__all__ = [
    "AggregateOp",
    "Exchange",
    "ExchangeKind",
    "HashJoinBuildOp",
    "HashJoinProbeOp",
    "HostSinkOp",
    "IRNode",
    "PhysicalAggregate",
    "PhysicalIR",
    "PhysicalJoin",
    "PhysicalNode",
    "PhysicalPlan",
    "PhysicalProject",
    "PhysicalScan",
    "PhysicalSort",
    "Placement",
    "PlanCompiler",
    "Planner",
    "ProjectOp",
    "ScanOp",
    "SortOp",
    "SpillConfig",
    "StoreOp",
    "UpdateIR",
]
