"""Predicates, logical plan nodes and join placement modes.

Gamma compiles predicates "into machine language"; here they compile into
closures over tuple positions, so the per-tuple hot path does no name
lookups.  Plans are small trees of dataclass nodes; the planner
(:mod:`repro.engine.planner`) turns them into placed physical operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Optional, Union

from ..errors import PlanError
from ..storage import Schema

Predicate = Union["TruePredicate", "RangePredicate", "ExactMatch"]


@dataclass(frozen=True)
class TruePredicate:
    """Matches every tuple (a 100 % selection)."""

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        return lambda record: True

    def compile_batch(
        self, schema: Schema
    ) -> Callable[[list[tuple]], list[tuple]]:
        """Batch form of :meth:`compile`: the matching records of a page.

        Callers treat the result as read-only, so the 100 % selection can
        hand the input batch back without a copy.
        """
        return lambda records: records

    def selectivity(self, cardinality: int) -> float:
        return 1.0

    def describe(self) -> str:
        return "true"


@dataclass(frozen=True)
class RangePredicate:
    """``low <= attr <= high`` (inclusive, the Wisconsin range shape)."""

    attr: str
    low: Any
    high: Any

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        pos = schema.position(self.attr)
        low, high = self.low, self.high
        return lambda record: low <= record[pos] <= high

    def compile_batch(
        self, schema: Schema
    ) -> Callable[[list[tuple]], list[tuple]]:
        """Batch form of :meth:`compile`: one filter pass per page."""
        pos = schema.position(self.attr)
        low, high = self.low, self.high

        def batch(records: list[tuple]) -> list[tuple]:
            return [r for r in records if low <= r[pos] <= high]

        return batch

    def selectivity(self, cardinality: int) -> float:
        """Uniform-distribution estimate over a unique 0..n-1 attribute.

        This is exactly the statistic Gamma's Selinger-style optimizer has
        for the Wisconsin attributes.
        """
        if cardinality <= 0:
            return 0.0
        span = self.high - self.low + 1
        return max(0.0, min(1.0, span / cardinality))

    def describe(self) -> str:
        return f"{self.low} <= {self.attr} <= {self.high}"


@dataclass(frozen=True)
class ExactMatch:
    """``attr = value`` (single-tuple operations on unique attributes)."""

    attr: str
    value: Any

    def compile(self, schema: Schema) -> Callable[[tuple], bool]:
        pos = schema.position(self.attr)
        value = self.value
        return lambda record: record[pos] == value

    def compile_batch(
        self, schema: Schema
    ) -> Callable[[list[tuple]], list[tuple]]:
        """Batch form of :meth:`compile`: one filter pass per page."""
        pos = schema.position(self.attr)
        value = self.value

        def batch(records: list[tuple]) -> list[tuple]:
            return [r for r in records if r[pos] == value]

        return batch

    def selectivity(self, cardinality: int) -> float:
        return 1.0 / cardinality if cardinality else 0.0

    def describe(self) -> str:
        return f"{self.attr} = {self.value!r}"


class JoinMode(Enum):
    """Where the join operators run (Section 6 of the paper)."""

    LOCAL = "local"        # on the processors with disks
    REMOTE = "remote"      # on the diskless processors only
    ALLNODES = "allnodes"  # on both sets


class AccessPath(Enum):
    """Access method chosen by the optimizer for a selection."""

    FILE_SCAN = "file-scan"
    CLUSTERED_INDEX = "clustered-index"
    NONCLUSTERED_INDEX = "nonclustered-index"
    CLUSTERED_EXACT = "clustered-exact"
    NONCLUSTERED_EXACT = "nonclustered-exact"


# ---------------------------------------------------------------------------
# logical plan nodes
# ---------------------------------------------------------------------------


@dataclass
class ScanNode:
    """Select tuples of ``relation`` satisfying ``predicate``."""

    relation: str
    predicate: Predicate = field(default_factory=TruePredicate)
    forced_path: Optional[AccessPath] = None

    def children(self) -> list["PlanNode"]:
        return []


@dataclass
class JoinNode:
    """Equi-join; ``build`` is the (smaller) hashed side."""

    build: "PlanNode"
    probe: "PlanNode"
    build_attr: str
    probe_attr: str
    mode: JoinMode = JoinMode.REMOTE

    def children(self) -> list["PlanNode"]:
        return [self.build, self.probe]


@dataclass
class AggregateNode:
    """Scalar or grouped aggregate over the child stream."""

    child: "PlanNode"
    op: str  # count | sum | min | max | avg
    attr: Optional[str] = None
    group_by: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in {"count", "sum", "min", "max", "avg"}:
            raise PlanError(f"unknown aggregate op {self.op!r}")
        if self.op != "count" and self.attr is None:
            raise PlanError(f"aggregate {self.op!r} needs an attribute")

    def children(self) -> list["PlanNode"]:
        return [self.child]


@dataclass
class ProjectNode:
    """Project the child stream onto ``attrs``.

    With ``unique=True`` duplicates are eliminated — the projection
    operator Gamma runs on the diskless processors (Section 2 lists
    "join, projection, and aggregate operations" there): the stream is
    hash-partitioned on the projected attributes so each node can
    deduplicate its disjoint share locally.
    """

    child: "PlanNode"
    attrs: list[str]
    unique: bool = False

    def __post_init__(self) -> None:
        if not self.attrs:
            raise PlanError("projection needs at least one attribute")

    def children(self) -> list["PlanNode"]:
        return [self.child]


@dataclass
class SortNode:
    """Order the child stream by ``attr``.

    Gamma sorts in parallel by *range*-splitting the stream across the
    diskless processors (each takes a disjoint key slice, boundaries from
    catalog statistics), sorting its slice with WiSS's external sort, and
    emitting the slices in ascending slice order.
    """

    child: "PlanNode"
    attr: str
    descending: bool = False

    def children(self) -> list["PlanNode"]:
        return [self.child]


PlanNode = Union[ScanNode, JoinNode, AggregateNode, ProjectNode, SortNode]


@dataclass
class Query:
    """A complete request: a plan tree plus its destination.

    ``into`` names a result relation (Gamma's ``retrieve into``, stored
    round-robin across the disk sites); ``into=None`` streams result tuples
    back to the host.
    """

    root: PlanNode
    into: Optional[str] = None

    # -- convenience constructors ------------------------------------
    @staticmethod
    def select(
        relation: str,
        where: Predicate = TruePredicate(),
        into: Optional[str] = None,
        forced_path: Optional[AccessPath] = None,
        project: Optional[list[str]] = None,
        unique: bool = False,
        sort_by: Optional[str] = None,
        descending: bool = False,
    ) -> "Query":
        root: PlanNode = ScanNode(relation, where, forced_path)
        if project is not None:
            root = ProjectNode(root, project, unique=unique)
        if sort_by is not None:
            root = SortNode(root, sort_by, descending=descending)
        return Query(root, into)

    @staticmethod
    def join(
        build: PlanNode,
        probe: PlanNode,
        on: tuple[str, str],
        mode: JoinMode = JoinMode.REMOTE,
        into: Optional[str] = None,
    ) -> "Query":
        build_attr, probe_attr = on
        return Query(JoinNode(build, probe, build_attr, probe_attr, mode), into)

    @staticmethod
    def aggregate(
        relation: str,
        op: str,
        attr: Optional[str] = None,
        group_by: Optional[str] = None,
        where: Predicate = TruePredicate(),
        into: Optional[str] = None,
    ) -> "Query":
        return Query(
            AggregateNode(ScanNode(relation, where), op, attr, group_by), into
        )


# ---------------------------------------------------------------------------
# update requests (Table 3) — separate from the dataflow plan tree
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AppendTuple:
    """Append one tuple to a relation."""

    relation: str
    record: tuple


@dataclass(frozen=True)
class DeleteTuple:
    """Delete the single tuple matching ``where`` (located via an index
    when one exists)."""

    relation: str
    where: ExactMatch


@dataclass(frozen=True)
class ModifyTuple:
    """Set ``attr = value`` on the single tuple matching ``where``."""

    relation: str
    where: ExactMatch
    attr: str
    value: Any


UpdateRequest = Union[AppendTuple, DeleteTuple, ModifyTuple]
