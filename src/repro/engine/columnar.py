"""Batched columnar fast paths for the operator hot loops.

The engine's tuples are plain Python tuples, and at paper scales (tens of
sites, ~40-tuple pages) per-record Python loops are affordable.  Scaling
the simulator to hundreds or thousands of sites multiplies the tuple
traffic until those loops dominate wall-clock time, so the hot per-batch
kernels — split-table routing, partitioning-site assignment, bit-filter
tests — also exist here in columnar form: extract one attribute column
from a batch and push it through a vectorized numpy pipeline.

Two invariants make the fast paths safe:

* **Bit-identical results.**  Every vectorized kernel reproduces the
  scalar arithmetic exactly (``gamma_hash``'s Knuth mix in uint64 wraps
  identically to Python's masked bignum arithmetic; CPython's tuple hash
  is replicated lane-for-lane for the bit filters) and is only entered
  when that equivalence provably holds — int values inside the
  ``hash(v) == v`` range.  Everything else falls back to the scalar loop.
* **Unchanged cost model.**  These kernels change how fast the simulator
  *computes* a decision, never what the simulated machine is *charged*
  for it; golden timelines are unaffected.

numpy is optional: without it every entry point degrades to the scalar
loop (`array`/list arithmetic), so the engine has no hard dependency.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..catalog.partitioning import stable_hash

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except Exception:  # pragma: no cover - numpy is present in CI images
    _np = None

HAVE_NUMPY = _np is not None

#: Minimum batch size for the vectorized kernels.  Below this the numpy
#: call overhead (array construction + ufunc dispatch) exceeds the scalar
#: loop; measured crossover on CPython 3.11 sits around 24-48 elements.
NUMPY_THRESHOLD = 32

#: ``hash(v) == v`` for ints in [0, 2**61 - 1); outside that range CPython
#: reduces modulo the Mersenne prime and the uint64 pipeline would diverge.
_MERSENNE61 = (1 << 61) - 1


def _int_column(
    records: Sequence[tuple], pos: int
) -> Optional["Any"]:
    """Extract column ``pos`` as an int64 array, or None when unsafe.

    Returns None unless every value is a genuine ``int`` (``bool`` and
    ``float`` would silently coerce) inside the ``hash(v) == v`` range.
    """
    column = [record[pos] for record in records]
    for value in column:
        if type(value) is not int:
            return None
    try:
        arr = _np.fromiter(column, dtype=_np.int64, count=len(column))
    except OverflowError:
        return None
    if int(arr.min()) < 0 or int(arr.max()) >= _MERSENNE61:
        return None
    return arr


def gamma_hash_array(arr: "Any", n_buckets: int) -> "Any":
    """Vectorized :func:`repro.catalog.partitioning.gamma_hash`.

    ``arr`` must hold values with ``hash(v) == v`` (the caller gates
    this); the Knuth multiplicative mix then runs entirely in uint64,
    where wrapping products agree with Python's arbitrary-precision
    arithmetic masked to 32 bits.
    """
    h = (arr.astype(_np.uint64) * _np.uint64(2654435761)) & _np.uint64(
        0xFFFFFFFF
    )
    h ^= h >> _np.uint64(17)
    h = (h * _np.uint64(0x9E3779B1)) & _np.uint64(0xFFFFFFFF)
    h ^= h >> _np.uint64(13)
    return h % _np.uint64(n_buckets)


def hash_route_batch(
    records: Sequence[tuple], pos: int, n: int
) -> list[int]:
    """Destination indices for a batch: ``gamma_hash(record[pos], n)``.

    The workhorse behind hash split tables and load-time declustering.
    Large all-int batches go through :func:`gamma_hash_array`; everything
    else through a scalar loop with ``stable_hash``'s int fast path.
    """
    if _np is not None and len(records) >= NUMPY_THRESHOLD:
        arr = _int_column(records, pos)
        if arr is not None:
            return gamma_hash_array(arr, n).tolist()
    out: list[int] = []
    append = out.append
    for record in records:
        value = record[pos]
        h = (
            (hash(value) if type(value) is int else stable_hash(value))
            * 2654435761
        ) & 0xFFFFFFFF
        h ^= h >> 17
        h = (h * 0x9E3779B1) & 0xFFFFFFFF
        h ^= h >> 13
        append(h % n)
    return out


# ---------------------------------------------------------------------------
# CPython tuple-hash replication (bit-filter probes hash ``(seed, value)``)
# ---------------------------------------------------------------------------

_XX_P1 = 11400714785074694791
_XX_P2 = 14029467366897019727
_XX_P5 = 2870177450012600261
_U64 = 0xFFFFFFFFFFFFFFFF


def _tuple_hash_pair_array(seed: int, lanes: "Any") -> "Any":
    """Vectorized ``hash((seed, v))`` for int64 ``lanes`` with
    ``hash(v) == v``.

    Replicates CPython's xxHash-style tuple hash (Objects/tupleobject.c)
    lane for lane in uint64, then reinterprets the accumulator as the
    signed ``Py_hash_t`` CPython returns (with the -1 → -2 fixup).
    """
    p1 = _np.uint64(_XX_P1)
    p2 = _np.uint64(_XX_P2)
    # Lane 1: the seed (a plain scalar) — folded in Python ints masked to
    # 64 bits, so the intended wraparound never trips numpy's scalar
    # overflow warning.  Array ops below wrap silently, as specified.
    acc0 = (_XX_P5 + ((hash(seed) * _XX_P2) & _U64)) & _U64
    acc0 = ((acc0 << 31) | (acc0 >> 33)) & _U64
    acc0 = (acc0 * _XX_P1) & _U64
    # Lane 2: the values.
    with _np.errstate(over="ignore"):
        acc = _np.uint64(acc0) + lanes.astype(_np.uint64) * p2
    acc = (acc << _np.uint64(31)) | (acc >> _np.uint64(33))
    acc = acc * p1
    acc = acc + _np.uint64((2 ^ (_XX_P5 ^ 3527539)) & _U64)
    signed = acc.astype(_np.int64)
    # CPython never returns -1 from a hash (it signals an error).
    signed[signed == -1] = -2
    return signed


class BatchedBitProbe:
    """Vectorized ``BitVectorFilter.might_contain`` over a value batch.

    Built over a filter's bit array; ``test(records, pos)`` returns a
    boolean list matching the scalar probe exactly, or ``None`` when the
    batch is not eligible for the vector path (caller falls back).

    The numpy view aliases the *live* ``bytearray`` (zero-copy), so bits
    set or unioned into the filter after construction are visible — the
    probe can be built once per split table even though filters keep
    mutating until the build phase drains.  The aliased buffer pins the
    bytearray's size; ``BitVectorFilter`` never resizes ``_bits``.
    """

    __slots__ = ("n_bits", "seeds", "_bits_view")

    def __init__(self, n_bits: int, seeds: Sequence[int], bits: bytearray):
        self.n_bits = n_bits
        self.seeds = tuple(seeds)
        self._bits_view = (
            _np.frombuffer(bits, dtype=_np.uint8)
            if _np is not None else None
        )

    def test(
        self, records: Sequence[tuple], pos: int
    ) -> Optional[list[bool]]:
        if self._bits_view is None or len(records) < NUMPY_THRESHOLD:
            return None
        arr = _int_column(records, pos)
        if arr is None:
            return None
        ok = _np.ones(len(records), dtype=bool)
        n_bits = _np.int64(self.n_bits)
        for seed in self.seeds:
            h = _tuple_hash_pair_array(seed, arr)
            h = h ^ (h >> _np.int64(16))
            bit = (h & _np.int64(0x7FFFFFFF)) % n_bits
            ok &= (
                self._bits_view[bit >> _np.int64(3)]
                >> (bit & _np.int64(7)).astype(_np.uint8)
            ) & _np.uint8(1) != 0
        return ok.tolist()


# ---------------------------------------------------------------------------
# Array-of-column tuple pools
# ---------------------------------------------------------------------------


class ColumnBatch:
    """A batch of tuples stored column-wise.

    Integer columns become int64 numpy arrays (plain lists without
    numpy); other columns stay lists.  The batch round-trips losslessly:
    ``ColumnBatch.from_records(rs).to_records() == list(rs)``.

    This is the storage shape the vectorized kernels want — extracting a
    column is O(1) instead of a per-record gather — and what load-time
    partitioning and wide-packet configurations batch tuples into.
    """

    __slots__ = ("columns", "count", "_int_cols")

    def __init__(
        self, columns: list[Any], count: int, int_cols: tuple[bool, ...]
    ) -> None:
        self.columns = columns
        self.count = count
        self._int_cols = int_cols

    @classmethod
    def from_records(cls, records: Sequence[tuple]) -> "ColumnBatch":
        count = len(records)
        if count == 0:
            return cls([], 0, ())
        width = len(records[0])
        columns: list[Any] = []
        int_flags: list[bool] = []
        for pos in range(width):
            column = [record[pos] for record in records]
            is_int = all(type(v) is int for v in column)
            if is_int and _np is not None and count >= NUMPY_THRESHOLD:
                try:
                    column = _np.fromiter(
                        column, dtype=_np.int64, count=count
                    )
                except OverflowError:
                    is_int = False
            columns.append(column)
            int_flags.append(is_int)
        return cls(columns, count, tuple(int_flags))

    def column(self, pos: int) -> Any:
        return self.columns[pos]

    def to_records(self) -> list[tuple]:
        if self.count == 0:
            return []
        cols = [
            c.tolist() if _np is not None and isinstance(c, _np.ndarray)
            else c
            for c in self.columns
        ]
        return list(zip(*cols))

    def take(self, indices: Sequence[int]) -> "ColumnBatch":
        """A new batch holding the given row positions, in order."""
        if _np is not None:
            idx = _np.asarray(indices, dtype=_np.int64)
            columns = [
                c[idx] if isinstance(c, _np.ndarray)
                else [c[i] for i in indices]
                for c in self.columns
            ]
        else:
            columns = [[c[i] for i in indices] for c in self.columns]
        return ColumnBatch(columns, len(indices), self._int_cols)

    @classmethod
    def concat(cls, batches: Sequence["ColumnBatch"]) -> "ColumnBatch":
        batches = [b for b in batches if b.count]
        if not batches:
            return cls([], 0, ())
        first = batches[0]
        if len(batches) == 1:
            return first
        columns: list[Any] = []
        for pos in range(len(first.columns)):
            parts = [b.columns[pos] for b in batches]
            if _np is not None and all(
                isinstance(p, _np.ndarray) for p in parts
            ):
                columns.append(_np.concatenate(parts))
            else:
                merged: list[Any] = []
                for p in parts:
                    merged.extend(
                        p.tolist()
                        if _np is not None and isinstance(p, _np.ndarray)
                        else p
                    )
                columns.append(merged)
        count = sum(b.count for b in batches)
        return cls(columns, count, first._int_cols)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<ColumnBatch {self.count}x{len(self.columns)}>"


def partition_batch(
    records: Sequence[tuple], pos: int, n_sites: int
) -> list[list[tuple]]:
    """Bucket ``records`` by ``gamma_hash(record[pos], n_sites)``.

    The load-time declustering kernel: one vectorized hash pass and one
    scatter, instead of a per-record ``site_of`` call.  Identical bucket
    assignment to the scalar path by :func:`hash_route_batch`'s contract.
    """
    buckets: list[list[tuple]] = [[] for _ in range(n_sites)]
    sites = hash_route_batch(records, pos, n_sites)
    for record, site in zip(records, sites):
        buckets[site].append(record)
    return buckets
