"""The backend-agnostic physical dataflow IR.

The paper's central comparison — Gamma's split tables + token ring against
Teradata's spool files + Y-net — is a comparison of two *dataflow
machineries* executing the same queries.  This module makes that structure
explicit: a logical :class:`~repro.engine.plan.Query` is compiled into a
DAG of physical operator nodes (:class:`ScanOp`, :class:`ProjectOp`,
:class:`HashJoinBuildOp`/:class:`HashJoinProbeOp`, :class:`SortMergeJoinOp`,
:class:`AggregateOp`, :class:`SortOp`, :class:`StoreOp`,
:class:`HostSinkOp`) connected by explicit :class:`Exchange` edges that say
how tuples are redistributed between operator fragments (hash-split,
range-split, round-robin, broadcast, merge) and a :class:`Placement`
saying where each fragment runs.

Backends never see logical plan nodes: the Gamma driver
(:mod:`repro.engine.driver`) lowers Exchange edges to split tables and
ports, while the Teradata driver (:mod:`repro.teradata.executor`) lowers
the same edges to AMP-local spool redistributions over the Y-net.  The
shared :class:`PlanCompiler` walk lives here; each backend supplies its
conventions (access-path choice, join algorithm, operator placement) by
overriding the hook methods.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional, Union

from ..errors import PlanError
from ..storage import Schema, int_attr
from .plan import (
    AccessPath,
    AggregateNode,
    AppendTuple,
    ExactMatch,
    JoinMode,
    JoinNode,
    ModifyTuple,
    PlanNode,
    ProjectNode,
    Query,
    ScanNode,
    SortNode,
    UpdateRequest,
)

# ---------------------------------------------------------------------------
# exchange edges and placement
# ---------------------------------------------------------------------------


class ExchangeKind(Enum):
    """How an operator's output stream reaches its consumer's fragments."""

    HASH = "hash"          #: hash-split on ``attr`` (split table / Y-net hash)
    RANGE = "range"        #: range-split on ``attr`` at ``boundaries``
    RECORD_HASH = "record-hash"  #: hash of the projected ``positions``
    ROUND_ROBIN = "rr"     #: even round-robin spray
    BROADCAST = "broadcast"  #: replicate to every consumer fragment
    MERGE = "merge"        #: all producers feed one consumer (merge-to-host)
    LOCAL = "local"        #: no redistribution: producer and consumer are
    #: co-partitioned (Teradata's primary-key join shortcut)
    # Skew-aware redistributions.  A plain hash split collapses under hot
    # keys (a handful of attribute values carry most of the stream and
    # all land on one consumer); these three kinds carry the optimizer's
    # histogram knowledge down to the drivers.
    VHASH = "vhash"        #: virtual-processor hash: over-partition into
    #: ``len(virtual_map)`` virtual buckets, then map each to a consumer
    HOT_BROADCAST = "hot-broadcast"  #: fragment-replicate, build side:
    #: tuples with a ``hot_keys`` value go to *every* consumer
    HOT_SPRAY = "hot-spray"  #: fragment-replicate, probe side: tuples
    #: with a ``hot_keys`` value are round-robined, the rest hash-split


@dataclass(frozen=True)
class Exchange:
    """One redistribution edge between two physical operators."""

    kind: ExchangeKind
    attr: Optional[str] = None
    boundaries: Optional[list] = None    # RANGE: n-1 split points
    positions: Optional[list[int]] = None  # RECORD_HASH: projected columns
    #: VHASH: virtual bucket -> consumer index, length = V (> consumers).
    virtual_map: Optional[tuple[int, ...]] = None
    #: HOT_BROADCAST / HOT_SPRAY: the attribute values detected as hot.
    hot_keys: Optional[frozenset] = None

    def describe(self) -> str:
        if self.kind is ExchangeKind.HASH:
            return f"hash({self.attr})"
        if self.kind is ExchangeKind.RANGE:
            width = len(self.boundaries or []) + 1
            return f"range({self.attr} x{width})"
        if self.kind is ExchangeKind.RECORD_HASH:
            return f"record-hash({self.positions})"
        if self.kind is ExchangeKind.VHASH:
            vmap = self.virtual_map or ()
            width = (max(vmap) + 1) if vmap else 0
            return f"vhash({self.attr} {len(vmap)}->{width})"
        if self.kind in (ExchangeKind.HOT_BROADCAST, ExchangeKind.HOT_SPRAY):
            return f"{self.kind.value}({self.attr} {len(self.hot_keys or ())} hot)"
        return self.kind.value


@dataclass(frozen=True)
class Placement:
    """Which processors run an operator's fragments.

    ``role`` is symbolic — the driver resolves it against its machine
    (``disk-sites``, ``diskless``, ``join-sites``, ``amps``, ``host``);
    ``sites`` pins an explicit fragment list when the compiler can prune
    (single-site exact match, range-declustered scans); ``mode`` carries
    the Gamma join placement (Local / Remote / Allnodes).
    """

    role: str
    sites: Optional[tuple[int, ...]] = None
    mode: Optional[JoinMode] = None

    def describe(self) -> str:
        where = self.role if self.sites is None else f"{len(self.sites)} sites"
        return where if self.mode is None else f"{where}:{self.mode.value}"


# ---------------------------------------------------------------------------
# operator nodes
# ---------------------------------------------------------------------------


@dataclass
class ScanOp:
    """A placed selection: which fragments, which access method."""

    relation: Any
    predicate: object
    path: AccessPath
    sites: list[int]
    schema: Schema
    estimated_matches: float
    op_id: str = "scan"
    placement: Placement = field(default=Placement("disk-sites"))

    @property
    def estimated_rows(self) -> float:
        return self.estimated_matches

    def describe(self) -> str:
        return (
            f"scan({self.relation.name}, {self.path.value},"
            f" sites={len(self.sites)})"
        )


@dataclass
class FilterOp:
    """A standalone predicate over a stream.

    Both current backends fuse predicates into their scans (Gamma compiles
    them "into machine language"; the AMPs evaluate them while scanning),
    so today's compilers never emit this node — it exists so a backend
    without predicate pushdown can still express its plans in the IR.
    """

    source: "IRNode"
    exchange: Exchange
    predicate: object
    schema: Schema
    op_id: str = "filter"
    placement: Placement = field(default=Placement("disk-sites"))
    estimated_rows: float = 0.0

    def describe(self) -> str:
        return f"filter({self.source.describe()})"


@dataclass
class ProjectOp:
    """A placed projection (streaming, or hash-partitioned dedup)."""

    source: "IRNode"
    exchange: Exchange
    positions: list[int]
    unique: bool
    schema: Schema
    op_id: str = "project"
    placement: Placement = field(default=Placement("diskless"))
    estimated_rows: float = 0.0

    # Backwards-compatible field name from the pre-IR planner.
    @property
    def child(self) -> "IRNode":
        return self.source

    def describe(self) -> str:
        kind = "unique" if self.unique else "stream"
        return f"project[{kind}]({self.source.describe()})"


@dataclass
class HashJoinBuildOp:
    """The building half of a hash join: consumes the hashed build stream."""

    source: "IRNode"
    exchange: Exchange
    attr: str
    schema: Schema
    op_id: str = "join.build"

    @property
    def estimated_rows(self) -> float:
        return self.source.estimated_rows

    def describe(self) -> str:
        return self.source.describe()


@dataclass(frozen=True)
class SpillConfig:
    """Hybrid-join spill strategy carried on the physical plan.

    The planner derives one from the machine config's ``hybrid_*`` knobs
    (:meth:`PlanCompiler.join_spill`); carrying it on the IR node lets a
    backend or a test override the strategy per plan.

    Attributes:
        policy: ``static`` | ``demote`` | ``dynamic`` (see
            ``GammaConfig.hybrid_spill_policy``).
        partitions: Forced spool-partition count; 0 = plan from the
            optimizer estimate.
        max_recursion: Depth bound for recursive re-partitioning
            (``dynamic`` policy only).
        estimate_factor: Multiplier injected into the build-side
            cardinality estimate (the A4 estimate-error knob).
    """

    policy: str = "static"
    partitions: int = 0
    max_recursion: int = 3
    estimate_factor: float = 1.0

    @classmethod
    def from_config(cls, config: Any) -> "SpillConfig":
        """The strategy a machine config's ``hybrid_*`` knobs describe
        (defaults for configs without them, e.g. Teradata's)."""
        return cls(
            policy=getattr(config, "hybrid_spill_policy", "static"),
            partitions=getattr(config, "hybrid_partitions", 0),
            max_recursion=getattr(config, "hybrid_max_recursion", 3),
            estimate_factor=getattr(config, "hybrid_estimate_factor", 1.0),
        )


@dataclass
class HashJoinProbeOp:
    """The probing half of a hash join; owns its build side.

    Keeping build and probe as one ownership pair mirrors how both the
    scheduler and the paper treat a join: "a join is logically two
    operators" activated together on the same set of processors.
    """

    build_input: HashJoinBuildOp
    source: "IRNode"
    exchange: Exchange
    attr: str
    mode: JoinMode
    schema: Schema
    op_id: str = "join"
    placement: Placement = field(default=Placement("join-sites"))
    spill: Optional[SpillConfig] = None

    # Accessors under the pre-IR PhysicalJoin names: ``build``/``probe``
    # are the operator subtrees feeding the two exchange edges.
    @property
    def build(self) -> "IRNode":
        return self.build_input.source

    @property
    def probe(self) -> "IRNode":
        return self.source

    @property
    def build_attr(self) -> str:
        return self.build_input.attr

    @property
    def probe_attr(self) -> str:
        return self.attr

    @property
    def estimated_rows(self) -> float:
        return min(
            self.build_input.estimated_rows, self.source.estimated_rows
        )

    def describe(self) -> str:
        return (
            f"join[{self.mode.value}]({self.build_input.describe()},"
            f" {self.source.describe()})"
        )


@dataclass
class SortMergeJoinOp:
    """A sort-merge join over two redistributed (or co-located) streams."""

    left: "IRNode"
    right: "IRNode"
    left_exchange: Exchange
    right_exchange: Exchange
    left_attr: str
    right_attr: str
    mode: JoinMode
    schema: Schema
    op_id: str = "smj"
    placement: Placement = field(default=Placement("amps"))

    @property
    def estimated_rows(self) -> float:
        return min(self.left.estimated_rows, self.right.estimated_rows)

    def describe(self) -> str:
        return (
            f"sort-merge[{self.left_attr}]({self.left.describe()},"
            f" {self.right.describe()})"
        )


@dataclass
class AggregateOp:
    """One aggregation stage.

    ``stage`` distinguishes the dataflow shapes: a ``grouped`` aggregate is
    one stage fed by a hash exchange on the grouping attribute; a scalar
    aggregate is two stages — every fragment folds a ``partial``
    accumulator, and a single ``combine`` fragment merges them (the
    combine's ``source`` is the partial stage).
    """

    source: "IRNode"
    exchange: Exchange
    op: str
    attr: Optional[str]
    group_by: Optional[str]
    stage: str  # "grouped" | "partial" | "combine"
    schema: Schema
    op_id: str = "agg"
    placement: Placement = field(default=Placement("diskless"))
    estimated_rows: float = 0.0

    @property
    def child(self) -> "IRNode":
        """The stream being aggregated (skips the partial stage)."""
        if self.stage == "combine":
            assert isinstance(self.source, AggregateOp)
            return self.source.source
        return self.source

    def describe(self) -> str:
        if self.stage == "partial":
            return f"agg-partial[{self.op}]({self.source.describe()})"
        grouping = f" by {self.group_by}" if self.group_by else ""
        return f"agg[{self.op}{grouping}]({self.child.describe()})"


@dataclass
class SortOp:
    """A placed parallel sort: range slices + ordered emission chain."""

    source: "IRNode"
    exchange: Exchange  # RANGE with boundaries, or MERGE (single sorter)
    attr: str
    key_pos: int
    descending: bool
    schema: Schema
    op_id: str = "sort"
    placement: Placement = field(default=Placement("diskless"))
    estimated_rows: float = 0.0

    @property
    def child(self) -> "IRNode":
        return self.source

    @property
    def boundaries(self) -> Optional[list]:
        return self.exchange.boundaries

    def describe(self) -> str:
        direction = "desc" if self.descending else "asc"
        bounds = self.exchange.boundaries
        width = (len(bounds) + 1) if bounds is not None else 1
        return (
            f"sort[{self.attr} {direction} x{width}]"
            f"({self.source.describe()})"
        )


@dataclass
class StoreOp:
    """Materialise the result stream as a new declustered relation."""

    source: "IRNode"
    exchange: Exchange
    into: str
    schema: Schema
    op_id: str = "store"
    placement: Placement = field(default=Placement("disk-sites"))
    estimated_rows: float = 0.0

    def describe(self) -> str:
        return f"store[{self.into}]({self.source.describe()})"


@dataclass
class HostSinkOp:
    """Merge the result stream back to the host."""

    source: "IRNode"
    exchange: Exchange
    schema: Schema
    op_id: str = "sink"
    placement: Placement = field(default=Placement("host"))
    estimated_rows: float = 0.0

    def describe(self) -> str:
        return f"host-sink({self.source.describe()})"


IRNode = Union[
    ScanOp, FilterOp, ProjectOp, HashJoinBuildOp, HashJoinProbeOp,
    SortMergeJoinOp, AggregateOp, SortOp, StoreOp, HostSinkOp,
]


@dataclass
class PhysicalIR:
    """The executable artifact: a sink-rooted operator DAG.

    ``root`` exposes the operator tree *below* the sink — the shape the
    optimizer tests and ``description`` strings are written against.
    """

    sink: IRNode
    into: Optional[str]
    schema: Schema
    description: str = field(default="")

    @property
    def root(self) -> IRNode:
        return self.sink.source  # type: ignore[union-attr]

    def describe(self) -> str:
        return self.sink.describe()


def ir_op_ids(ir: Any) -> set[str]:
    """Every operator id of one compiled plan (PhysicalIR or UpdateIR).

    Concurrent entry points use this to filter a shared profiler's spans
    down to the nodes one request owns.
    """
    sink = getattr(ir, "sink", None)
    if sink is None:
        return {ir.op_id}
    ids: set[str] = set()
    stack: list[Any] = [sink]
    while stack:
        node = stack.pop()
        ids.add(node.op_id)
        for attr in ("build_input", "source", "left", "right"):
            child = getattr(node, attr, None)
            if child is not None and hasattr(child, "op_id"):
                stack.append(child)
    return ids


@dataclass
class UpdateIR:
    """A compiled single-tuple update (Table 3 operations).

    The compiler resolves everything decidable before execution: the
    target sites, the sites to lock (a key-attribute modify can relocate
    its tuple anywhere, so it locks the whole relation), whether the
    modify relocates, and — crucially — the home site of an append.
    Round-robin partitioning advances a cursor on every call, so the
    append site must be decided exactly once, here.
    """

    request: UpdateRequest
    relation: Any
    sites: list[int]
    lock_sites: list[int]
    relocate: bool = False
    append_site: Optional[int] = None
    op_id: str = "update"

    @property
    def description(self) -> str:
        return type(self.request).__name__


# ---------------------------------------------------------------------------
# the shared compiler
# ---------------------------------------------------------------------------


class PlanCompiler:
    """Compiles logical plans into the physical IR.

    The walk, the operator DAG shapes, and the cardinality bookkeeping are
    shared; a backend subclass supplies its conventions through the hook
    methods (``choose_path``/``choose_sites``/``selectivity`` for scans,
    ``rewrite_join``/``lower_join`` for join strategy, the ``*_placement``
    hooks for operator siting).
    """

    def __init__(self, config: Any, catalog: Any) -> None:
        self.config = config
        self.catalog = catalog
        self._op_seq = itertools.count()

    # -- entry points ---------------------------------------------------
    def plan(self, query: Query) -> PhysicalIR:
        self._op_seq = itertools.count()
        root = self.compile_node(query.root)
        sink = self.lower_sink(root, query.into)
        return PhysicalIR(
            sink=sink,
            into=query.into,
            schema=root.schema,
            description=root.describe(),
        )

    # ``compile`` reads better at call sites that never saw the old API.
    compile = plan

    def compile_update(self, request: UpdateRequest) -> UpdateIR:
        relation = self.catalog.lookup(request.relation)
        if isinstance(request, AppendTuple):
            site = self.append_site(relation, request)
            return UpdateIR(
                request, relation, sites=[site], lock_sites=[site],
                append_site=site, op_id=self.next_id("append"),
            )
        if isinstance(request, ModifyTuple):
            relocate = self.modify_relocates(relation, request)
            sites = self.update_sites(relation, request.where)
            lock_sites = (
                list(range(relation.n_sites)) if relocate else sites
            )
            return UpdateIR(
                request, relation, sites=sites, lock_sites=lock_sites,
                relocate=relocate, op_id=self.next_id("modify"),
            )
        sites = self.update_sites(relation, request.where)
        return UpdateIR(
            request, relation, sites=sites, lock_sites=sites,
            op_id=self.next_id("delete"),
        )

    #: Prepended to every generated operator id.  Concurrent entry points
    #: set a per-request prefix (``"q3."``) so one shared profiler can
    #: attribute spans to the request that owns them; single-query plans
    #: keep the bare historical ids ("scan0", "join2", ...).
    id_prefix: str = ""

    def next_id(self, kind: str) -> str:
        return f"{self.id_prefix}{kind}{next(self._op_seq)}"

    # -- the generic walk ----------------------------------------------
    def compile_node(self, node: PlanNode) -> IRNode:
        if isinstance(node, ScanNode):
            return self.lower_scan(node)
        if isinstance(node, JoinNode):
            return self._compile_join(node)
        if isinstance(node, AggregateNode):
            return self._compile_aggregate(node)
        if isinstance(node, ProjectNode):
            return self._compile_project(node)
        if isinstance(node, SortNode):
            return self._compile_sort(node)
        raise PlanError(f"unknown plan node {node!r}")

    def lower_scan(self, node: ScanNode) -> ScanOp:
        relation = self.catalog.lookup(node.relation)
        predicate = node.predicate
        est = self.selectivity(relation, predicate) * relation.num_records
        path = node.forced_path or self.choose_path(relation, predicate)
        sites = self.choose_sites(relation, predicate, path)
        return ScanOp(
            relation=relation,
            predicate=predicate,
            path=path,
            sites=sites,
            schema=relation.schema,
            estimated_matches=est,
            op_id=self.next_id("scan"),
            placement=self.scan_placement(sites),
        )

    def _compile_join(self, node: JoinNode) -> IRNode:
        node = self.rewrite_join(node)
        build = self.compile_node(node.build)
        probe = self.compile_node(node.probe)
        if node.build_attr not in build.schema:
            raise PlanError(
                f"build attribute {node.build_attr!r} not in build schema"
            )
        if node.probe_attr not in probe.schema:
            raise PlanError(
                f"probe attribute {node.probe_attr!r} not in probe schema"
            )
        return self.lower_join(node, build, probe)

    def _compile_aggregate(self, node: AggregateNode) -> IRNode:
        child = self.compile_node(node.child)
        if node.attr is not None and node.attr not in child.schema:
            raise PlanError(f"aggregate attribute {node.attr!r} unknown")
        if node.group_by is not None and node.group_by not in child.schema:
            raise PlanError(f"group-by attribute {node.group_by!r} unknown")
        return self.lower_aggregate(node, child)

    def _compile_project(self, node: ProjectNode) -> IRNode:
        child = self.compile_node(node.child)
        positions = [child.schema.position(a) for a in node.attrs]
        return self.lower_project(node, child, positions)

    def _compile_sort(self, node: SortNode) -> IRNode:
        child = self.compile_node(node.child)
        key_pos = child.schema.position(node.attr)
        return self.lower_sort(node, child, key_pos)

    # -- shared lowerings ----------------------------------------------
    def lower_join(
        self, node: JoinNode, build: IRNode, probe: IRNode
    ) -> IRNode:
        """Default strategy: a partitioned hash join — both streams are
        hash-split on their join attribute across the join sites."""
        build_op = HashJoinBuildOp(
            source=build,
            exchange=Exchange(ExchangeKind.HASH, attr=node.build_attr),
            attr=node.build_attr,
            schema=build.schema,
            op_id=self.next_id("join.build"),
        )
        return HashJoinProbeOp(
            build_input=build_op,
            source=probe,
            exchange=Exchange(ExchangeKind.HASH, attr=node.probe_attr),
            attr=node.probe_attr,
            mode=node.mode,
            schema=build.schema.concat(probe.schema),
            op_id=self.next_id("join"),
            placement=self.join_placement(node.mode),
            spill=self.join_spill(),
        )

    def lower_aggregate(self, node: AggregateNode, child: IRNode) -> IRNode:
        if node.group_by is not None:
            schema = Schema([int_attr(node.group_by), int_attr(node.op)])
            return AggregateOp(
                source=child,
                exchange=Exchange(ExchangeKind.HASH, attr=node.group_by),
                op=node.op, attr=node.attr, group_by=node.group_by,
                stage="grouped", schema=schema,
                op_id=self.next_id("agg"),
                placement=self.aggregate_placement(),
                estimated_rows=child.estimated_rows,
            )
        # Scalar: every fragment folds a four-field accumulator
        # (count / sum / min / max), one combiner merges them.
        partial_schema = Schema(
            [int_attr(n) for n in ("count", "sum", "min", "max")]
        )
        partial = AggregateOp(
            source=child,
            exchange=Exchange(ExchangeKind.ROUND_ROBIN),
            op=node.op, attr=node.attr, group_by=None,
            stage="partial", schema=partial_schema,
            op_id=self.next_id("agg.part"),
            placement=self.aggregate_placement(),
            estimated_rows=child.estimated_rows,
        )
        return AggregateOp(
            source=partial,
            exchange=Exchange(ExchangeKind.MERGE),
            op=node.op, attr=node.attr, group_by=None,
            stage="combine", schema=Schema([int_attr(node.op)]),
            op_id=self.next_id("agg"),
            placement=self.aggregate_placement(),
            estimated_rows=child.estimated_rows,
        )

    def lower_project(
        self, node: ProjectNode, child: IRNode, positions: list[int]
    ) -> IRNode:
        if node.unique:
            exchange = Exchange(
                ExchangeKind.RECORD_HASH, positions=list(positions)
            )
        else:
            exchange = Exchange(ExchangeKind.ROUND_ROBIN)
        return ProjectOp(
            source=child,
            exchange=exchange,
            positions=positions,
            unique=node.unique,
            schema=child.schema.project(node.attrs),
            op_id=self.next_id("project"),
            placement=self.project_placement(),
        )

    def lower_sort(
        self, node: SortNode, child: IRNode, key_pos: int
    ) -> IRNode:
        boundaries = self.sort_boundaries(node.attr, child)
        if boundaries is None:
            exchange = Exchange(ExchangeKind.MERGE, attr=node.attr)
        else:
            exchange = Exchange(
                ExchangeKind.RANGE, attr=node.attr, boundaries=boundaries
            )
        return SortOp(
            source=child,
            exchange=exchange,
            attr=node.attr,
            key_pos=key_pos,
            descending=node.descending,
            schema=child.schema,
            op_id=self.next_id("sort"),
            placement=self.sort_placement(),
        )

    def lower_sink(self, root: IRNode, into: Optional[str]) -> IRNode:
        if into is not None:
            return StoreOp(
                source=root,
                exchange=Exchange(ExchangeKind.ROUND_ROBIN),
                into=into,
                schema=root.schema,
                op_id=self.next_id("store"),
                placement=Placement("disk-sites"),
            )
        return HostSinkOp(
            source=root,
            exchange=Exchange(ExchangeKind.MERGE),
            schema=root.schema,
            op_id=self.next_id("sink"),
            placement=Placement("host"),
        )

    # -- backend hooks --------------------------------------------------
    def selectivity(self, relation: Any, predicate: Any) -> float:
        """Fraction of tuples matching ``predicate`` (uniform fallback)."""
        return predicate.selectivity(relation.num_records)

    def choose_path(self, relation: Any, predicate: Any) -> AccessPath:
        raise NotImplementedError

    def choose_sites(
        self, relation: Any, predicate: Any, path: AccessPath
    ) -> list[int]:
        raise NotImplementedError

    def rewrite_join(self, node: JoinNode) -> JoinNode:
        """Logical rewrite hook (Gamma's selection propagation)."""
        return node

    def sort_boundaries(self, attr: str, child: IRNode) -> Optional[list]:
        """Range-split points for a parallel sort; None = single sorter."""
        return None

    def scan_placement(self, sites: list[int]) -> Placement:
        return Placement("disk-sites", sites=tuple(sites))

    def join_placement(self, mode: JoinMode) -> Placement:
        return Placement("join-sites", mode=mode)

    def join_spill(self) -> Optional[SpillConfig]:
        """Hybrid-join spill strategy; None = the executing machine's
        config default (:meth:`SpillConfig.from_config`)."""
        return None

    def aggregate_placement(self) -> Placement:
        return Placement("diskless")

    def project_placement(self) -> Placement:
        return Placement("diskless")

    def sort_placement(self) -> Placement:
        return Placement("diskless")

    # -- update hooks ---------------------------------------------------
    def append_site(self, relation: Any, request: AppendTuple) -> int:
        raise NotImplementedError

    def update_sites(self, relation: Any, where: ExactMatch) -> list[int]:
        raise NotImplementedError

    def modify_relocates(self, relation: Any, request: ModifyTuple) -> bool:
        raise NotImplementedError
