"""The Gamma engine: machine, planner, scheduler, operators."""

from .admission import AdmissionController, AdmissionError, AdmissionTimeout
from .bitfilter import BitVectorFilter
from .locks import DeadlockError, LockManager, LockMode, LockTimeoutError
from .machine import GammaMachine
from .node import ExecutionContext, Node
from .plan import (
    AccessPath,
    AggregateNode,
    AppendTuple,
    DeleteTuple,
    ExactMatch,
    JoinMode,
    JoinNode,
    ModifyTuple,
    Query,
    RangePredicate,
    ScanNode,
    TruePredicate,
)
from .planner import (
    PhysicalAggregate,
    PhysicalJoin,
    PhysicalPlan,
    PhysicalScan,
    Planner,
    SpillConfig,
)
from .results import QueryResult
from .split_table import Destination, SplitTable

__all__ = [
    "AccessPath",
    "AdmissionController",
    "AdmissionError",
    "AdmissionTimeout",
    "AggregateNode",
    "AppendTuple",
    "BitVectorFilter",
    "DeadlockError",
    "DeleteTuple",
    "Destination",
    "ExactMatch",
    "ExecutionContext",
    "GammaMachine",
    "LockManager",
    "LockMode",
    "LockTimeoutError",
    "JoinMode",
    "JoinNode",
    "ModifyTuple",
    "Node",
    "PhysicalAggregate",
    "PhysicalJoin",
    "PhysicalPlan",
    "PhysicalScan",
    "Planner",
    "Query",
    "QueryResult",
    "RangePredicate",
    "ScanNode",
    "SpillConfig",
    "SplitTable",
    "TruePredicate",
]
