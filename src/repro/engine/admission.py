"""Admission control for multiuser workloads.

The paper evaluates Gamma single-user and defers the multiuser question
("The validity of this expectation will be determined in future multiuser
benchmarks").  Opening that experiment needs a throttle in front of the
drivers: without one, every terminal's query lands on the machine at once
and the interesting regime — a bounded multiprogramming level with an
admission queue in front of it — never appears.

:class:`AdmissionController` is that throttle.  It lives inside one
simulation (all waiting is simulated time, driven by kernel events) and is
machine-agnostic — the Gamma and Teradata workload sessions share it:

* a configurable **multiprogramming level** (MPL): at most ``mpl``
  requests execute concurrently, the rest queue;
* **FIFO or priority** queueing (lower priority value = served first,
  FIFO within a priority class);
* an optional per-request **timeout** on the queue wait: an expired
  entry is withdrawn from the queue and its ``admit()`` raises
  :class:`AdmissionTimeout` in the requesting process, so the client can
  record the failure and move on instead of wedging the run.

All bookkeeping (grants, timeouts, peak queue depth, queue-wait
histogram) is passive — the controller only schedules the wake-ups the
admission protocol itself requires.
"""

from __future__ import annotations

from bisect import insort
from typing import Any, Generator, Hashable, Optional

from ..errors import ExecutionError
from ..sim import Get, IntervalStats, Simulation, Store


class AdmissionError(ExecutionError):
    """Raised for admission-control protocol misuse (e.g. double release)."""


class AdmissionTimeout(AdmissionError):
    """Raised inside a requester whose queue wait exceeded the timeout."""


#: Sentinel delivered through a waiter's wakeup store when its queue wait
#: expires (a normal grant delivers ``None``).
_TIMED_OUT = object()

_POLICIES = ("fifo", "priority")


def _noop(*_args: Any) -> None:
    return None


class _Entry:
    """One queued admission request, ordered by (priority, seq)."""

    __slots__ = ("priority", "seq", "token", "wakeup", "enqueued")

    def __init__(
        self,
        priority: int,
        seq: int,
        token: Hashable,
        wakeup: Store,
        enqueued: float,
    ) -> None:
        self.priority = priority
        self.seq = seq
        self.token = token
        self.wakeup = wakeup
        self.enqueued = enqueued

    def __lt__(self, other: "_Entry") -> bool:
        return (self.priority, self.seq) < (other.priority, other.seq)


class AdmissionController:
    """Bounds the number of concurrently executing requests to ``mpl``.

    Usage inside a simulation process::

        yield from controller.admit(token)
        try:
            ...execute the query...
        finally:
            controller.release(token)

    ``policy="fifo"`` ignores priorities; ``policy="priority"`` serves
    lower priority values first (FIFO within a class).  ``timeout`` (in
    simulated seconds) bounds the queue wait only — once admitted, a
    request runs to completion (the drivers' own lock timeout covers
    lock waits).
    """

    def __init__(
        self,
        sim: Simulation,
        mpl: int = 4,
        policy: str = "fifo",
        timeout: Optional[float] = None,
    ) -> None:
        if mpl < 1:
            raise AdmissionError(f"multiprogramming level {mpl} < 1")
        if policy not in _POLICIES:
            raise AdmissionError(
                f"unknown admission policy {policy!r}; expected one of"
                f" {_POLICIES}"
            )
        if timeout is not None and timeout <= 0:
            raise AdmissionError(f"non-positive admission timeout {timeout}")
        self.sim = sim
        self.mpl = mpl
        self.policy = policy
        self.timeout = timeout
        self._running: set[Hashable] = set()
        self._queue: list[_Entry] = []
        self._seq = 0
        self.admitted = 0
        self.timeouts = 0
        self.peak_running = 0
        self.peak_queue = 0
        self.queue_wait = IntervalStats()

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"<AdmissionController mpl={self.mpl} policy={self.policy}"
            f" running={len(self._running)} queued={len(self._queue)}>"
        )

    @property
    def running(self) -> int:
        """Requests currently admitted and executing."""
        return len(self._running)

    @property
    def queue_length(self) -> int:
        """Requests waiting for an execution slot."""
        return len(self._queue)

    # ------------------------------------------------------------------
    def admit(
        self, token: Hashable, priority: int = 0
    ) -> Generator[Any, Any, None]:
        """Block until ``token`` holds one of the ``mpl`` slots.

        Raises:
            AdmissionTimeout: when the queue wait exceeds ``timeout``.
        """
        if token in self._running:
            raise AdmissionError(f"request {token!r} already admitted")
        if len(self._running) < self.mpl and not self._queue:
            self._grant(token, 0.0)
            return
        self._seq += 1
        entry = _Entry(
            priority if self.policy == "priority" else 0,
            self._seq, token, Store(f"admit.{token}"), self.sim.now,
        )
        insort(self._queue, entry)
        if len(self._queue) > self.peak_queue:
            self.peak_queue = len(self._queue)
        if self.timeout is not None:
            self.sim.call_after(self.timeout, lambda: self._expire(entry))
        got = yield Get(entry.wakeup)
        if got is _TIMED_OUT:
            raise AdmissionTimeout(
                f"request {token!r} timed out after {self.timeout}s in the"
                f" admission queue (mpl={self.mpl},"
                f" {len(self._queue)} still queued)"
            )

    def release(self, token: Hashable) -> None:
        """Free ``token``'s slot and dispatch the next queued request."""
        try:
            self._running.remove(token)
        except KeyError:
            raise AdmissionError(
                f"release of unadmitted request {token!r}"
            ) from None
        self._dispatch()

    # ------------------------------------------------------------------
    def _grant(self, token: Hashable, waited: float) -> None:
        self._running.add(token)
        self.admitted += 1
        if len(self._running) > self.peak_running:
            self.peak_running = len(self._running)
        self.queue_wait.record(waited)

    def _dispatch(self) -> None:
        while self._queue and len(self._running) < self.mpl:
            entry = self._queue.pop(0)
            self._grant(entry.token, self.sim.now - entry.enqueued)
            entry.wakeup._put(self.sim, None, _noop)

    def _expire(self, entry: _Entry) -> None:
        """Withdraw a still-queued request whose timer fired (no-op when
        it was granted at the same timestamp)."""
        try:
            self._queue.remove(entry)
        except ValueError:
            return
        self.timeouts += 1
        entry.wakeup._put(self.sim, _TIMED_OUT, _noop)

    def as_dict(self) -> dict[str, Any]:
        """Serialisable end-of-run summary for workload reports."""
        return {
            "mpl": self.mpl,
            "policy": self.policy,
            "timeout": self.timeout,
            "admitted": self.admitted,
            "timeouts": self.timeouts,
            "peak_running": self.peak_running,
            "peak_queue": self.peak_queue,
            "queue_wait": self.queue_wait.as_dict(),
        }
