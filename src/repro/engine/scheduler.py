"""Query scheduling and dataflow orchestration.

The host parses/optimizes/compiles the query, hands it to a dispatcher, and
an idle *scheduler process* drives execution: it activates operator
processes at the chosen nodes (four control messages per operator per node,
serialised through the scheduler's network interface — the cost visible in
the 0 % indexed-selection speedup curve and in the Allnodes scheduling
overhead), sequences the build and probe phases of joins, coordinates
hash-overflow resolution rounds, and reports completion to the host.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..catalog import Catalog, Relation, RoundRobin
from ..errors import ExecutionError, PlanError
from ..sim import Delay, Process, WaitAll
from ..storage import Schema, StoredFile, int_attr
from .bitfilter import BitVectorFilter
from .node import ExecutionContext, Node
from .operators import (
    DestSpec,
    JoinState,
    OverflowExchange,
    append_operator,
    build_consumer,
    close_output,
    clustered_index_scan_operator,
    combine_aggregate_operator,
    delete_operator,
    exact_match_operator,
    file_scan_operator,
    grouped_aggregate_operator,
    host_sink_operator,
    modify_operator,
    nonclustered_index_scan_operator,
    partial_aggregate_operator,
    probe_consumer,
    resolve_round,
    store_operator,
)
from .plan import (
    AccessPath,
    AppendTuple,
    DeleteTuple,
    ExactMatch,
    ModifyTuple,
    RangePredicate,
    TruePredicate,
    UpdateRequest,
)
from .planner import (
    PhysicalAggregate,
    PhysicalJoin,
    PhysicalNode,
    PhysicalPlan,
    PhysicalProject,
    PhysicalScan,
    PhysicalSort,
)
from .ports import InputPort, OutputPort
from .results import QueryResult
from .split_table import Destination, SplitTable

CONTROL_BYTES = 128
REPLY_BYTES = 64


def _spawn_operator(
    ctx: ExecutionContext, node: Node, gen: Any, label: str
) -> Process:
    """Spawn an operator process with lifetime metrics and trace events.

    The operator pays its activation CPU first; start/finish times land in
    the metrics registry and (when tracing) as a duration event on the
    node's ``op:<label>`` lane.
    """

    def wrapped() -> Generator[Any, Any, Any]:
        started = ctx.sim.now
        ctx.metrics.record_operator_start(label, node.name, started)
        yield from node.work(ctx.config.costs.operator_startup)
        result = yield from gen
        finished = ctx.sim.now
        ctx.metrics.record_operator_finish(label, node.name, finished)
        if ctx.trace is not None:
            ctx.trace.duration(
                node.name, f"op:{label}", label,
                started, finished - started, cat="operator",
            )
        return result

    return ctx.sim.spawn(wrapped(), name=label)


class QueryRun:
    """Executes one physical plan inside a fresh execution context."""

    def __init__(
        self, ctx: ExecutionContext, catalog: Catalog, plan: PhysicalPlan
    ) -> None:
        self.ctx = ctx
        self.catalog = catalog
        self.plan = plan
        self.collected: list[tuple] = []
        self.result_fragments: list[StoredFile] = []
        self.result_count = 0
        self.overflows_per_node: list[int] = []
        self._label_counter = 0
        self.txn = ctx.next_txn_id()

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def host_process(self) -> Generator[Any, Any, None]:
        """Parse/optimize/compile at the host, then drive the scheduler."""
        ctx = self.ctx
        yield Delay(ctx.config.host_startup_s)
        yield from ctx.net.transfer(
            ctx.host_node.name, ctx.scheduler_node.name, 512
        )
        try:
            yield from self._acquire_read_locks()
            yield from self._scheduler()
        finally:
            # Strict two-phase locking: everything releases at commit.
            ctx.locks.release_all(self.txn)
        yield from ctx.net.transfer(
            ctx.scheduler_node.name, ctx.host_node.name, REPLY_BYTES
        )

    def _acquire_read_locks(self) -> Generator[Any, Any, None]:
        """Shared locks on every scanned fragment, in canonical order.

        Sorted acquisition makes the engine's own workloads deadlock-free;
        the lock manager's waits-for detector (Gamma's scheduler runs
        "global deadlock detection") guards everything else.
        """
        from .locks import LockMode

        names: set[tuple[str, int]] = set()

        def visit(node: PhysicalNode) -> None:
            if isinstance(node, PhysicalScan):
                names.update(
                    (node.relation.name, site) for site in node.sites
                )
            elif isinstance(node, PhysicalJoin):
                visit(node.build)
                visit(node.probe)
            elif isinstance(node, (PhysicalAggregate, PhysicalProject)):
                visit(node.child)

        visit(self.plan.root)
        for name in sorted(names):
            yield from self.ctx.locks.acquire(self.txn, name, LockMode.SHARED)

    def _scheduler(self) -> Generator[Any, Any, None]:
        ctx = self.ctx
        plan = self.plan
        if plan.into is not None:
            consumers, dest = yield from self._start_store_operators()
        else:
            consumers, dest = self._start_host_sink()
        yield from self._run_subtree(plan.root, dest)
        results = yield WaitAll(consumers)
        self.result_count = sum(r or 0 for r in results)
        if ctx.recovery_log is not None:
            # Transaction commit: force the tail of the recovery log.
            yield from ctx.recovery_log.commit()

    def _start_store_operators(
        self,
    ) -> Generator[Any, Any, tuple[list[Process], DestSpec]]:
        """One store operator per disk site; results split round-robin."""
        ctx = self.ctx
        assert self.plan.into is not None
        procs: list[Process] = []
        ports: list[Destination] = []
        for site, node in enumerate(ctx.disk_nodes):
            fragment = StoredFile(
                f"{self.plan.into}.f{site}",
                self.plan.schema,
                ctx.config.page_size,
            )
            self.result_fragments.append(fragment)
            port = InputPort(ctx, f"store.{site}", node)
            ports.append(Destination(node.name, port))
            yield from self._initiate(node)
            procs.append(
                self._spawn(node, store_operator(ctx, node, port, fragment),
                            f"store.{site}")
            )
        return procs, DestSpec("rr", ports)

    def _start_host_sink(self) -> tuple[list[Process], DestSpec]:
        ctx = self.ctx
        port = InputPort(ctx, "host.sink", ctx.host_node)
        proc = ctx.sim.spawn(
            host_sink_operator(ctx, port, self.collected), name="host.sink"
        )
        dest = DestSpec("single", [Destination(ctx.host_node.name, port)])
        return [proc], dest

    # ------------------------------------------------------------------
    # plan-tree execution
    # ------------------------------------------------------------------
    def _run_subtree(
        self, node: PhysicalNode, dest: DestSpec
    ) -> Generator[Any, Any, None]:
        if isinstance(node, PhysicalScan):
            yield from self._run_scan(node, dest)
        elif isinstance(node, PhysicalJoin):
            yield from self._run_join(node, dest)
        elif isinstance(node, PhysicalAggregate):
            yield from self._run_aggregate(node, dest)
        elif isinstance(node, PhysicalProject):
            yield from self._run_project(node, dest)
        elif isinstance(node, PhysicalSort):
            yield from self._run_sort(node, dest)
        else:  # pragma: no cover - planner guarantees the node types
            raise PlanError(f"unknown physical node {node!r}")

    # -- sort -------------------------------------------------------------
    def _run_sort(
        self, sort: "PhysicalSort", dest: DestSpec
    ) -> Generator[Any, Any, None]:
        """Parallel range sort: disjoint key slices, emitted in order.

        The child stream is range-split by the optimizer's boundaries;
        each sorter orders its slice (external sort, spill to its spool
        disk site), then the slices emit one after another via a token
        chain so the destination receives a globally ordered stream.
        """
        from bisect import bisect_right

        from ..sim import Store
        from .operators.sort import sort_operator

        ctx = self.ctx
        nodes = list(ctx.diskless_nodes or ctx.disk_nodes)
        boundaries = sort.boundaries
        if boundaries is None:
            nodes = nodes[:1]
        ports: list[Destination] = []
        procs: list[Process] = []
        tokens: list[Store] = [
            Store(f"sort.tok.{i}") for i in range(len(nodes))
        ]
        emit_order = list(range(len(nodes)))
        if sort.descending:
            emit_order.reverse()
        chain_pos = {node_idx: k for k, node_idx in enumerate(emit_order)}
        for idx, node in enumerate(nodes):
            port = InputPort(ctx, f"sort.{idx}", node)
            ports.append(Destination(node.name, port))
            output = self._make_output(node, dest, sort.schema)
            yield from self._initiate(node)
            position = chain_pos[idx]
            go = tokens[emit_order[position - 1]] if position > 0 else None
            done = tokens[idx]
            successor = (
                nodes[emit_order[position + 1]].name
                if position + 1 < len(emit_order) else None
            )
            procs.append(
                self._spawn(
                    node,
                    sort_operator(
                        ctx, node, port, sort.key_pos, sort.descending,
                        sort.schema.tuple_bytes, output, go, done,
                        successor,
                    ),
                    f"sort.{idx}",
                )
            )
        if boundaries is None:
            child_dest = DestSpec("single", ports)
        else:
            bounds = list(boundaries)

            def route(value: Any) -> int:
                return bisect_right(bounds, value)

            child_dest = DestSpec(
                "fn", ports, attr=sort.attr, route_fn=route
            )
        yield from self._run_subtree(sort.child, child_dest)
        yield WaitAll(procs)

    # -- projection -------------------------------------------------------
    def _run_project(
        self, project: "PhysicalProject", dest: DestSpec
    ) -> Generator[Any, Any, None]:
        """Projection operators on the diskless processors (Section 2).

        A duplicate-eliminating projection partitions its input by a hash
        of the projected attributes so each node deduplicates a disjoint
        share; a streaming projection takes a round-robin share.
        """
        from .operators.project import project_operator

        ctx = self.ctx
        nodes = ctx.diskless_nodes or ctx.disk_nodes
        ports: list[Destination] = []
        procs: list[Process] = []
        for idx, node in enumerate(nodes):
            port = InputPort(ctx, f"proj.{idx}", node)
            ports.append(Destination(node.name, port))
            output = self._make_output(node, dest, project.schema)
            yield from self._initiate(node)
            procs.append(
                self._spawn(
                    node,
                    project_operator(ctx, node, port, project.positions,
                                     project.unique, output),
                    f"proj.{idx}",
                )
            )
        if project.unique:
            child_dest = DestSpec(
                "record_hash", ports, attr=None,
                route_fn=project.positions,
            )
        else:
            child_dest = DestSpec("rr", ports)
        yield from self._run_subtree(project.child, child_dest)
        yield WaitAll(procs)

    # -- scans ----------------------------------------------------------
    def _run_scan(
        self, scan: PhysicalScan, dest: DestSpec
    ) -> Generator[Any, Any, None]:
        ctx = self.ctx
        # Register every producer on the destination ports *before* any
        # scan starts: a fast site must not deliver its EndOfStream while a
        # sibling is still unregistered.
        outputs = {
            site: self._make_output(ctx.disk_nodes[site], dest, scan.schema)
            for site in scan.sites
        }
        procs: list[Process] = []
        for site in scan.sites:
            node = ctx.disk_nodes[site]
            yield from self._initiate(node)
            gen = self._scan_generator(scan, site, node, outputs[site])
            procs.append(self._spawn(node, gen, f"scan.{scan.relation.name}.{site}"))
        yield WaitAll(procs)

    def _scan_generator(
        self, scan: PhysicalScan, site: int, node: Node, output: OutputPort
    ):
        ctx = self.ctx
        fragment = scan.relation.fragments[site]
        predicate = scan.predicate
        path = scan.path
        if path is AccessPath.FILE_SCAN:
            compiled = predicate.compile(scan.schema)
            return file_scan_operator(ctx, node, fragment, compiled, output)
        if path is AccessPath.CLUSTERED_INDEX:
            low, high = self._bounds(predicate)
            return clustered_index_scan_operator(
                ctx, node, fragment, low, high, output
            )
        if path is AccessPath.NONCLUSTERED_INDEX:
            low, high = self._bounds(predicate)
            return nonclustered_index_scan_operator(
                ctx, node, fragment, predicate.attr, low, high, output
            )
        if path is AccessPath.CLUSTERED_EXACT:
            return exact_match_operator(
                ctx, node, fragment, predicate.attr, predicate.value,
                output, use_clustered=True,
            )
        if path is AccessPath.NONCLUSTERED_EXACT:
            return exact_match_operator(
                ctx, node, fragment, predicate.attr, predicate.value,
                output, use_clustered=False,
            )
        raise PlanError(f"unsupported access path {path}")

    @staticmethod
    def _bounds(predicate: Any) -> tuple[Any, Any]:
        if isinstance(predicate, RangePredicate):
            return predicate.low, predicate.high
        if isinstance(predicate, ExactMatch):
            return predicate.value, predicate.value
        raise PlanError(f"predicate {predicate!r} has no bounds")

    # -- joins ------------------------------------------------------------
    def _run_join(
        self, join: PhysicalJoin, dest: DestSpec
    ) -> Generator[Any, Any, None]:
        if self.ctx.config.join_algorithm == "hybrid":
            yield from self._run_hybrid_join(join, dest)
            return
        yield from self._run_simple_join(join, dest)

    def _run_simple_join(
        self, join: PhysicalJoin, dest: DestSpec
    ) -> Generator[Any, Any, None]:
        ctx = self.ctx
        config = ctx.config
        nodes = ctx.join_nodes(join.mode)
        capacity = config.join_memory_total // len(nodes)
        build_pos = join.build.schema.position(join.build_attr)
        probe_pos = join.probe.schema.position(join.probe_attr)
        states: list[JoinState] = []
        build_ports: list[Destination] = []
        probe_ports: list[Destination] = []
        for idx, node in enumerate(nodes):
            build_port = InputPort(ctx, f"join.b.{idx}", node)
            probe_port = InputPort(ctx, f"join.p.{idx}", node)
            build_ports.append(Destination(node.name, build_port))
            probe_ports.append(Destination(node.name, probe_port))
            output = self._make_output(node, dest, join.schema)
            bit_filter = (
                BitVectorFilter() if config.use_bit_filters else None
            )
            # A join is logically two operators (build and probe): two
            # activations' worth of scheduling messages per node.
            yield from self._initiate(node)
            yield from self._initiate(node)
            states.append(
                JoinState(
                    ctx, node, idx, build_pos, probe_pos, capacity,
                    join.build.schema.tuple_bytes,
                    join.probe.schema.tuple_bytes,
                    output, bit_filter, build_port, probe_port,
                )
            )
        # The optimizer's building-relation estimate sizes the overflow
        # subpartition fraction (Section 6.2.2's robustness claim).
        est = self._estimated_output(join.build)
        for state in states:
            state.expected_build_tuples = est / len(nodes)
        exchange = OverflowExchange(ctx, states, seed=1)

        # Phase one: build.
        build_procs = [
            self._spawn(s.node, build_consumer(ctx, s, exchange),
                        f"join.build.{s.index}")
            for s in states
        ]
        yield from self._run_subtree(
            join.build, DestSpec("hash", build_ports, attr=join.build_attr)
        )
        yield WaitAll(build_procs)

        # Bit-vector filters: collected from the joining nodes, merged, and
        # installed in the probe-side split tables before probing starts.
        probe_filter: Optional[BitVectorFilter] = None
        if config.use_bit_filters:
            probe_filter = BitVectorFilter()
            for state in states:
                assert state.bit_filter is not None
                yield from ctx.net.transfer(
                    state.node.name, ctx.scheduler_node.name,
                    state.bit_filter.size_bytes,
                )
                probe_filter.union(state.bit_filter)

        # Hash-function switch: if any node overflowed during the build,
        # the scheduler redistributes the kept tables under the new hash
        # and passes the new function to the probing selections' split
        # tables (Section 6.2.2) — Local joins lose their short-circuit.
        if any(s.overflows for s in states):
            from .operators.join import (
                overflow_route,
                redistribute_tables_after_overflow,
            )

            charges = redistribute_tables_after_overflow(ctx, states, exchange)
            redist_procs = [
                self._spawn(s.node, gen, f"join.redist.{s.index}")
                for s, gen in zip(states, charges)
            ]
            yield WaitAll(redist_procs)
            probe_dest = DestSpec(
                "fn", probe_ports, attr=join.probe_attr,
                bit_filter=probe_filter,
                route_fn=overflow_route(len(states)),
            )
        else:
            probe_dest = DestSpec(
                "hash", probe_ports, attr=join.probe_attr,
                bit_filter=probe_filter,
            )

        # Phase two: probe.
        probe_procs = [
            self._spawn(s.node, probe_consumer(ctx, s, exchange),
                        f"join.probe.{s.index}")
            for s in states
        ]
        yield from self._run_subtree(join.probe, probe_dest)
        yield WaitAll(probe_procs)

        # Overflow resolution rounds: one generation at a time, all nodes
        # in parallel, until no partition spilled.
        round_no = 1
        yield from exchange.flush()
        while exchange.spooled_build() or exchange.spooled_probe():
            round_no += 1
            if round_no > 100:
                raise ExecutionError("join overflow did not converge")
            next_exchange = OverflowExchange(ctx, states, seed=round_no)
            round_procs = [
                self._spawn(
                    s.node,
                    resolve_round(
                        ctx, s,
                        exchange.build_spools[s.index],
                        exchange.probe_spools[s.index],
                        next_exchange,
                    ),
                    f"join.ovfl.{round_no}.{s.index}",
                )
                for s in states
            ]
            yield WaitAll(round_procs)
            yield from next_exchange.flush()
            exchange = next_exchange

        closers = [
            self._spawn(s.node, close_output(ctx, s), f"join.close.{s.index}")
            for s in states
        ]
        yield WaitAll(closers)
        self.overflows_per_node = [s.overflows for s in states]

    def _run_hybrid_join(
        self, join: PhysicalJoin, dest: DestSpec
    ) -> Generator[Any, Any, None]:
        """The parallel Hybrid hash join (the paper's announced fix)."""
        from .operators.hybrid_join import (
            HybridJoinState,
            hybrid_build_consumer,
            hybrid_close,
            hybrid_probe_consumer,
            hybrid_resolve,
        )

        ctx = self.ctx
        config = ctx.config
        nodes = ctx.join_nodes(join.mode)
        capacity = config.join_memory_total // len(nodes)
        build_pos = join.build.schema.position(join.build_attr)
        probe_pos = join.probe.schema.position(join.probe_attr)
        est = self._estimated_output(join.build)
        states: list[HybridJoinState] = []
        build_ports: list[Destination] = []
        probe_ports: list[Destination] = []
        for idx, node in enumerate(nodes):
            build_port = InputPort(ctx, f"hjoin.b.{idx}", node)
            probe_port = InputPort(ctx, f"hjoin.p.{idx}", node)
            build_ports.append(Destination(node.name, build_port))
            probe_ports.append(Destination(node.name, probe_port))
            output = self._make_output(node, dest, join.schema)
            bit_filter = (
                BitVectorFilter() if config.use_bit_filters else None
            )
            yield from self._initiate(node)
            yield from self._initiate(node)
            states.append(
                HybridJoinState(
                    ctx, node, idx, build_pos, probe_pos, capacity,
                    join.build.schema.tuple_bytes,
                    join.probe.schema.tuple_bytes,
                    output, bit_filter, build_port, probe_port,
                    expected_build_tuples=est / len(nodes),
                )
            )

        build_procs = [
            self._spawn(s.node, hybrid_build_consumer(ctx, s),
                        f"hjoin.build.{s.index}")
            for s in states
        ]
        yield from self._run_subtree(
            join.build, DestSpec("hash", build_ports, attr=join.build_attr)
        )
        yield WaitAll(build_procs)

        probe_filter: Optional[BitVectorFilter] = None
        if config.use_bit_filters:
            probe_filter = BitVectorFilter()
            for state in states:
                assert state.bit_filter is not None
                yield from ctx.net.transfer(
                    state.node.name, ctx.scheduler_node.name,
                    state.bit_filter.size_bytes,
                )
                probe_filter.union(state.bit_filter)

        probe_procs = [
            self._spawn(s.node, hybrid_probe_consumer(ctx, s),
                        f"hjoin.probe.{s.index}")
            for s in states
        ]
        yield from self._run_subtree(
            join.probe,
            DestSpec("hash", probe_ports, attr=join.probe_attr,
                     bit_filter=probe_filter),
        )
        yield WaitAll(probe_procs)

        resolve_procs = [
            self._spawn(s.node, hybrid_resolve(ctx, s),
                        f"hjoin.resolve.{s.index}")
            for s in states
        ]
        yield WaitAll(resolve_procs)
        closers = [
            self._spawn(s.node, hybrid_close(ctx, s),
                        f"hjoin.close.{s.index}")
            for s in states
        ]
        yield WaitAll(closers)
        self.overflows_per_node = [
            max(0, s.n_partitions - 1) for s in states
        ]

    # -- aggregates -------------------------------------------------------
    def _run_aggregate(
        self, agg: PhysicalAggregate, dest: DestSpec
    ) -> Generator[Any, Any, None]:
        ctx = self.ctx
        nodes = ctx.diskless_nodes or ctx.disk_nodes
        value_pos = (
            agg.child.schema.position(agg.attr) if agg.attr is not None else None
        )
        if agg.group_by is not None:
            yield from self._run_grouped_aggregate(agg, dest, nodes, value_pos)
        else:
            yield from self._run_scalar_aggregate(agg, dest, nodes, value_pos)

    def _run_grouped_aggregate(
        self,
        agg: PhysicalAggregate,
        dest: DestSpec,
        nodes: list[Node],
        value_pos: Optional[int],
    ) -> Generator[Any, Any, None]:
        ctx = self.ctx
        group_pos = agg.child.schema.position(agg.group_by)  # type: ignore[arg-type]
        ports: list[Destination] = []
        procs: list[Process] = []
        for idx, node in enumerate(nodes):
            port = InputPort(ctx, f"agg.{idx}", node)
            ports.append(Destination(node.name, port))
            output = self._make_output(node, dest, agg.schema)
            yield from self._initiate(node)
            procs.append(
                self._spawn(
                    node,
                    grouped_aggregate_operator(
                        ctx, node, port, value_pos, group_pos, agg.op, output
                    ),
                    f"agg.{idx}",
                )
            )
        yield from self._run_subtree(
            agg.child, DestSpec("hash", ports, attr=agg.group_by)
        )
        yield WaitAll(procs)

    def _run_scalar_aggregate(
        self,
        agg: PhysicalAggregate,
        dest: DestSpec,
        nodes: list[Node],
        value_pos: Optional[int],
    ) -> Generator[Any, Any, None]:
        ctx = self.ctx
        combiner_node = nodes[0]
        combine_port = InputPort(ctx, "agg.combine", combiner_node)
        yield from self._initiate(combiner_node)
        final_output = self._make_output(combiner_node, dest, agg.schema)
        combine_proc = self._spawn(
            combiner_node,
            combine_aggregate_operator(
                ctx, combiner_node, combine_port, agg.op, final_output
            ),
            "agg.combine",
        )
        # Four integer accumulator fields: count / sum / min / max.
        partial_schema = Schema(
            [int_attr(n) for n in ("count", "sum", "min", "max")]
        )
        ports: list[Destination] = []
        procs: list[Process] = []
        for idx, node in enumerate(nodes):
            port = InputPort(ctx, f"agg.part.{idx}", node)
            ports.append(Destination(node.name, port))
            output = self._make_output(
                node,
                DestSpec("single", [Destination(combiner_node.name, combine_port)]),
                partial_schema,
            )
            yield from self._initiate(node)
            procs.append(
                self._spawn(
                    node,
                    partial_aggregate_operator(ctx, node, port, value_pos, output),
                    f"agg.part.{idx}",
                )
            )
        yield from self._run_subtree(agg.child, DestSpec("rr", ports))
        yield WaitAll(procs)
        yield WaitAll([combine_proc])

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _estimated_output(self, node: PhysicalNode) -> float:
        """Optimizer cardinality estimate for a physical subtree."""
        if isinstance(node, PhysicalScan):
            return node.estimated_matches
        if isinstance(node, PhysicalJoin):
            return min(
                self._estimated_output(node.build),
                self._estimated_output(node.probe),
            )
        if isinstance(node, PhysicalAggregate):
            return self._estimated_output(node.child)
        return 0.0  # pragma: no cover - closed union

    def _make_output(
        self, node: Node, dest: DestSpec, schema: Schema
    ) -> OutputPort:
        ctx = self.ctx
        costs = ctx.config.costs
        if dest.kind == "hash":
            split = SplitTable.by_hash(
                dest.ports, schema, dest.attr, costs,
                bit_filter=dest.bit_filter,
            )
        elif dest.kind == "fn":
            split = SplitTable.by_function(
                dest.ports, schema, dest.attr, dest.route_fn, costs,
                bit_filter=dest.bit_filter,
            )
        elif dest.kind == "record_hash":
            split = SplitTable.by_record_hash(
                dest.ports, dest.route_fn, costs
            )
        elif dest.kind == "rr":
            split = SplitTable.round_robin(dest.ports)
        elif dest.kind == "single":
            split = SplitTable.single(dest.ports[0])
        else:  # pragma: no cover - DestSpec kinds are internal
            raise PlanError(f"unknown destination kind {dest.kind!r}")
        for destination in dest.ports:
            destination.port.add_producer()
        self._label_counter += 1
        return OutputPort(
            ctx, node, split, schema.tuple_bytes,
            f"out.{node.name}.{self._label_counter}",
        )

    def _initiate(self, node: Node) -> Generator[Any, Any, None]:
        """The four scheduling messages that activate one operator."""
        ctx = self.ctx
        sched = ctx.scheduler_node.name
        for _ in range(2):
            yield from ctx.net.transfer(sched, node.name, CONTROL_BYTES)
            yield from ctx.net.transfer(node.name, sched, REPLY_BYTES)
        n = ctx.config.sched_messages_per_operator
        ctx.metrics.add("sched_messages", n)
        ctx.metrics.node(sched).control_messages += n

    def _spawn(self, node: Node, gen: Any, label: str) -> Process:
        """Start an operator process; it pays its activation CPU first."""
        return _spawn_operator(self.ctx, node, gen, label)


class UpdateRun:
    """Executes one single-tuple update request (Table 3)."""

    def __init__(
        self, ctx: ExecutionContext, catalog: Catalog, request: UpdateRequest
    ) -> None:
        self.ctx = ctx
        self.catalog = catalog
        self.request = request
        self.affected = 0
        self.txn = ctx.next_txn_id()
        self._append_site: Optional[int] = None

    def host_process(self) -> Generator[Any, Any, None]:
        ctx = self.ctx
        yield Delay(ctx.config.host_startup_s)
        yield from ctx.net.transfer(
            ctx.host_node.name, ctx.scheduler_node.name, 512
        )
        try:
            yield from self._acquire_write_locks()
            yield from self._scheduler()
        finally:
            ctx.locks.release_all(self.txn)
        yield from ctx.net.transfer(
            ctx.scheduler_node.name, ctx.host_node.name, REPLY_BYTES
        )

    def _acquire_write_locks(self) -> Generator[Any, Any, None]:
        """Exclusive locks on every fragment the update may touch.

        A key-attribute modify can relocate the tuple anywhere, so it
        locks the whole relation; everything else locks its target
        site(s).  Canonical sorted order keeps the engine deadlock-free;
        the manager's waits-for detector guards everything else.
        """
        from .locks import LockMode

        request = self.request
        relation = self.catalog.lookup(request.relation)
        if isinstance(request, AppendTuple):
            # Decide the home site exactly once (round-robin strategies
            # advance a cursor on every call).
            self._append_site = relation.partitioning.site_of(
                request.record, relation.n_sites
            )
            sites = [self._append_site]
        elif isinstance(request, ModifyTuple):
            part_attr = getattr(relation.partitioning, "attr", None)
            if request.attr == part_attr or (
                request.attr == relation.clustered_on
            ):
                sites = list(range(relation.n_sites))
            else:
                sites = self._target_sites(relation, request.where)
        else:
            sites = self._target_sites(relation, request.where)
        for site in sorted(set(sites)):
            yield from self.ctx.locks.acquire(
                self.txn, (request.relation, site), LockMode.EXCLUSIVE
            )

    def _scheduler(self) -> Generator[Any, Any, None]:
        request = self.request
        if isinstance(request, AppendTuple):
            yield from self._run_append(request)
        elif isinstance(request, DeleteTuple):
            yield from self._run_delete(request)
        elif isinstance(request, ModifyTuple):
            yield from self._run_modify(request)
        else:  # pragma: no cover - UpdateRequest is a closed union
            raise PlanError(f"unknown update request {request!r}")

    def _target_sites(self, relation: Relation, where: ExactMatch) -> list[int]:
        part_attr = getattr(relation.partitioning, "attr", None)
        if where.attr == part_attr:
            site = relation.partitioning.site_for_key(
                where.value, relation.n_sites
            )
            if site is not None:
                return [site]
        return list(range(relation.n_sites))

    def _run_append(self, request: AppendTuple) -> Generator[Any, Any, None]:
        ctx = self.ctx
        relation = self.catalog.lookup(request.relation)
        site = (
            self._append_site
            if self._append_site is not None
            else relation.partitioning.site_of(request.record, relation.n_sites)
        )
        node = ctx.disk_nodes[site]
        yield from self._initiate(node)
        proc = self._spawn(
            node,
            append_operator(ctx, node, relation.fragments[site], request.record),
            "append",
        )
        results = yield WaitAll([proc])
        self.affected = sum(results)

    def _run_delete(self, request: DeleteTuple) -> Generator[Any, Any, None]:
        ctx = self.ctx
        relation = self.catalog.lookup(request.relation)
        procs = []
        for site in self._target_sites(relation, request.where):
            node = ctx.disk_nodes[site]
            yield from self._initiate(node)
            procs.append(
                self._spawn(
                    node,
                    delete_operator(
                        ctx, node, relation.fragments[site], request.where
                    ),
                    f"delete.{site}",
                )
            )
        results = yield WaitAll(procs)
        self.affected = sum(results)

    def _run_modify(self, request: ModifyTuple) -> Generator[Any, Any, None]:
        ctx = self.ctx
        relation = self.catalog.lookup(request.relation)
        part_attr = getattr(relation.partitioning, "attr", None)
        relocate = request.attr == part_attr or (
            request.attr == relation.clustered_on
        )
        procs = []
        sites = self._target_sites(relation, request.where)
        for site in sites:
            node = ctx.disk_nodes[site]
            yield from self._initiate(node)
            procs.append(
                self._spawn(
                    node,
                    modify_operator(
                        ctx, node, relation.fragments[site], request.where,
                        request.attr, request.value, relocate,
                    ),
                    f"modify.{site}",
                )
            )
        results = yield WaitAll(procs)
        outcomes = [r for r in results if r is not None]
        moved = [rec for status, rec in outcomes if status == "relocate"]
        self.affected = len(outcomes)
        # Re-insert relocated tuples at their (possibly new) home site.
        from .operators import reinsert_operator

        for record in moved:
            new_site = relation.partitioning.site_of(record, relation.n_sites)
            node = ctx.disk_nodes[new_site]
            yield from ctx.net.transfer(
                ctx.scheduler_node.name, node.name,
                relation.schema.tuple_bytes + 64,
            )
            yield from self._initiate(node)
            proc = self._spawn(
                node,
                reinsert_operator(
                    ctx, node, relation.fragments[new_site], record
                ),
                "reinsert",
            )
            yield WaitAll([proc])

    def _initiate(self, node: Node) -> Generator[Any, Any, None]:
        ctx = self.ctx
        sched = ctx.scheduler_node.name
        for _ in range(2):
            yield from ctx.net.transfer(sched, node.name, CONTROL_BYTES)
            yield from ctx.net.transfer(node.name, sched, REPLY_BYTES)
        n = ctx.config.sched_messages_per_operator
        ctx.metrics.add("sched_messages", n)
        ctx.metrics.node(sched).control_messages += n

    def _spawn(self, node: Node, gen: Any, label: str) -> Process:
        return _spawn_operator(self.ctx, node, gen, label)
