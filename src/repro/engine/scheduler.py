"""Backwards-compatible names for the scheduler processes.

The scheduler logic now lives in the three-layer plan pipeline: the
shared compiler walk in :mod:`repro.engine.ir`, Gamma's planning
conventions in :mod:`repro.engine.planner`, and the driver that lowers
Exchange edges to split tables + ports in :mod:`repro.engine.driver`
(with the per-operator lowerings next to the operators themselves under
:mod:`repro.engine.operators`).

``QueryRun``/``UpdateRun`` remain importable under their historical
names; ``UpdateRun`` still accepts a raw
:class:`~repro.engine.plan.UpdateRequest` and compiles it on the way in.
"""

from __future__ import annotations

import warnings
from typing import Union

from ..catalog import Catalog
from ..hardware import GammaConfig
from .driver import (
    CONTROL_BYTES,
    REPLY_BYTES,
    QueryDriver,
    UpdateDriver,
    _spawn_operator,
)
from .ir import UpdateIR
from .node import ExecutionContext
from .plan import UpdateRequest

warnings.warn(
    "repro.engine.scheduler is deprecated; import QueryDriver/UpdateDriver "
    "from repro.engine.driver instead",
    DeprecationWarning,
    stacklevel=2,
)

QueryRun = QueryDriver


class UpdateRun(UpdateDriver):
    """An :class:`UpdateDriver` that also accepts uncompiled requests."""

    def __init__(
        self,
        ctx: ExecutionContext,
        catalog: Catalog,
        request: Union[UpdateRequest, UpdateIR],
    ) -> None:
        if not isinstance(request, UpdateIR):
            from .planner import Planner

            config: GammaConfig = ctx.config
            request = Planner(config, catalog).compile_update(request)
        super().__init__(ctx, catalog, request)


__all__ = [
    "CONTROL_BYTES",
    "REPLY_BYTES",
    "QueryRun",
    "UpdateRun",
    "_spawn_operator",
]
