"""The Gamma driver: lowers physical IR onto split tables and ports.

This is layer three of the plan pipeline (logical plan → physical IR →
backend driver).  The scheduler process it models is the paper's: an idle
scheduler activates operator processes at the chosen nodes (four control
messages per operator per node, serialised through the scheduler's network
interface), sequences the build and probe phases of joins, coordinates
hash-overflow resolution rounds, and reports completion to the host.

The per-operator lowering lives with the operators themselves
(:class:`~repro.engine.operators.scan.ScanDriver` and friends); this module
supplies the shared machinery — lock acquisition, operator activation
(:meth:`GammaDriver._initiate`/:meth:`GammaDriver._spawn`), and the lowering
of IR :class:`~repro.engine.ir.Exchange` edges to
:class:`~repro.engine.operators.base.DestSpec` split tables.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Generator, Optional

from ..catalog import Catalog, gamma_hash
from ..errors import PlanError
from ..sim import Delay, Process, WaitAll
from ..storage import Schema, StoredFile
from .ir import (
    AggregateOp,
    Exchange,
    ExchangeKind,
    HashJoinProbeOp,
    IRNode,
    PhysicalIR,
    ProjectOp,
    ScanOp,
    SortOp,
    StoreOp,
    UpdateIR,
)
from .node import ExecutionContext, Node
from .operators import DestSpec
from .operators.aggregate import AggregateDriver
from .operators.hybrid_join import HybridHashJoinDriver
from .operators.join import SimpleHashJoinDriver
from .operators.project import ProjectDriver
from .operators.scan import ScanDriver
from .operators.sort import SortDriver
from .operators.store import HostSinkDriver, StoreDriver
from .plan import AppendTuple, DeleteTuple, ModifyTuple
from .ports import OutputPort
from .split_table import SplitTable

CONTROL_BYTES = 128
REPLY_BYTES = 64


def _spawn_operator(
    ctx: ExecutionContext,
    node: Node,
    gen: Any,
    label: str,
    op_id: Optional[str] = None,
    phase: Optional[str] = None,
) -> Process:
    """Spawn an operator process with lifetime metrics and trace events.

    The operator pays its activation CPU first; start/finish times land in
    the metrics registry and (when tracing) as a duration event on the
    node's ``op:<label>`` lane.  ``op_id``/``phase`` register the process
    with the profiler (when one is attached) so every service interval it
    — or any helper process it spawns — consumes is attributed to that IR
    node.
    """

    def wrapped() -> Generator[Any, Any, Any]:
        started = ctx.sim.now
        ctx.metrics.record_operator_start(label, node.name, started)
        yield from node.work(ctx.config.costs.operator_startup)
        result = yield from gen
        finished = ctx.sim.now
        ctx.metrics.record_operator_finish(label, node.name, finished)
        if ctx.trace is not None:
            ctx.trace.duration(
                node.name, f"op:{label}", label,
                started, finished - started, cat="operator",
            )
        return result

    proc = ctx.sim.spawn(wrapped(), name=label)
    if ctx.profiler is not None and op_id is not None:
        ctx.profiler.register(proc, op_id, phase, node=node.name)
    return proc


class GammaDriver:
    """Shared base for the query and update schedulers: operator
    activation and process spawning."""

    def __init__(self, ctx: ExecutionContext, catalog: Catalog) -> None:
        self.ctx = ctx
        self.catalog = catalog
        self.txn = ctx.next_txn_id()

    def _initiate(self, node: Node) -> Generator[Any, Any, None]:
        """The four scheduling messages that activate one operator."""
        ctx = self.ctx
        sched = ctx.scheduler_node.name
        for _ in range(2):
            yield from ctx.net.transfer(sched, node.name, CONTROL_BYTES)
            yield from ctx.net.transfer(node.name, sched, REPLY_BYTES)
        n = ctx.config.sched_messages_per_operator
        ctx.metrics.add("sched_messages", n)
        ctx.metrics.node(sched).control_messages += n

    def _spawn(
        self,
        node: Node,
        gen: Any,
        label: str,
        op_id: Optional[str] = None,
        phase: Optional[str] = None,
    ) -> Process:
        """Start an operator process; it pays its activation CPU first."""
        return _spawn_operator(self.ctx, node, gen, label, op_id, phase)


class QueryDriver(GammaDriver):
    """Executes one compiled :class:`~repro.engine.ir.PhysicalIR`."""

    def __init__(
        self, ctx: ExecutionContext, catalog: Catalog, plan: PhysicalIR
    ) -> None:
        super().__init__(ctx, catalog)
        self.plan = plan
        self.collected: list[tuple] = []
        self.result_fragments: list[StoredFile] = []
        self.result_count = 0
        self.overflows_per_node: list[int] = []
        self.partitions_per_node: list[int] = []
        self._label_counter = 0

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def host_process(self) -> Generator[Any, Any, None]:
        """Parse/optimize/compile at the host, then drive the scheduler."""
        ctx = self.ctx
        yield Delay(ctx.config.host_startup_s)
        yield from ctx.net.transfer(
            ctx.host_node.name, ctx.scheduler_node.name, 512
        )
        try:
            yield from self._acquire_read_locks()
            yield from self._scheduler()
        finally:
            # Strict two-phase locking: everything releases at commit.
            ctx.locks.release_all(self.txn)
        yield from ctx.net.transfer(
            ctx.scheduler_node.name, ctx.host_node.name, REPLY_BYTES
        )

    def _acquire_read_locks(self) -> Generator[Any, Any, None]:
        """Shared locks on every scanned fragment, in canonical order.

        Sorted acquisition makes the engine's own workloads deadlock-free;
        the lock manager's waits-for detector (Gamma's scheduler runs
        "global deadlock detection") guards everything else.
        """
        from .locks import LockMode

        names: set[tuple[str, int]] = set()

        def visit(node: IRNode) -> None:
            if isinstance(node, ScanOp):
                names.update(
                    (node.relation.name, site) for site in node.sites
                )
            elif isinstance(node, HashJoinProbeOp):
                visit(node.build)
                visit(node.probe)
            elif isinstance(node, (AggregateOp, ProjectOp, SortOp)):
                visit(node.child)

        visit(self.plan.root)
        for name in sorted(names):
            yield from self.ctx.locks.acquire(
                self.txn, name, LockMode.SHARED,
                timeout=self.ctx.lock_timeout,
            )

    def _scheduler(self) -> Generator[Any, Any, None]:
        ctx = self.ctx
        plan = self.plan
        if isinstance(plan.sink, StoreOp):
            consumers, dest = yield from StoreDriver().start(self, plan.sink)
        else:
            consumers, dest = HostSinkDriver().start(self, plan.sink)
        yield from self.run_op(plan.root, dest)
        results = yield WaitAll(consumers)
        self.result_count = sum(r or 0 for r in results)
        if ctx.recovery_log is not None:
            # Transaction commit: force the tail of the recovery log.
            yield from ctx.recovery_log.commit()

    # ------------------------------------------------------------------
    # IR lowering
    # ------------------------------------------------------------------
    def run_op(
        self, node: IRNode, dest: DestSpec
    ) -> Generator[Any, Any, None]:
        """Dispatch one IR operator (and, recursively, its inputs) to its
        per-operator driver."""
        if isinstance(node, ScanOp):
            yield from ScanDriver().run(self, node, dest)
        elif isinstance(node, HashJoinProbeOp):
            if self.ctx.config.join_algorithm == "hybrid":
                yield from HybridHashJoinDriver().run(self, node, dest)
            else:
                yield from SimpleHashJoinDriver().run(self, node, dest)
        elif isinstance(node, AggregateOp):
            yield from AggregateDriver().run(self, node, dest)
        elif isinstance(node, ProjectOp):
            yield from ProjectDriver().run(self, node, dest)
        elif isinstance(node, SortOp):
            yield from SortDriver().run(self, node, dest)
        else:  # pragma: no cover - the compiler emits a closed set
            raise PlanError(f"unknown physical node {node!r}")

    def lower_exchange(
        self,
        exchange: Exchange,
        ports: list[Any],
        bit_filter: Optional[Any] = None,
    ) -> DestSpec:
        """Lower one IR Exchange edge to a split-table destination spec."""
        kind = exchange.kind
        if kind is ExchangeKind.HASH:
            return DestSpec(
                "hash", ports, attr=exchange.attr, bit_filter=bit_filter
            )
        if kind is ExchangeKind.RANGE:
            bounds = list(exchange.boundaries or [])

            def route(value: Any) -> int:
                return bisect_right(bounds, value)

            return DestSpec(
                "fn", ports, attr=exchange.attr, route_fn=route,
                bit_filter=bit_filter,
            )
        if kind is ExchangeKind.RECORD_HASH:
            return DestSpec(
                "record_hash", ports, attr=None,
                route_fn=list(exchange.positions or []),
            )
        if kind is ExchangeKind.ROUND_ROBIN:
            return DestSpec("rr", ports)
        if kind is ExchangeKind.MERGE:
            return DestSpec("single", ports)
        if kind is ExchangeKind.VHASH:
            vmap = tuple(exchange.virtual_map or ())
            if not vmap:
                raise PlanError("vhash exchange needs a virtual_map")
            v = len(vmap)
            n = len(ports)

            def route(value: Any) -> int:
                return vmap[gamma_hash(value, v)] % n

            return DestSpec(
                "fn", ports, attr=exchange.attr, route_fn=route,
                bit_filter=bit_filter,
            )
        if kind is ExchangeKind.HOT_BROADCAST:
            hot = exchange.hot_keys or frozenset()
            n = len(ports)
            everywhere = tuple(range(n))

            def route(value: Any) -> Any:
                if value in hot:
                    return everywhere
                return gamma_hash(value, n)

            return DestSpec(
                "fn", ports, attr=exchange.attr, route_fn=route,
                bit_filter=bit_filter,
            )
        if kind is ExchangeKind.HOT_SPRAY:
            hot = exchange.hot_keys or frozenset()
            n = len(ports)
            state = {"next": 0}

            def route(value: Any) -> int:
                if value in hot:
                    idx = state["next"]
                    state["next"] = (idx + 1) % n
                    return idx
                return gamma_hash(value, n)

            return DestSpec(
                "fn", ports, attr=exchange.attr, route_fn=route,
                bit_filter=bit_filter,
            )
        raise PlanError(f"Gamma cannot lower exchange {exchange.describe()}")

    def _make_output(
        self, node: Node, dest: DestSpec, schema: Schema
    ) -> OutputPort:
        ctx = self.ctx
        costs = ctx.config.costs
        if dest.kind == "hash":
            split = SplitTable.by_hash(
                dest.ports, schema, dest.attr, costs,
                bit_filter=dest.bit_filter,
            )
        elif dest.kind == "fn":
            split = SplitTable.by_function(
                dest.ports, schema, dest.attr, dest.route_fn, costs,
                bit_filter=dest.bit_filter,
            )
        elif dest.kind == "record_hash":
            split = SplitTable.by_record_hash(
                dest.ports, dest.route_fn, costs
            )
        elif dest.kind == "rr":
            split = SplitTable.round_robin(dest.ports)
        elif dest.kind == "single":
            split = SplitTable.single(dest.ports[0])
        else:  # pragma: no cover - DestSpec kinds are internal
            raise PlanError(f"unknown destination kind {dest.kind!r}")
        for destination in dest.ports:
            destination.port.add_producer()
        self._label_counter += 1
        return OutputPort(
            ctx, node, split, schema.tuple_bytes,
            f"out.{node.name}.{self._label_counter}",
        )


class UpdateDriver(GammaDriver):
    """Executes one compiled single-tuple update (Table 3)."""

    def __init__(
        self, ctx: ExecutionContext, catalog: Catalog, update: UpdateIR
    ) -> None:
        super().__init__(ctx, catalog)
        self.update = update
        self.request = update.request
        self.affected = 0

    @property
    def plan(self) -> UpdateIR:
        return self.update

    def host_process(self) -> Generator[Any, Any, None]:
        ctx = self.ctx
        yield Delay(ctx.config.host_startup_s)
        yield from ctx.net.transfer(
            ctx.host_node.name, ctx.scheduler_node.name, 512
        )
        try:
            yield from self._acquire_write_locks()
            yield from self._scheduler()
        finally:
            ctx.locks.release_all(self.txn)
        yield from ctx.net.transfer(
            ctx.scheduler_node.name, ctx.host_node.name, REPLY_BYTES
        )

    def _acquire_write_locks(self) -> Generator[Any, Any, None]:
        """Exclusive locks on every fragment the update may touch.

        The compiler resolved the lock set: a key-attribute modify can
        relocate the tuple anywhere, so it locks the whole relation;
        everything else locks its target site(s).  Canonical sorted order
        keeps the engine deadlock-free; the manager's waits-for detector
        guards everything else.
        """
        from .locks import LockMode

        relation = self.update.relation
        for site in sorted(set(self.update.lock_sites)):
            yield from self.ctx.locks.acquire(
                self.txn, (relation.name, site), LockMode.EXCLUSIVE,
                timeout=self.ctx.lock_timeout,
            )

    def _scheduler(self) -> Generator[Any, Any, None]:
        request = self.request
        if isinstance(request, AppendTuple):
            yield from self._run_append(request)
        elif isinstance(request, DeleteTuple):
            yield from self._run_delete(request)
        elif isinstance(request, ModifyTuple):
            yield from self._run_modify(request)
        else:  # pragma: no cover - UpdateRequest is a closed union
            raise PlanError(f"unknown update request {request!r}")

    def _run_append(self, request: AppendTuple) -> Generator[Any, Any, None]:
        from .operators import append_operator

        ctx = self.ctx
        relation = self.update.relation
        site = self.update.append_site
        assert site is not None
        node = ctx.disk_nodes[site]
        yield from self._initiate(node)
        proc = self._spawn(
            node,
            append_operator(ctx, node, relation.fragments[site], request.record),
            self.update.op_id,
            op_id=self.update.op_id, phase="update",
        )
        results = yield WaitAll([proc])
        self.affected = sum(results)

    def _run_delete(self, request: DeleteTuple) -> Generator[Any, Any, None]:
        from .operators import delete_operator

        ctx = self.ctx
        relation = self.update.relation
        procs = []
        for site in self.update.sites:
            node = ctx.disk_nodes[site]
            yield from self._initiate(node)
            procs.append(
                self._spawn(
                    node,
                    delete_operator(
                        ctx, node, relation.fragments[site], request.where
                    ),
                    f"{self.update.op_id}.{site}",
                    op_id=self.update.op_id, phase="update",
                )
            )
        results = yield WaitAll(procs)
        self.affected = sum(results)

    def _run_modify(self, request: ModifyTuple) -> Generator[Any, Any, None]:
        from .operators import modify_operator, reinsert_operator

        ctx = self.ctx
        relation = self.update.relation
        relocate = self.update.relocate
        procs = []
        for site in self.update.sites:
            node = ctx.disk_nodes[site]
            yield from self._initiate(node)
            procs.append(
                self._spawn(
                    node,
                    modify_operator(
                        ctx, node, relation.fragments[site], request.where,
                        request.attr, request.value, relocate,
                    ),
                    f"{self.update.op_id}.{site}",
                    op_id=self.update.op_id, phase="update",
                )
            )
        results = yield WaitAll(procs)
        outcomes = [r for r in results if r is not None]
        moved = [rec for status, rec in outcomes if status == "relocate"]
        self.affected = len(outcomes)
        # Re-insert relocated tuples at their (possibly new) home site.
        for record in moved:
            new_site = relation.partitioning.site_of(record, relation.n_sites)
            node = ctx.disk_nodes[new_site]
            yield from ctx.net.transfer(
                ctx.scheduler_node.name, node.name,
                relation.schema.tuple_bytes + 64,
            )
            yield from self._initiate(node)
            proc = self._spawn(
                node,
                reinsert_operator(
                    ctx, node, relation.fragments[new_site], record
                ),
                "reinsert",
                op_id=self.update.op_id, phase="update",
            )
            yield WaitAll([proc])


__all__ = [
    "CONTROL_BYTES",
    "REPLY_BYTES",
    "GammaDriver",
    "QueryDriver",
    "UpdateDriver",
]
