"""Aggregate operators (scalar and hash group-by).

The paper ran aggregate queries but cut the table for space ([DEWI88] has
the numbers); the operators are part of Gamma proper, so they are fully
implemented: scans split tuples to aggregate processes (hash on the
grouping attribute, or round-robin for scalar partials), each process folds
its stream, and partial results are combined where necessary.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ...errors import PlanError
from ..node import ExecutionContext, Node
from ..ports import InputPort, OutputPort
from .base import operator_done


class _Accumulator:
    """Running state of one aggregate cell."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.minimum: Optional[Any] = None
        self.maximum: Optional[Any] = None

    def fold(self, value: Any) -> None:
        self.count += 1
        if value is not None:
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def merge(self, other: "_Accumulator") -> None:
        self.count += other.count
        self.total += other.total
        for value in (other.minimum, other.maximum):
            if value is None:
                continue
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    def result(self, op: str) -> Any:
        if op == "count":
            return self.count
        if op == "sum":
            return self.total
        if op == "min":
            return self.minimum
        if op == "max":
            return self.maximum
        if op == "avg":
            return self.total / self.count if self.count else None
        raise PlanError(f"unknown aggregate op {op!r}")

    def as_tuple(self) -> tuple:
        return (self.count, self.total, self.minimum, self.maximum)

    @classmethod
    def from_tuple(cls, values: tuple) -> "_Accumulator":
        acc = cls()
        acc.count, acc.total, acc.minimum, acc.maximum = values
        return acc


def grouped_aggregate_operator(
    ctx: ExecutionContext,
    node: Node,
    port: InputPort,
    value_pos: Optional[int],
    group_pos: int,
    op: str,
    output: OutputPort,
) -> Generator[Any, Any, int]:
    """Hash group-by over a hash-partitioned input stream.

    Because the input split table hashes on the grouping attribute, groups
    are disjoint across nodes and each node emits final ``(group, value)``
    tuples directly.
    """
    costs = ctx.config.costs
    groups: dict[Any, _Accumulator] = {}
    # Every record pays lookup + update; the constants are integer-valued,
    # so the per-batch multiply matches the per-record float fold exactly.
    per_record = costs.aggregate_group_lookup + costs.aggregate_update
    groups_get = groups.get
    work_effect = node.work_effect
    while True:
        packet = yield from port.next_packet()
        if packet is None:
            break
        records = packet.records
        for record in records:
            group = record[group_pos]
            acc = groups_get(group)
            if acc is None:
                acc = groups[group] = _Accumulator()
            acc.fold(record[value_pos] if value_pos is not None else None)
        eff = work_effect(per_record * len(records))
        if eff is not None:
            yield eff
    results = [
        (group, acc.result(op)) for group, acc in sorted(groups.items())
    ]
    yield from node.work(costs.result_tuple * len(results))
    if results:
        yield from output.emit_many(results)
    yield from output.close()
    yield from operator_done(ctx, node)
    return len(results)


def partial_aggregate_operator(
    ctx: ExecutionContext,
    node: Node,
    port: InputPort,
    value_pos: Optional[int],
    output: OutputPort,
) -> Generator[Any, Any, int]:
    """Scalar partial: fold this node's share, emit one accumulator tuple."""
    costs = ctx.config.costs
    acc = _Accumulator()
    folded = 0
    while True:
        packet = yield from port.next_packet()
        if packet is None:
            break
        eff = node.work_effect(costs.aggregate_update * len(packet.records))
        if eff is not None:
            yield eff
        folded += len(packet.records)
        for record in packet.records:
            acc.fold(record[value_pos] if value_pos is not None else None)
    yield from output.emit_many([acc.as_tuple()])
    yield from output.close()
    yield from operator_done(ctx, node)
    return folded


def combine_aggregate_operator(
    ctx: ExecutionContext,
    node: Node,
    port: InputPort,
    op: str,
    output: OutputPort,
) -> Generator[Any, Any, int]:
    """Scalar combiner: merge the per-node partials into the final value."""
    costs = ctx.config.costs
    final = _Accumulator()
    while True:
        packet = yield from port.next_packet()
        if packet is None:
            break
        eff = node.work_effect(costs.aggregate_update * len(packet.records))
        if eff is not None:
            yield eff
        for values in packet.records:
            final.merge(_Accumulator.from_tuple(values))
    yield from output.emit_many([(final.result(op),)])
    yield from output.close()
    yield from operator_done(ctx, node)
    return 1


class AggregateDriver:
    """Drives an aggregation stage: a grouped aggregate hash-partitioned on
    the grouping attribute, or a scalar combine stage fed by per-fragment
    partial accumulators."""

    def run(self, sched: Any, agg: Any, dest: Any) -> Generator[Any, Any, None]:
        ctx = sched.ctx
        nodes = ctx.placement_nodes(agg.placement)
        value_pos = (
            agg.child.schema.position(agg.attr) if agg.attr is not None else None
        )
        if agg.group_by is not None:
            yield from self._run_grouped(sched, agg, dest, nodes, value_pos)
        else:
            yield from self._run_scalar(sched, agg, dest, nodes, value_pos)

    def _run_grouped(
        self, sched: Any, agg: Any, dest: Any, nodes: list[Node],
        value_pos: Optional[int],
    ) -> Generator[Any, Any, None]:
        from ...sim import WaitAll
        from ..split_table import Destination

        ctx = sched.ctx
        group_pos = agg.child.schema.position(agg.group_by)
        ports: list[Destination] = []
        procs = []
        for idx, node in enumerate(nodes):
            port = InputPort(ctx, f"{agg.op_id}.{idx}", node)
            ports.append(Destination(node.name, port))
            output = sched._make_output(node, dest, agg.schema)
            yield from sched._initiate(node)
            procs.append(
                sched._spawn(
                    node,
                    grouped_aggregate_operator(
                        ctx, node, port, value_pos, group_pos, agg.op, output
                    ),
                    f"{agg.op_id}.{idx}",
                    op_id=agg.op_id, phase="fold",
                )
            )
        yield from sched.run_op(
            agg.source, sched.lower_exchange(agg.exchange, ports)
        )
        yield WaitAll(procs)

    def _run_scalar(
        self, sched: Any, agg: Any, dest: Any, nodes: list[Node],
        value_pos: Optional[int],
    ) -> Generator[Any, Any, None]:
        from ...sim import WaitAll
        from ..split_table import Destination

        ctx = sched.ctx
        partial = agg.source  # the "partial" stage feeding this combine
        combiner_node = nodes[0]
        combine_port = InputPort(ctx, f"{agg.op_id}.combine", combiner_node)
        yield from sched._initiate(combiner_node)
        final_output = sched._make_output(combiner_node, dest, agg.schema)
        combine_proc = sched._spawn(
            combiner_node,
            combine_aggregate_operator(
                ctx, combiner_node, combine_port, agg.op, final_output
            ),
            f"{agg.op_id}.combine",
            op_id=agg.op_id, phase="combine",
        )
        combine_dest = sched.lower_exchange(
            agg.exchange,
            [Destination(combiner_node.name, combine_port)],
        )
        ports: list[Destination] = []
        procs = []
        for idx, node in enumerate(nodes):
            port = InputPort(ctx, f"{partial.op_id}.{idx}", node)
            ports.append(Destination(node.name, port))
            output = sched._make_output(node, combine_dest, partial.schema)
            yield from sched._initiate(node)
            procs.append(
                sched._spawn(
                    node,
                    partial_aggregate_operator(ctx, node, port, value_pos, output),
                    f"{partial.op_id}.{idx}",
                    op_id=partial.op_id, phase="fold",
                )
            )
        yield from sched.run_op(
            partial.source, sched.lower_exchange(partial.exchange, ports)
        )
        yield WaitAll(procs)
        yield WaitAll([combine_proc])
