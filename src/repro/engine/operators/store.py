"""The store operator: writes result tuples at a disk site.

"If the result of a query is a new relation, the operators at the root of
the query tree distribute the result tuples on a round-robin basis to store
operators at each disk site which assume the responsibility for writing the
result tuples to disk" (Section 2).
"""

from __future__ import annotations

from typing import Any, Generator

from ...storage import Schema, StoredFile
from ..node import ExecutionContext, Node
from ..ports import EndOfStream, InputPort
from .base import operator_done


def store_operator(
    ctx: ExecutionContext,
    node: Node,
    port: InputPort,
    fragment: StoredFile,
) -> Generator[Any, Any, int]:
    """Append incoming tuples to ``fragment``, writing pages as they fill.

    Returns the number of tuples stored.  Gamma's QUEL ``retrieve into``
    creates a brand-new file, so no logging beyond the (cheap) create is
    needed — the big Table 1/2 asymmetry against Teradata's logged
    ``insert into``.
    """
    costs = ctx.config.costs
    heap = fragment.heap
    pages_flushed = 0
    stored = 0
    store_tuple = costs.store_tuple
    work_effect = node.work_effect
    flat = ctx.profiler is None and ctx.trace is None
    get_effect = port._get_effect
    receive = port.receive_effect
    while port.expected_producers == 0 or (
        port._eos_seen < port.expected_producers
    ):
        # Flattened receive loop (see join.build_consumer): identical
        # effects, no next_packet generator per packet.
        if flat:
            message = yield get_effect
            if type(message) is EndOfStream:
                port._eos_seen += 1
                continue
            eff = receive(message)
            if eff is not None:
                yield eff
        else:
            message = yield from port.next_packet()
            if message is None:
                break
        records = message.records
        n_records = len(records)
        stored += n_records
        eff = work_effect(store_tuple * n_records)
        if eff is not None:
            yield eff
        if ctx.recovery_log is not None:
            # Write-ahead: the batch's log records must be durable at the
            # recovery server before its data pages go out.
            yield from ctx.recovery_log.ship(
                node, n_records,
                n_records * fragment.schema.tuple_bytes,
            )
        heap.bulk_append(records)
        # Every page except the still-filling tail is written out.
        while pages_flushed < heap.num_pages - 1:
            yield from node.write_page(fragment.name, pages_flushed)
            pages_flushed += 1
    while pages_flushed < heap.num_pages:
        yield from node.write_page(fragment.name, pages_flushed)
        pages_flushed += 1
    yield from operator_done(ctx, node)
    return stored


def make_result_fragment(
    ctx: ExecutionContext, name: str, schema: Schema, site: int
) -> StoredFile:
    """An empty fragment for a result relation at ``site``."""
    return StoredFile(
        f"{name}.f{site}", schema, ctx.config.page_size
    )


def host_sink_operator(
    ctx: ExecutionContext,
    port: InputPort,
    collected: list[tuple],
) -> Generator[Any, Any, int]:
    """Host-side consumer for queries that return tuples to the host."""
    while True:
        packet = yield from port.next_packet()
        if packet is None:
            break
        collected.extend(packet.records)
    return len(collected)


class StoreDriver:
    """Drives the store stage: one store operator per disk site, result
    tuples sprayed round-robin (Section 2)."""

    def start(
        self, sched: Any, store: Any
    ) -> Generator[Any, Any, tuple[list[Any], Any]]:
        from ..split_table import Destination

        ctx = sched.ctx
        procs: list[Any] = []
        ports: list[Destination] = []
        for site, node in enumerate(ctx.placement_nodes(store.placement)):
            fragment = make_result_fragment(ctx, store.into, store.schema, site)
            sched.result_fragments.append(fragment)
            port = InputPort(ctx, f"{store.op_id}.{site}", node)
            ports.append(Destination(node.name, port))
            yield from sched._initiate(node)
            procs.append(
                sched._spawn(node, store_operator(ctx, node, port, fragment),
                             f"{store.op_id}.{site}",
                             op_id=store.op_id, phase="store")
            )
        return procs, sched.lower_exchange(store.exchange, ports)


class HostSinkDriver:
    """Drives the host sink: one merge consumer on the host processor."""

    def start(self, sched: Any, sink: Any) -> tuple[list[Any], Any]:
        from ..split_table import Destination

        ctx = sched.ctx
        (host,) = ctx.placement_nodes(sink.placement)
        port = InputPort(ctx, sink.op_id, host)
        proc = ctx.sim.spawn(
            host_sink_operator(ctx, port, sched.collected), name=sink.op_id
        )
        if ctx.profiler is not None:
            ctx.profiler.register(proc, sink.op_id, "sink")
        dest = sched.lower_exchange(
            sink.exchange, [Destination(host.name, port)]
        )
        return [proc], dest
