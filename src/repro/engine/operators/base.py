"""Shared operator-process machinery: spool files and destination specs.

Operator processes are plain generator functions spawned on a node; they
read packets from an :class:`~repro.engine.ports.InputPort`, do their work
(charging CPU to the node), emit through an
:class:`~repro.engine.ports.OutputPort`, and finish by sending a completion
message to the scheduler (modelled by the scheduler joining the process
plus one control-message transfer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Iterator, Optional

from ...storage import records_per_page
from ..node import ExecutionContext, Node


@dataclass(frozen=True)
class DestSpec:
    """How a producer should split its output.

    Attributes:
        kind: ``hash`` | ``fn`` | ``rr`` | ``single``.
        attr: Split attribute (hash/fn splits only).
        ports: The consuming (node_name, InputPort) destinations.
        bit_filter: Optional bit-vector filter installed in the split.
        route_fn: Value→destination-index function (``fn`` splits; used
            for the post-overflow hash switch).
    """

    kind: str
    ports: list[Any]  # list[Destination]
    attr: Optional[str] = None
    bit_filter: Optional[Any] = None
    route_fn: Optional[Any] = None


class SpoolFile:
    """A temporary file of overflow tuples owned by one operator.

    Disk sites spool to their own drive; diskless processors are assigned a
    disk site and every page travels the network both ways.  This is the
    I/O that makes the Simple hash join "deteriorate exponentially with
    multiple overflows" (Section 6.1).
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        owner: Node,
        label: str,
        record_bytes: int,
    ) -> None:
        self.ctx = ctx
        self.owner = owner
        self.target = ctx.spool_target(owner)
        self.file_id = ctx.temp_file_id(label)
        self.record_bytes = record_bytes
        self.per_page = records_per_page(ctx.config.page_size, record_bytes)
        self.records: list[tuple] = []
        self._unwritten = 0
        self._pages_written = 0

    def __len__(self) -> int:
        return len(self.records)

    @property
    def num_pages(self) -> int:
        return self._pages_written

    def add_batch(
        self, records: list[tuple], sender: Optional[Node] = None
    ) -> Generator[Any, Any, None]:
        """Spool a batch, writing any page that fills.

        ``sender`` is the node doing the spooling (defaults to the owner):
        it pays the per-tuple CPU, and pages it writes to a remote spool
        site cross the network.
        """
        if not records:
            return
        sender = sender or self.owner
        costs = sender.config.costs
        eff = sender.work_effect(costs.spool_tuple * len(records))
        if eff is not None:
            yield eff
        self.records.extend(records)
        self._unwritten += len(records)
        while self._unwritten >= self.per_page:
            yield from self._write_page(sender)
            self._unwritten -= self.per_page

    def flush(self) -> Generator[Any, Any, None]:
        """Force the final partial page out."""
        if self._unwritten > 0:
            yield from self._write_page(self.owner)
            self._unwritten = 0

    def _write_page(self, sender: Node) -> Generator[Any, Any, None]:
        page_no = self._pages_written
        self._pages_written += 1
        self.ctx.metrics.record_spool_write(sender.name)
        if self.target is not sender:
            yield from self.ctx.net.transfer(
                sender.name, self.target.name, self.ctx.config.page_size
            )
        yield from self.target.write_page(self.file_id, page_no)

    def read_pages(self) -> Iterator[tuple[int, list[tuple]]]:
        """Page-granularity view of the spooled records (functional)."""
        for page_no in range(0, len(self.records), self.per_page):
            yield (
                page_no // self.per_page,
                self.records[page_no:page_no + self.per_page],
            )

    def read_page_io(self, page_no: int) -> Generator[Any, Any, None]:
        """Charge the I/O (and network, if remote) of reading one page."""
        self.ctx.metrics.record_spool_read(self.owner.name)
        yield from self.target.read_page(self.file_id, page_no)
        if self.target is not self.owner:
            yield from self.ctx.net.transfer(
                self.target.name, self.owner.name, self.ctx.config.page_size
            )


def operator_done(
    ctx: ExecutionContext, node: Node
) -> Generator[Any, Any, None]:
    """The completion control message an operator sends its scheduler."""
    ctx.metrics.record_control_message(node.name)
    yield from ctx.net.transfer(node.name, ctx.scheduler_node.name, 64)
