"""Single-tuple update operators (Table 3).

Gamma runs update operators only on the disk sites.  An update addressed by
the partitioning attribute goes to exactly one site; otherwise every site
is activated and each performs a local index lookup, with only the owning
site mutating anything.  Updates that go through an index structure also
write a *deferred update file* for the index — Gamma's solution to the
Halloween problem — whose cost is visible between rows one and two of
Table 3.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ...storage import RID, PageAccess, StoredFile
from ..node import ExecutionContext, Node
from ..plan import ExactMatch
from .base import operator_done


def _charge_accesses(
    node: Node, accesses: list[PageAccess]
) -> Generator[Any, Any, None]:
    """Replay the page touches reported by the storage layer."""
    for access in accesses:
        if access.write:
            yield from node.write_page(
                access.file_id, access.page_no, sequential=False
            )
        else:
            yield from node.read_page(
                access.file_id, access.page_no, sequential=False
            )


def _charge_deferred_update(
    ctx: ExecutionContext, node: Node, label: str
) -> Generator[Any, Any, None]:
    """Create/append/force the deferred update file for an index change."""
    file_id = ctx.temp_file_id(f"dfr.{label}")
    for page_no in range(ctx.config.deferred_update_ios):
        yield from node.write_page(file_id, page_no, sequential=False)
    ctx.metrics.add("deferred_update_files")


def _ship_log(
    ctx: ExecutionContext, node: Node, fragment: StoredFile
) -> Generator[Any, Any, None]:
    """One log record per single-tuple update (when the recovery server
    of the Conclusions is enabled), forced before the update commits."""
    if ctx.recovery_log is not None:
        yield from ctx.recovery_log.ship(
            node, 1, fragment.schema.tuple_bytes, force=True
        )


def _locate(
    ctx: ExecutionContext,
    node: Node,
    fragment: StoredFile,
    where: ExactMatch,
) -> Generator[Any, Any, Optional[tuple[RID, tuple]]]:
    """Find the target tuple on this fragment via the best access path."""
    costs = ctx.config.costs
    if where.attr == fragment.clustered_on:
        accesses, hit = fragment.exact_match_clustered(where.value)
    elif where.attr in fragment.secondary:
        accesses, hit = fragment.exact_match_secondary(where.attr, where.value)
    else:
        # No index: scan this fragment's pages until found.
        accesses, hit = [], None
        predicate_pos = fragment.schema.position(where.attr)
        for page_no, page in fragment.heap.scan_pages():
            yield from node.read_page(fragment.name, page_no)
            records = list(page.slotted_records())
            yield from node.work(
                costs.page_io_setup
                + len(records) * (costs.read_tuple + costs.apply_predicate)
            )
            for slot, record in records:
                if record[predicate_pos] == where.value:
                    hit = (RID(page_no, slot), record)
                    break
            if hit is not None:
                break
        return hit
    for access in accesses:
        yield from node.read_page(access.file_id, access.page_no, sequential=False)
        yield from node.work(costs.btree_level)
    return hit


def append_operator(
    ctx: ExecutionContext,
    node: Node,
    fragment: StoredFile,
    record: tuple,
) -> Generator[Any, Any, int]:
    """Append one tuple to this site's fragment, maintaining indexes."""
    costs = ctx.config.costs
    uses_index = bool(fragment.secondary) or fragment.clustered_on is not None
    rid, accesses = fragment.append(record)
    yield from node.work(
        costs.update_tuple
        + costs.index_maintenance * (len(fragment.secondary)
                                     + (1 if fragment.clustered_on else 0))
    )
    yield from _charge_accesses(node, accesses)
    if uses_index:
        yield from _charge_deferred_update(ctx, node, "append")
    yield from _ship_log(ctx, node, fragment)
    yield from operator_done(ctx, node)
    return 1


def delete_operator(
    ctx: ExecutionContext,
    node: Node,
    fragment: StoredFile,
    where: ExactMatch,
) -> Generator[Any, Any, int]:
    """Delete the tuple matching ``where`` if it lives on this site."""
    costs = ctx.config.costs
    hit = yield from _locate(ctx, node, fragment, where)
    if hit is None:
        yield from operator_done(ctx, node)
        return 0
    rid, _record = hit
    used_index = fragment.has_index_on(where.attr)
    _deleted, accesses = fragment.delete_record(rid)
    yield from node.work(
        costs.update_tuple + costs.index_maintenance * len(fragment.secondary)
    )
    yield from _charge_accesses(node, accesses)
    if used_index or fragment.secondary:
        yield from _charge_deferred_update(ctx, node, "delete")
    yield from _ship_log(ctx, node, fragment)
    yield from operator_done(ctx, node)
    return 1


def modify_operator(
    ctx: ExecutionContext,
    node: Node,
    fragment: StoredFile,
    where: ExactMatch,
    attr: str,
    value: Any,
    relocate: bool,
) -> Generator[Any, Any, Optional[tuple]]:
    """Set ``attr = value`` on the matching tuple of this fragment.

    ``relocate`` is set by the scheduler when the modified attribute is the
    partitioning or clustering key, so the tuple must move (Table 3 row 4:
    "the modified attribute is the key attribute, thus requiring that the
    tuple be relocated").

    Returns None when the tuple is not on this fragment,
    ``("inplace", None)`` after an in-place change, or
    ``("relocate", new_record)`` when the scheduler must re-insert the
    record at its new home site.
    """
    costs = ctx.config.costs
    hit = yield from _locate(ctx, node, fragment, where)
    if hit is None:
        yield from operator_done(ctx, node)
        return None
    rid, record = hit
    pos = fragment.schema.position(attr)
    new_record = record[:pos] + (value,) + record[pos + 1:]
    relocating = relocate or attr == fragment.clustered_on
    index_touched = fragment.has_index_on(attr)
    if relocating:
        # Key change: the tuple moves position (delete + re-insert).
        _old, del_accesses = fragment.delete_record(rid)
        yield from _charge_accesses(node, del_accesses)
        yield from node.work(
            costs.update_tuple
            + costs.index_maintenance * (1 + len(fragment.secondary))
        )
        yield from _charge_deferred_update(ctx, node, "modify-key")
        yield from _ship_log(ctx, node, fragment)
        yield from operator_done(ctx, node)
        return ("relocate", new_record)
    _old, accesses = fragment.replace_record(rid, new_record)
    yield from node.work(
        costs.update_tuple
        + (costs.index_maintenance if index_touched else 0.0)
    )
    yield from _charge_accesses(node, accesses)
    if index_touched:
        yield from _charge_deferred_update(ctx, node, "modify")
    yield from _ship_log(ctx, node, fragment)
    yield from operator_done(ctx, node)
    return ("inplace", None)


def reinsert_operator(
    ctx: ExecutionContext,
    node: Node,
    fragment: StoredFile,
    record: tuple,
) -> Generator[Any, Any, int]:
    """Second half of a cross-site relocation: insert at the new home."""
    result = yield from append_operator(ctx, node, fragment, record)
    return result
