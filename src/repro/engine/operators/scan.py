"""Selection operators: file scan and index scans.

Each selection runs on the disk site holding the fragment.  A file scan
uses double-buffered read-ahead (a feeder process fills a bounded store of
pages) so the response time is the *maximum* of disk and CPU demand, like
the overlapped I/O of the real machine.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ...sim import Get, Put, Store
from ...storage import StoredFile
from ..node import ExecutionContext, Node
from ..ports import OutputPort
from .base import operator_done

_FEED_END = object()


def _page_feeder(
    node: Node,
    fragment: StoredFile,
    feed: Store,
) -> Generator[Any, Any, None]:
    """Read-ahead process: stream data pages into a bounded store."""
    read_effect = node.read_page_effect
    name = fragment.name
    # One mutable Put reused per page: the kernel reads .item synchronously
    # at the yield (and by value on the blocked path), so the instance
    # never needs to outlive the next page.
    put_effect = Put(feed, None)
    for page_no, records in fragment.scan_pages():
        eff = read_effect(name, page_no)
        if eff is not None:
            yield eff
        put_effect.item = (page_no, records)
        yield put_effect
    put_effect.item = _FEED_END
    yield put_effect


def file_scan_operator(
    ctx: ExecutionContext,
    node: Node,
    fragment: StoredFile,
    predicate: Callable[[list[tuple]], list[tuple]],
    output: OutputPort,
) -> Generator[Any, Any, int]:
    """Sequential scan of one fragment; returns the match count.

    ``predicate`` is a *batch* predicate (``Predicate.compile_batch``):
    it maps a page's records to the matching records in one pass.
    """
    costs = ctx.config.costs
    feed = Store(f"{node.name}.feed", capacity=ctx.config.prefetch_depth)
    ctx.sim.spawn(_page_feeder(node, fragment, feed), name=f"feeder:{node.name}")
    matched = 0
    per_tuple = costs.read_tuple + costs.apply_predicate
    setup = costs.page_io_setup
    work_effect = node.work_effect
    get_feed = Get(feed)
    while True:
        item = yield get_feed
        if item is _FEED_END:
            break
        _page_no, records = item
        eff = work_effect(setup + len(records) * per_tuple)
        if eff is not None:
            yield eff
        matches = predicate(records)
        matched += len(matches)
        if matches:
            yield from output.emit_many(matches)
    yield from output.close()
    yield from operator_done(ctx, node)
    return matched


def clustered_index_scan_operator(
    ctx: ExecutionContext,
    node: Node,
    fragment: StoredFile,
    low: Any,
    high: Any,
    output: OutputPort,
) -> Generator[Any, Any, int]:
    """Range selection through the clustered (sparse) B+-tree.

    Only the data pages covering [low, high] are read, sequentially; the
    index descent costs one random read per level (root usually hits the
    buffer pool on repeated queries).
    """
    costs = ctx.config.costs
    tree = fragment.clustered_index
    descent, pages = fragment.clustered_scan(low, high)
    for page_id in descent:
        yield from node.read_page(tree.name, page_id, sequential=False)
        yield from node.work(costs.btree_level)
    matched = 0
    per_tuple = costs.read_tuple + costs.apply_predicate
    for page_no, matches in pages:
        eff = node.read_page_effect(fragment.name, page_no)
        if eff is not None:
            yield eff
        eff = node.work_effect(costs.page_io_setup + len(matches) * per_tuple)
        if eff is not None:
            yield eff
        matched += len(matches)
        if matches:
            yield from output.emit_many(matches)
    yield from output.close()
    yield from operator_done(ctx, node)
    return matched


def nonclustered_index_scan_operator(
    ctx: ExecutionContext,
    node: Node,
    fragment: StoredFile,
    attr: str,
    low: Any,
    high: Any,
    output: OutputPort,
) -> Generator[Any, Any, int]:
    """Range selection through a dense non-clustered B+-tree.

    Every qualifying tuple costs one *random* data-page read (unless the
    buffer pool still holds the page) — "each disk page read requires a
    random seek" — which is why this path wins only at low selectivities
    and degrades as the page size grows (Figures 7-8).
    """
    costs = ctx.config.costs
    tree = fragment.secondary[attr]
    descent, entries = fragment.secondary_range(attr, low, high)
    for page_id in descent:
        yield from node.read_page(tree.name, page_id, sequential=False)
        yield from node.work(costs.btree_level)
    matched = 0
    current_leaf: Optional[int] = descent[-1] if descent else None
    batch: list[tuple] = []
    work_effect = node.work_effect
    for leaf_page, _key, rid in entries:
        if leaf_page != current_leaf:
            # Leaf chain advances to the next index page.
            eff = node.read_page_effect(tree.name, leaf_page, sequential=False)
            if eff is not None:
                yield eff
            eff = work_effect(costs.page_io_setup)
            if eff is not None:
                yield eff
            current_leaf = leaf_page
        eff = work_effect(costs.index_entry)
        if eff is not None:
            yield eff
        yield node.read_page_uncached_effect(fragment.name, rid.page_no)
        record = fragment.fetch(rid)
        eff = work_effect(costs.read_tuple)
        if eff is not None:
            yield eff
        matched += 1
        batch.append(record)
        if len(batch) >= 32:
            yield from output.emit_many(batch)
            batch = []
    if batch:
        yield from output.emit_many(batch)
    yield from output.close()
    yield from operator_done(ctx, node)
    return matched


def exact_match_operator(
    ctx: ExecutionContext,
    node: Node,
    fragment: StoredFile,
    attr: str,
    value: Any,
    output: OutputPort,
    use_clustered: bool,
) -> Generator[Any, Any, int]:
    """Single-tuple selection through an index (clustered or secondary)."""
    costs = ctx.config.costs
    if use_clustered:
        accesses, hit = fragment.exact_match_clustered(value)
    else:
        accesses, hit = fragment.exact_match_secondary(attr, value)
    for access in accesses:
        yield from node.read_page(access.file_id, access.page_no, sequential=False)
        yield from node.work(costs.btree_level)
    matched = 0
    if hit is not None:
        _rid, record = hit
        yield from node.work(costs.read_tuple + costs.apply_predicate)
        yield from output.emit_many([record])
        matched = 1
    yield from output.close()
    yield from operator_done(ctx, node)
    return matched


class ScanDriver:
    """Drives a :class:`~repro.engine.ir.ScanOp`: the scheduler activates
    one selection operator per stored fragment, each emitting through the
    destination exchange."""

    def run(self, sched: Any, scan: Any, dest: Any) -> Generator[Any, Any, None]:
        from ...sim import WaitAll

        ctx = sched.ctx
        # Register every producer on the destination ports *before* any
        # scan starts: a fast site must not deliver its EndOfStream while a
        # sibling is still unregistered.
        outputs = {
            site: sched._make_output(ctx.disk_nodes[site], dest, scan.schema)
            for site in scan.sites
        }
        procs = []
        for site in scan.sites:
            node = ctx.disk_nodes[site]
            yield from sched._initiate(node)
            gen = self._generator(ctx, scan, site, node, outputs[site])
            procs.append(
                sched._spawn(
                    node, gen,
                    f"{scan.op_id}.{scan.relation.name}.{site}",
                    op_id=scan.op_id, phase="scan",
                )
            )
        yield WaitAll(procs)

    def _generator(
        self, ctx: ExecutionContext, scan: Any, site: int, node: Node,
        output: OutputPort,
    ) -> Generator[Any, Any, int]:
        from ...errors import PlanError
        from ..plan import AccessPath

        fragment = scan.relation.fragments[site]
        predicate = scan.predicate
        path = scan.path
        if path is AccessPath.FILE_SCAN:
            compiled = predicate.compile_batch(scan.schema)
            return file_scan_operator(ctx, node, fragment, compiled, output)
        if path is AccessPath.CLUSTERED_INDEX:
            low, high = self._bounds(predicate)
            return clustered_index_scan_operator(
                ctx, node, fragment, low, high, output
            )
        if path is AccessPath.NONCLUSTERED_INDEX:
            low, high = self._bounds(predicate)
            return nonclustered_index_scan_operator(
                ctx, node, fragment, predicate.attr, low, high, output
            )
        if path is AccessPath.CLUSTERED_EXACT:
            return exact_match_operator(
                ctx, node, fragment, predicate.attr, predicate.value,
                output, use_clustered=True,
            )
        if path is AccessPath.NONCLUSTERED_EXACT:
            return exact_match_operator(
                ctx, node, fragment, predicate.attr, predicate.value,
                output, use_clustered=False,
            )
        raise PlanError(f"unsupported access path {path}")

    @staticmethod
    def _bounds(predicate: Any) -> tuple[Any, Any]:
        from ...errors import PlanError
        from ..plan import ExactMatch, RangePredicate

        if isinstance(predicate, RangePredicate):
            return predicate.low, predicate.high
        if isinstance(predicate, ExactMatch):
            return predicate.value, predicate.value
        raise PlanError(f"predicate {predicate!r} has no bounds")
