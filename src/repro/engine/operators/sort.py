"""The parallel sort operator.

Each sort process receives a disjoint key slice of the stream (the split
table range-partitions on the sort attribute using boundaries from catalog
statistics), sorts its slice with the WiSS external sort — spool I/O goes
to the node's assigned disk site — and then emits in *slice order*: node
``i`` waits for node ``i-1``'s completion token before sending, so the
consumer sees one globally ordered stream.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ...sim import Get, Put, Store
from ...storage import external_sort
from ..node import ExecutionContext, Node
from ..ports import InputPort, OutputPort
from .base import SpoolFile, operator_done

#: Tuples emitted per output batch while streaming the sorted slice.
EMIT_BATCH = 64


def sort_operator(
    ctx: ExecutionContext,
    node: Node,
    port: InputPort,
    key_pos: int,
    descending: bool,
    tuple_bytes: int,
    output: OutputPort,
    go: Optional[Store],
    done: Optional[Store],
    successor: Optional[str] = None,
) -> Generator[Any, Any, int]:
    """Sort one key slice; emit it when the predecessor slice finishes."""
    costs = ctx.config.costs
    records = yield from port.drain()
    memory = max(ctx.config.page_size, ctx.config.join_memory_per_node)
    ordered, stats = external_sort(
        records,
        key=lambda r: r[key_pos],
        record_bytes=tuple_bytes,
        page_size=ctx.config.page_size,
        memory_bytes=memory,
    )
    if descending:
        ordered.reverse()
    yield from node.work(
        costs.sort_tuple_pass * stats.n_records * (1 + stats.merge_passes)
    )
    if stats.merge_passes > 0:
        # Run formation + merge passes spill through the spool disk.
        spool = SpoolFile(ctx, node, "sort", tuple_bytes)
        for page_no in range(stats.pages_written):
            yield from spool.target.write_page(spool.file_id, page_no)
        for page_no in range(stats.pages_read):
            yield from spool.target.read_page(
                spool.file_id, page_no % max(1, stats.n_pages)
            )
        ctx.metrics.add("sort_spill_pages", stats.total_page_ios)
    if go is not None:
        yield Get(go)  # wait for the preceding slice to finish emitting
    for start in range(0, len(ordered), EMIT_BATCH):
        yield from output.emit_many(ordered[start:start + EMIT_BATCH])
    # Put the whole slice on the wire, then pass the hand-off token along
    # the same FIFO network path so the successor's tuples cannot overtake
    # this slice's tail.
    yield from output.flush_all()
    if done is not None:
        if successor is not None:
            yield from ctx.net.transfer(node.name, successor, 64)
        yield Put(done, node.name)
    yield from output.close()
    yield from operator_done(ctx, node)
    return len(ordered)


class SortDriver:
    """Drives a parallel range sort: disjoint key slices, emitted in order.

    The child stream is range-split by the optimizer's boundaries; each
    sorter orders its slice (external sort, spill to its spool disk site),
    then the slices emit one after another via a token chain so the
    destination receives a globally ordered stream.
    """

    def run(self, sched: Any, sort: Any, dest: Any) -> Generator[Any, Any, None]:
        from ...sim import WaitAll
        from ..split_table import Destination

        ctx = sched.ctx
        nodes = ctx.placement_nodes(sort.placement)
        boundaries = sort.exchange.boundaries
        if boundaries is None:
            nodes = nodes[:1]
        ports: list[Destination] = []
        procs = []
        tokens: list[Store] = [
            Store(f"{sort.op_id}.tok.{i}") for i in range(len(nodes))
        ]
        emit_order = list(range(len(nodes)))
        if sort.descending:
            emit_order.reverse()
        chain_pos = {node_idx: k for k, node_idx in enumerate(emit_order)}
        for idx, node in enumerate(nodes):
            port = InputPort(ctx, f"{sort.op_id}.{idx}", node)
            ports.append(Destination(node.name, port))
            output = sched._make_output(node, dest, sort.schema)
            yield from sched._initiate(node)
            position = chain_pos[idx]
            go = tokens[emit_order[position - 1]] if position > 0 else None
            done = tokens[idx]
            successor = (
                nodes[emit_order[position + 1]].name
                if position + 1 < len(emit_order) else None
            )
            procs.append(
                sched._spawn(
                    node,
                    sort_operator(
                        ctx, node, port, sort.key_pos, sort.descending,
                        sort.schema.tuple_bytes, output, go, done,
                        successor,
                    ),
                    f"{sort.op_id}.{idx}",
                    op_id=sort.op_id, phase="sort",
                )
            )
        yield from sched.run_op(
            sort.source, sched.lower_exchange(sort.exchange, ports)
        )
        yield WaitAll(procs)
