"""Parallel Hybrid hash join [DEWI84, DEWI85] — the paper's announced fix.

The Conclusions call the Simple hash join's overflow behaviour one of
Gamma's "most glaring deficiencies" and announce its replacement with "a
parallel version of the Hybrid hash-join algorithm".  This module
implements that replacement (the algorithm later measured in the 1990
Gamma paper) so the repository can quantify the improvement (ablation A2).

The idea: instead of reacting to overflow by evicting and recursing, each
node *plans* its memory use up front from the optimizer's estimate of the
building relation.  The key space is cut into ``k`` partitions — partition
0 sized to fill memory and built immediately; partitions 1..k-1 spooled to
node-local temporary files on both the build and probe sides.  Afterwards
the spooled partition pairs are joined one at a time, each tuple written
and read exactly once: degradation is *linear* in the memory deficit, not
exponential.

That plan is only as good as the estimate, so the join also watches the
bytes it actually observes (the design space of "Design Trade-offs for a
Robust Dynamic Hybrid Hash Join").  Three spill policies, selected by
:class:`~repro.engine.ir.SpillConfig`:

* ``static`` — trust the plan.  When the resident partition still
  exceeds capacity, excess build tuples go to an overflow spool and every
  resident-region probe is routed both to memory and to disk: correct,
  but the probe side pays for the estimate error.
* ``demote`` — on overflow, halve the resident key region and evict its
  buckets to a newly created spooled partition until the table fits.
  Only the demoted fraction of the probe side is spooled.
* ``dynamic`` — start optimistically all-in-memory, demote on demand,
  and recursively re-partition any spooled pair whose build side still
  exceeds memory during the resolution sweep (bounded depth, falling
  back to chunk-and-rescan at the bound).

All three are deterministic: demotion walks the insertion-ordered hash
table, and every cut is a pure function of the key hash.  Under the
default ``static`` policy, a run whose capacity is never exceeded is
bit-identical to the purely planned algorithm.
"""

from __future__ import annotations

from collections import defaultdict, deque
from math import ceil
from typing import Any, Generator, Optional

from ..bitfilter import BitVectorFilter
from ..ir import SpillConfig
from ..node import ExecutionContext, Node
from ..ports import EndOfStream, InputPort, OutputPort
from .base import SpoolFile, operator_done
from .join import _h2

#: Cache of sequential per-record charge folds, keyed by
#: (per-record cost components, record count).  Bounded: long matrix
#: sweeps in one process would otherwise accumulate one entry per
#: distinct packet size forever.
_charge_cache: dict[tuple[tuple[float, ...], int], float] = {}
_CHARGE_CACHE_MAX = 4096

#: Overflow reactions trigger past ``capacity * OVERFLOW_SLACK``, not the
#: instant capacity is crossed: the plan sizes partition 0 at 0.95 of
#: capacity precisely to absorb per-node distribution variance of the
#: hash split, so single-digit overruns are expected noise.  Genuine
#: estimate error (the case the spill policies exist for) overshoots by
#: integer factors and blows far past the slack.
OVERFLOW_SLACK = 1.10


def _repeat_charge(parts: tuple[float, ...], n: int) -> float:
    """The sequential float fold of charging ``parts`` once per record.

    Replaying the exact per-record addition order once per distinct
    ``(parts, n)`` — instead of on every packet — keeps accumulated packet
    charges bit-identical to the original inner loop: float addition is
    not associative, so ``n * sum(parts)`` would drift.
    """
    key = (parts, n)
    total = _charge_cache.get(key)
    if total is None:
        total = 0.0
        for _ in range(n):
            for part in parts:
                total += part
        if len(_charge_cache) >= _CHARGE_CACHE_MAX:
            # Evicting the oldest entry is safe: recomputation is
            # bit-identical, the cache is purely a wall-clock win.
            del _charge_cache[next(iter(_charge_cache))]
        _charge_cache[key] = total
    return total


class PartitionPlan:
    """Pure key-space layout of one node's hybrid join.

    The unit interval of ``_h2(key, 0)`` is cut into regions:

    * ``[0, fraction0)`` — memory-resident (partition 0);
    * ``[static_cut, 1.0)`` — the statically planned spool partitions
      ``1..n_static-1``, equal slices;
    * ``[fraction0, static_cut)`` — demoted slices, one per
      :meth:`demote` call, newest (lowest) last in ``cuts``.

    With no demotions ``fraction0 == static_cut`` and routing is exactly
    the planned Hybrid layout.  Kept free of simulator state so tests can
    exercise the routing arithmetic directly.
    """

    __slots__ = ("n_static", "fraction0", "static_cut", "cuts")

    def __init__(
        self,
        expected_bytes: float,
        capacity_bytes: int,
        forced_partitions: int = 0,
        optimistic: bool = False,
    ) -> None:
        expected_bytes = max(1.0, expected_bytes)
        if forced_partitions > 0:
            n = forced_partitions
        elif optimistic:
            # Dynamic policy: assume memory suffices, demote on demand.
            n = 1
        else:
            n = max(1, ceil(expected_bytes * 1.05 / capacity_bytes))
        if forced_partitions == 1 or (optimistic and forced_partitions <= 0):
            fraction0 = 1.0
        else:
            fraction0 = min(1.0, capacity_bytes * 0.95 / expected_bytes)
        self.n_static = n
        self.fraction0 = fraction0
        self.static_cut = fraction0
        self.cuts: list[float] = []

    @property
    def n_partitions(self) -> int:
        """Planned partitions plus demoted slices."""
        return self.n_static + len(self.cuts)

    def partition_of(self, key: Any) -> int:
        """0 = memory-resident; 1..k-1 = spooled partitions."""
        h = _h2(key, 0)
        if h < self.fraction0:
            return 0
        if h >= self.static_cut and self.n_static > 1:
            rest = (h - self.static_cut) / max(1e-12, 1.0 - self.static_cut)
            return 1 + min(self.n_static - 2, int(rest * (self.n_static - 1)))
        for i, cut in enumerate(self.cuts):
            if h >= cut:
                return self.n_static + i
        return 0

    def demote(self) -> float:
        """Halve the resident key region; returns the new lower cut.

        The evicted slice ``[cut, old fraction0)`` becomes spooled
        partition ``n_static + len(cuts) - 1``.  Once the region is
        vanishingly small the cut snaps to 0.0 (everything spools) so
        pathological skew cannot demote forever.
        """
        cut = self.fraction0 / 2.0
        if cut < 1e-9:
            cut = 0.0
        self.fraction0 = cut
        self.cuts.append(cut)
        return cut


class HybridJoinState:
    """Per-node state of one distributed Hybrid hash join."""

    def __init__(
        self,
        ctx: ExecutionContext,
        node: Node,
        index: int,
        build_pos: int,
        probe_pos: int,
        capacity_bytes: int,
        build_record_bytes: int,
        probe_record_bytes: int,
        output: OutputPort,
        bit_filter: Optional[BitVectorFilter],
        build_port: InputPort,
        probe_port: InputPort,
        expected_build_tuples: float,
        spill: Optional[SpillConfig] = None,
    ) -> None:
        self.ctx = ctx
        self.node = node
        self.index = index
        self.build_pos = build_pos
        self.probe_pos = probe_pos
        self.capacity_bytes = capacity_bytes
        self.trigger_bytes = capacity_bytes * OVERFLOW_SLACK
        self.build_record_bytes = build_record_bytes
        self.probe_record_bytes = probe_record_bytes
        self.output = output
        self.bit_filter = bit_filter
        self.build_port = build_port
        self.probe_port = probe_port
        self.entry_bytes = build_record_bytes * ctx.config.hash_table_overhead
        spill = spill or SpillConfig()
        self.policy = spill.policy
        self.max_recursion = spill.max_recursion
        expected_bytes = max(
            self.entry_bytes,
            expected_build_tuples * spill.estimate_factor * self.entry_bytes,
        )
        # Partition plan: partition 0 fills memory; the rest are sized to
        # fit memory one at a time during the resolution sweep.
        self.plan = PartitionPlan(
            expected_bytes, capacity_bytes,
            forced_partitions=spill.partitions,
            optimistic=spill.policy == "dynamic",
        )
        self.planned_partitions = self.plan.n_static
        #: True while partition_of() is constant 0 — every key stays in
        #: memory, so the consumers can skip the per-record hash entirely.
        #: Cleared by the first overflow reaction.
        self.all_in_memory = (
            self.plan.n_static == 1 or self.plan.fraction0 >= 1.0
        )
        self.table: dict[Any, list[tuple]] = defaultdict(list)
        self.bytes_used = 0.0
        self.build_spools = [
            SpoolFile(ctx, node, f"hb{p}", build_record_bytes)
            for p in range(1, self.plan.n_static)
        ]
        self.probe_spools = [
            SpoolFile(ctx, node, f"hp{p}", probe_record_bytes)
            for p in range(1, self.plan.n_static)
        ]
        #: Static-policy overflow pair: build tuples beyond capacity, and
        #: the resident-region probes that must re-join against them.
        self.overflow_build: Optional[SpoolFile] = None
        self.overflow_probe: Optional[SpoolFile] = None
        self.matches = 0
        #: Actual overflow reactions (static activation, demotions,
        #: recursive re-partitionings, extra resolve chunks) — what
        #: ``QueryResult.overflows_per_node`` now reports.
        self.overflow_chunks = 0

    # Kept as a method (delegating to the plan) for the consumers' hot
    # loops and for backwards compatibility.
    def partition_of(self, key: Any) -> int:
        """0 = memory-resident; 1..k-1 = spooled partitions."""
        return self.plan.partition_of(key)

    @property
    def n_partitions(self) -> int:
        return self.plan.n_partitions


def _emit_table_counter(ctx: ExecutionContext, state: HybridJoinState) -> None:
    """Passive hash-table telemetry: metrics sample + Perfetto counter."""
    ctx.metrics.record_hash_table_bytes(state.node.name, state.bytes_used)
    if ctx.trace is not None:
        ctx.trace.counter(
            state.node.name, "hash-table", ctx.sim.now,
            {"bytes": float(state.bytes_used),
             "overflows": float(state.overflow_chunks),
             "partitions": float(state.plan.n_partitions)},
        )


def _handle_build_overflow(
    ctx: ExecutionContext, state: HybridJoinState
) -> Generator[Any, Any, None]:
    """React to the resident build partition exceeding capacity.

    ``static``: open the overflow spool pair once — later resident-region
    build tuples spool instead of growing the table.  ``demote`` /
    ``dynamic``: halve the resident key region and evict its buckets into
    a fresh spooled partition (paying the spool writes) until the table
    fits.  Eviction walks the insertion-ordered table, so the reaction is
    deterministic and independent of hash salts.
    """
    if state.policy == "static":
        if state.overflow_build is None:
            state.overflow_build = SpoolFile(
                ctx, state.node, "hov.b", state.build_record_bytes
            )
            state.overflow_probe = SpoolFile(
                ctx, state.node, "hov.p", state.probe_record_bytes
            )
            state.all_in_memory = False
            state.overflow_chunks += 1
            ctx.metrics.record_overflow_chunk(state.node.name)
            _emit_table_counter(ctx, state)
        return
    plan = state.plan
    table = state.table
    # Demote back below *capacity*, not just the trigger: the gap is the
    # hysteresis that keeps one demotion per estimate-error magnitude.
    while state.bytes_used > state.capacity_bytes and plan.fraction0 > 0.0:
        cut = plan.demote()
        doomed = [key for key in table if _h2(key, 0) >= cut]
        evicted: list[tuple] = []
        for key in doomed:
            evicted.extend(table.pop(key))
        state.bytes_used -= len(evicted) * state.entry_bytes
        slice_no = len(plan.cuts) - 1
        build_spool = SpoolFile(
            ctx, state.node, f"hd{slice_no}.b", state.build_record_bytes
        )
        probe_spool = SpoolFile(
            ctx, state.node, f"hd{slice_no}.p", state.probe_record_bytes
        )
        state.build_spools.append(build_spool)
        state.probe_spools.append(probe_spool)
        state.all_in_memory = False
        state.overflow_chunks += 1
        ctx.metrics.record_overflow_chunk(state.node.name)
        ctx.metrics.add("hash_demotions")
        if evicted:
            yield from build_spool.add_batch(evicted)
        _emit_table_counter(ctx, state)


def hybrid_build_consumer(
    ctx: ExecutionContext, state: HybridJoinState
) -> Generator[Any, Any, None]:
    """Phase one: build partition 0 in memory, spool the rest locally."""
    costs = ctx.config.costs
    insert_cost = costs.hash_table_insert
    bitset_cost = costs.bitfilter_set
    bf = state.bit_filter
    bf_add = bf.add if bf is not None else None
    bpos = state.build_pos
    entry_bytes = state.entry_bytes
    trigger = state.trigger_bytes
    partition_of = state.plan.partition_of
    table = state.table
    charge = (
        (insert_cost, bitset_cost) if bf is not None else (insert_cost,)
    )
    port = state.build_port
    flat = ctx.profiler is None and ctx.trace is None
    get_effect = port._get_effect
    receive = port.receive_effect
    while port.expected_producers == 0 or (
        port._eos_seen < port.expected_producers
    ):
        # Flattened receive loop (see join.build_consumer): identical
        # effects, no next_packet generator per packet.
        if flat:
            message = yield get_effect
            if type(message) is EndOfStream:
                port._eos_seen += 1
                continue
            eff = receive(message)
            if eff is not None:
                yield eff
        else:
            message = yield from port.next_packet()
            if message is None:
                break
        records = message.records
        bytes_used = state.bytes_used
        spill: Optional[dict[int, list[tuple]]] = None
        overflow_batch: Optional[list[tuple]] = None
        if state.all_in_memory and (
            bytes_used + len(records) * entry_bytes <= trigger
        ):
            # Every key lands in partition 0: skip the partition hash and
            # fold the constant per-record charges through the cache.
            if bf_add is not None:
                for record in records:
                    key = record[bpos]
                    bf_add(key)
                    table[key].append(record)
                    bytes_used += entry_bytes
            else:
                for record in records:
                    table[record[bpos]].append(record)
                    bytes_used += entry_bytes
            cpu = _repeat_charge(charge, len(records))
        else:
            # Spilled records pay the same insert/bitset charges as
            # resident ones, so the whole batch folds through the cache.
            cpu = _repeat_charge(charge, len(records))
            spill = defaultdict(list)
            overflow_spool = state.overflow_build
            for record in records:
                key = record[bpos]
                if bf_add is not None:
                    bf_add(key)
                p = partition_of(key)
                if p == 0:
                    if overflow_spool is not None:
                        if overflow_batch is None:
                            overflow_batch = []
                        overflow_batch.append(record)
                    else:
                        table[key].append(record)
                        bytes_used += entry_bytes
                else:
                    spill[p].append(record)
        state.bytes_used = bytes_used
        _emit_table_counter(ctx, state)
        eff = state.node.work_effect(cpu)
        if eff is not None:
            yield eff
        if spill:
            for p, batch in spill.items():
                yield from state.build_spools[p - 1].add_batch(batch)
        if overflow_batch:
            assert state.overflow_build is not None
            yield from state.overflow_build.add_batch(overflow_batch)
        if bytes_used > trigger:
            yield from _handle_build_overflow(ctx, state)
    for spool in state.build_spools:
        yield from spool.flush()
    if state.overflow_build is not None:
        yield from state.overflow_build.flush()


def hybrid_probe_consumer(
    ctx: ExecutionContext, state: HybridJoinState
) -> Generator[Any, Any, None]:
    """Phase two: probe partition 0, spool probes for partitions 1..k-1.

    Under an active static-policy overflow, resident-region probes are
    *dual-routed*: probed against the memory-resident table now, and
    spooled for the resolution sweep against the overflowed build tuples
    — each build tuple lives in exactly one place, so no duplicates.
    """
    costs = ctx.config.costs
    probe_cost = costs.hash_table_probe
    result_cost = costs.join_result_tuple
    ppos = state.probe_pos
    # The build phase has completed (scheduler barrier), so the layout —
    # and therefore the fast-path choice — is frozen.
    all_mem = state.all_in_memory
    partition_of = state.plan.partition_of
    table_get = state.table.get
    overflow_spool = state.overflow_probe
    work_effect = state.node.work_effect
    port = state.probe_port
    flat = ctx.profiler is None and ctx.trace is None
    get_effect = port._get_effect
    receive = port.receive_effect
    while port.expected_producers == 0 or (
        port._eos_seen < port.expected_producers
    ):
        if flat:
            message = yield get_effect
            if type(message) is EndOfStream:
                port._eos_seen += 1
                continue
            eff = receive(message)
            if eff is not None:
                yield eff
        else:
            message = yield from port.next_packet()
            if message is None:
                break
        records = message.records
        # Hits, misses, and spills all pay the probe charge; the bulk
        # multiply over integer-valued constants is exact.
        cpu = probe_cost * len(records)
        spill: Optional[dict[int, list[tuple]]] = None
        overflow_batch: Optional[list[tuple]] = None
        results: list[tuple] = []
        res_append = results.append
        if all_mem:
            for record in records:
                bucket = table_get(record[ppos])
                if bucket:
                    cpu += result_cost * len(bucket)
                    for build_record in bucket:
                        res_append(build_record + record)
        else:
            spill = defaultdict(list)
            for record in records:
                key = record[ppos]
                p = partition_of(key)
                if p != 0:
                    spill[p].append(record)
                    continue
                if overflow_spool is not None:
                    if overflow_batch is None:
                        overflow_batch = []
                    overflow_batch.append(record)
                bucket = table_get(key)
                if bucket:
                    cpu += result_cost * len(bucket)
                    for build_record in bucket:
                        res_append(build_record + record)
        state.matches += len(results)
        eff = work_effect(cpu)
        if eff is not None:
            yield eff
        if results:
            yield from state.output.emit_many(results)
        if spill:
            for p, batch in spill.items():
                yield from state.probe_spools[p - 1].add_batch(batch)
        if overflow_batch:
            assert overflow_spool is not None
            yield from overflow_spool.add_batch(overflow_batch)
    for spool in state.probe_spools:
        yield from spool.flush()
    if state.overflow_probe is not None:
        yield from state.overflow_probe.flush()


def _repartition_pair(
    ctx: ExecutionContext,
    state: HybridJoinState,
    build_spool: SpoolFile,
    probe_spool: SpoolFile,
    depth: int,
    pairs: deque,
) -> Generator[Any, Any, None]:
    """Recursively split an oversized spooled pair (``dynamic`` policy).

    Both spools are read once and re-spooled into ``k`` sub-pairs under a
    depth-specific hash seed (the parent partition is a *slice* of seed
    0's unit interval, so re-cutting it needs an independent hash).  The
    sub-pairs go to the front of the worklist: depth-first keeps at most
    one lineage of sub-spools alive.
    """
    k = min(
        64,
        max(2, ceil(
            len(build_spool.records) * state.entry_bytes * 1.05
            / state.capacity_bytes
        )),
    )
    seed = depth + 1
    node = state.node
    sub_build = [
        SpoolFile(ctx, node, f"hr{depth}.{i}.b", state.build_record_bytes)
        for i in range(k)
    ]
    sub_probe = [
        SpoolFile(ctx, node, f"hr{depth}.{i}.p", state.probe_record_bytes)
        for i in range(k)
    ]
    for spool, subs, pos in (
        (build_spool, sub_build, state.build_pos),
        (probe_spool, sub_probe, state.probe_pos),
    ):
        for page_no, records in spool.read_pages():
            yield from spool.read_page_io(page_no)
            batches: list[list[tuple]] = [[] for _ in range(k)]
            for record in records:
                h = _h2(record[pos], seed)
                batches[min(k - 1, int(h * k))].append(record)
            for sub, batch in zip(subs, batches):
                if batch:
                    yield from sub.add_batch(batch)
        for sub in subs:
            yield from sub.flush()
    state.overflow_chunks += 1
    ctx.metrics.record_overflow_chunk(node.name)
    ctx.metrics.add("hybrid_repartitions")
    pairs.extendleft(
        reversed([(b, p, depth + 1) for b, p in zip(sub_build, sub_probe)])
    )


def hybrid_resolve(
    ctx: ExecutionContext, state: HybridJoinState
) -> Generator[Any, Any, None]:
    """Join the spooled partition pairs, one partition at a time.

    A partition whose build side unexpectedly exceeds memory (estimate
    error) is processed in memory-sized chunks, re-scanning its probe
    spool per chunk — bounded, never recursive — unless the ``dynamic``
    policy is active, which re-partitions the pair recursively (bounded
    by ``max_recursion``) so each side is read and written once per
    level instead of re-scanning the probe spool per chunk.
    """
    costs = ctx.config.costs
    pairs: deque = deque(
        (b, p, 0) for b, p in zip(state.build_spools, state.probe_spools)
    )
    if state.overflow_build is not None:
        pairs.append((state.overflow_build, state.overflow_probe, 0))
    while pairs:
        build_spool, probe_spool, depth = pairs.popleft()
        build_pages = list(build_spool.read_pages())
        if not build_pages:
            # No build tuples landed in this partition: its probe spool
            # can produce no matches and is skipped entirely.
            continue
        if (
            state.policy == "dynamic"
            and depth < state.max_recursion
            and len(build_spool.records) * state.entry_bytes
            > state.trigger_bytes
        ):
            yield from _repartition_pair(
                ctx, state, build_spool, probe_spool, depth, pairs
            )
            continue
        start = 0
        while start < len(build_pages):
            state.table = defaultdict(list)
            state.bytes_used = 0.0
            consumed = 0
            cpu = 0.0
            for page_no, records in build_pages[start:]:
                if (
                    state.bytes_used + len(records) * state.entry_bytes
                    > state.capacity_bytes
                    and state.bytes_used > 0
                ):
                    break
                yield from build_spool.read_page_io(page_no)
                for record in records:
                    cpu += costs.hash_table_insert
                    state.table[record[state.build_pos]].append(record)
                    state.bytes_used += state.entry_bytes
                consumed += 1
            eff = state.node.work_effect(cpu)
            if eff is not None:
                yield eff
            if consumed == 0:
                break
            if start > 0 or consumed < len(build_pages) - start:
                state.overflow_chunks += 1
                ctx.metrics.node(state.node.name).overflow_chunks += 1
            _emit_table_counter(ctx, state)
            start += consumed
            results: list[tuple] = []
            cpu = 0.0
            for page_no, records in probe_spool.read_pages():
                yield from probe_spool.read_page_io(page_no)
                for record in records:
                    cpu += costs.hash_table_probe
                    bucket = state.table.get(record[state.probe_pos])
                    if bucket:
                        cpu += costs.join_result_tuple * len(bucket)
                        for build_record in bucket:
                            results.append(build_record + record)
            state.matches += len(results)
            eff = state.node.work_effect(cpu)
            if eff is not None:
                yield eff
            if results:
                yield from state.output.emit_many(results)
        state.table = defaultdict(list)
        state.bytes_used = 0.0


def hybrid_close(
    ctx: ExecutionContext, state: HybridJoinState
) -> Generator[Any, Any, None]:
    """Flush/close the node's output stream and report completion."""
    yield from state.output.close()
    yield from operator_done(ctx, state.node)


class HybridHashJoinDriver:
    """Drives the parallel Hybrid hash join (the paper's announced fix)."""

    def run(self, sched: Any, join: Any, dest: Any) -> Generator[Any, Any, None]:
        from ...sim import WaitAll
        from ..ports import InputPort
        from ..split_table import Destination

        ctx = sched.ctx
        config = ctx.config
        nodes = ctx.placement_nodes(join.placement)
        capacity = config.join_memory_total // len(nodes)
        build_pos = join.build.schema.position(join.build_attr)
        probe_pos = join.probe.schema.position(join.probe_attr)
        est = join.build_input.estimated_rows
        spill = getattr(join, "spill", None) or SpillConfig.from_config(config)
        states: list[HybridJoinState] = []
        build_ports: list[Destination] = []
        probe_ports: list[Destination] = []
        for idx, node in enumerate(nodes):
            build_port = InputPort(ctx, f"{join.op_id}.b.{idx}", node)
            probe_port = InputPort(ctx, f"{join.op_id}.p.{idx}", node)
            build_ports.append(Destination(node.name, build_port))
            probe_ports.append(Destination(node.name, probe_port))
            output = sched._make_output(node, dest, join.schema)
            bit_filter = (
                BitVectorFilter() if config.use_bit_filters else None
            )
            yield from sched._initiate(node)
            yield from sched._initiate(node)
            states.append(
                HybridJoinState(
                    ctx, node, idx, build_pos, probe_pos, capacity,
                    join.build.schema.tuple_bytes,
                    join.probe.schema.tuple_bytes,
                    output, bit_filter, build_port, probe_port,
                    expected_build_tuples=est / len(nodes),
                    spill=spill,
                )
            )

        build_procs = [
            sched._spawn(s.node, hybrid_build_consumer(ctx, s),
                         f"{join.op_id}.build.{s.index}",
                         op_id=join.build_input.op_id, phase="build")
            for s in states
        ]
        yield from sched.run_op(
            join.build,
            sched.lower_exchange(join.build_input.exchange, build_ports),
        )
        yield WaitAll(build_procs)

        probe_filter: Optional[BitVectorFilter] = None
        if config.use_bit_filters:
            probe_filter = BitVectorFilter()
            for state in states:
                assert state.bit_filter is not None
                yield from ctx.net.transfer(
                    state.node.name, ctx.scheduler_node.name,
                    state.bit_filter.size_bytes,
                )
                probe_filter.union(state.bit_filter)

        probe_procs = [
            sched._spawn(s.node, hybrid_probe_consumer(ctx, s),
                         f"{join.op_id}.probe.{s.index}",
                         op_id=join.op_id, phase="probe")
            for s in states
        ]
        yield from sched.run_op(
            join.probe,
            sched.lower_exchange(
                join.exchange, probe_ports, bit_filter=probe_filter
            ),
        )
        yield WaitAll(probe_procs)

        resolve_procs = [
            sched._spawn(s.node, hybrid_resolve(ctx, s),
                         f"{join.op_id}.resolve.{s.index}",
                         op_id=join.op_id, phase="overflow")
            for s in states
        ]
        yield WaitAll(resolve_procs)
        closers = [
            sched._spawn(s.node, hybrid_close(ctx, s),
                         f"{join.op_id}.close.{s.index}",
                         op_id=join.op_id, phase="probe")
            for s in states
        ]
        yield WaitAll(closers)
        # Actual overflow reactions — not the planned partition count,
        # which is reported separately.
        sched.overflows_per_node = [s.overflow_chunks for s in states]
        sched.partitions_per_node = [s.planned_partitions for s in states]
