"""Parallel Hybrid hash join [DEWI84, DEWI85] — the paper's announced fix.

The Conclusions call the Simple hash join's overflow behaviour one of
Gamma's "most glaring deficiencies" and announce its replacement with "a
parallel version of the Hybrid hash-join algorithm".  This module
implements that replacement (the algorithm later measured in the 1990
Gamma paper) so the repository can quantify the improvement (ablation A2).

The idea: instead of reacting to overflow by evicting and recursing, each
node *plans* its memory use up front from the optimizer's estimate of the
building relation.  The key space is cut into ``k`` partitions — partition
0 sized to fill memory and built immediately; partitions 1..k-1 spooled to
node-local temporary files on both the build and probe sides.  Afterwards
the spooled partition pairs are joined one at a time, each tuple written
and read exactly once: degradation is *linear* in the memory deficit, not
exponential.
"""

from __future__ import annotations

from collections import defaultdict
from math import ceil
from typing import Any, Generator, Optional

from ..bitfilter import BitVectorFilter
from ..node import ExecutionContext, Node
from ..ports import EndOfStream, InputPort, OutputPort
from .base import SpoolFile, operator_done
from .join import _h2

#: Cache of sequential per-record charge folds, keyed by
#: (per-record cost components, record count).
_charge_cache: dict[tuple[tuple[float, ...], int], float] = {}


def _repeat_charge(parts: tuple[float, ...], n: int) -> float:
    """The sequential float fold of charging ``parts`` once per record.

    Replaying the exact per-record addition order once per distinct
    ``(parts, n)`` — instead of on every packet — keeps accumulated packet
    charges bit-identical to the original inner loop: float addition is
    not associative, so ``n * sum(parts)`` would drift.
    """
    key = (parts, n)
    total = _charge_cache.get(key)
    if total is None:
        total = 0.0
        for _ in range(n):
            for part in parts:
                total += part
        _charge_cache[key] = total
    return total


class HybridJoinState:
    """Per-node state of one distributed Hybrid hash join."""

    def __init__(
        self,
        ctx: ExecutionContext,
        node: Node,
        index: int,
        build_pos: int,
        probe_pos: int,
        capacity_bytes: int,
        build_record_bytes: int,
        probe_record_bytes: int,
        output: OutputPort,
        bit_filter: Optional[BitVectorFilter],
        build_port: InputPort,
        probe_port: InputPort,
        expected_build_tuples: float,
    ) -> None:
        self.ctx = ctx
        self.node = node
        self.index = index
        self.build_pos = build_pos
        self.probe_pos = probe_pos
        self.capacity_bytes = capacity_bytes
        self.build_record_bytes = build_record_bytes
        self.probe_record_bytes = probe_record_bytes
        self.output = output
        self.bit_filter = bit_filter
        self.build_port = build_port
        self.probe_port = probe_port
        self.entry_bytes = build_record_bytes * ctx.config.hash_table_overhead
        expected_bytes = max(
            self.entry_bytes, expected_build_tuples * self.entry_bytes
        )
        # Partition plan: partition 0 fills memory; the rest are sized to
        # fit memory one at a time during the resolution sweep.
        self.n_partitions = max(1, ceil(expected_bytes * 1.05 / capacity_bytes))
        self.fraction0 = min(1.0, capacity_bytes * 0.95 / expected_bytes)
        #: True when partition_of() is constant 0 — every key stays in
        #: memory, so the consumers can skip the per-record hash entirely.
        self.all_in_memory = self.n_partitions == 1 or self.fraction0 >= 1.0
        self.table: dict[Any, list[tuple]] = defaultdict(list)
        self.bytes_used = 0.0
        self.build_spools = [
            SpoolFile(ctx, node, f"hb{p}", build_record_bytes)
            for p in range(1, self.n_partitions)
        ]
        self.probe_spools = [
            SpoolFile(ctx, node, f"hp{p}", probe_record_bytes)
            for p in range(1, self.n_partitions)
        ]
        self.matches = 0
        self.overflow_chunks = 0

    def partition_of(self, key: Any) -> int:
        """0 = memory-resident; 1..k-1 = spooled partitions."""
        h = _h2(key, 0)
        if h < self.fraction0 or self.n_partitions == 1:
            return 0
        rest = (h - self.fraction0) / max(1e-12, 1.0 - self.fraction0)
        return 1 + min(self.n_partitions - 2, int(rest * (self.n_partitions - 1)))


def hybrid_build_consumer(
    ctx: ExecutionContext, state: HybridJoinState
) -> Generator[Any, Any, None]:
    """Phase one: build partition 0 in memory, spool the rest locally."""
    costs = ctx.config.costs
    insert_cost = costs.hash_table_insert
    bitset_cost = costs.bitfilter_set
    bf = state.bit_filter
    bf_add = bf.add if bf is not None else None
    bpos = state.build_pos
    entry_bytes = state.entry_bytes
    all_mem = state.all_in_memory
    partition_of = state.partition_of
    table = state.table
    charge = (
        (insert_cost, bitset_cost) if bf is not None else (insert_cost,)
    )
    port = state.build_port
    flat = ctx.profiler is None and ctx.trace is None
    get_effect = port._get_effect
    receive = port.receive_effect
    while port.expected_producers == 0 or (
        port._eos_seen < port.expected_producers
    ):
        # Flattened receive loop (see join.build_consumer): identical
        # effects, no next_packet generator per packet.
        if flat:
            message = yield get_effect
            if type(message) is EndOfStream:
                port._eos_seen += 1
                continue
            eff = receive(message)
            if eff is not None:
                yield eff
        else:
            message = yield from port.next_packet()
            if message is None:
                break
        records = message.records
        bytes_used = state.bytes_used
        spill: Optional[dict[int, list[tuple]]] = None
        if all_mem:
            # Every key lands in partition 0: skip the partition hash and
            # fold the constant per-record charges through the cache.
            if bf_add is not None:
                for record in records:
                    key = record[bpos]
                    bf_add(key)
                    table[key].append(record)
                    bytes_used += entry_bytes
            else:
                for record in records:
                    table[record[bpos]].append(record)
                    bytes_used += entry_bytes
            cpu = _repeat_charge(charge, len(records))
        else:
            # Spilled records pay the same insert/bitset charges as
            # resident ones, so the whole batch folds through the cache.
            cpu = _repeat_charge(charge, len(records))
            spill = defaultdict(list)
            for record in records:
                key = record[bpos]
                if bf_add is not None:
                    bf_add(key)
                p = partition_of(key)
                if p == 0:
                    table[key].append(record)
                    bytes_used += entry_bytes
                else:
                    spill[p].append(record)
        state.bytes_used = bytes_used
        ctx.metrics.record_hash_table_bytes(state.node.name, state.bytes_used)
        if ctx.trace is not None:
            ctx.trace.counter(
                state.node.name, "hash-table", ctx.sim.now,
                {"bytes": float(state.bytes_used),
                 "overflows": float(state.overflow_chunks)},
            )
        eff = state.node.work_effect(cpu)
        if eff is not None:
            yield eff
        if spill:
            for p, batch in spill.items():
                yield from state.build_spools[p - 1].add_batch(batch)
    for spool in state.build_spools:
        yield from spool.flush()


def hybrid_probe_consumer(
    ctx: ExecutionContext, state: HybridJoinState
) -> Generator[Any, Any, None]:
    """Phase two: probe partition 0, spool probes for partitions 1..k-1."""
    costs = ctx.config.costs
    probe_cost = costs.hash_table_probe
    result_cost = costs.join_result_tuple
    ppos = state.probe_pos
    all_mem = state.all_in_memory
    partition_of = state.partition_of
    table_get = state.table.get
    work_effect = state.node.work_effect
    port = state.probe_port
    flat = ctx.profiler is None and ctx.trace is None
    get_effect = port._get_effect
    receive = port.receive_effect
    while port.expected_producers == 0 or (
        port._eos_seen < port.expected_producers
    ):
        if flat:
            message = yield get_effect
            if type(message) is EndOfStream:
                port._eos_seen += 1
                continue
            eff = receive(message)
            if eff is not None:
                yield eff
        else:
            message = yield from port.next_packet()
            if message is None:
                break
        records = message.records
        # Hits, misses, and spills all pay the probe charge; the bulk
        # multiply over integer-valued constants is exact.
        cpu = probe_cost * len(records)
        spill: Optional[dict[int, list[tuple]]] = None
        results: list[tuple] = []
        res_append = results.append
        if all_mem:
            for record in records:
                bucket = table_get(record[ppos])
                if bucket:
                    cpu += result_cost * len(bucket)
                    for build_record in bucket:
                        res_append(build_record + record)
        else:
            spill = defaultdict(list)
            for record in records:
                key = record[ppos]
                p = partition_of(key)
                if p != 0:
                    spill[p].append(record)
                    continue
                bucket = table_get(key)
                if bucket:
                    cpu += result_cost * len(bucket)
                    for build_record in bucket:
                        res_append(build_record + record)
        state.matches += len(results)
        eff = work_effect(cpu)
        if eff is not None:
            yield eff
        if results:
            yield from state.output.emit_many(results)
        if spill:
            for p, batch in spill.items():
                yield from state.probe_spools[p - 1].add_batch(batch)
    for spool in state.probe_spools:
        yield from spool.flush()


def hybrid_resolve(
    ctx: ExecutionContext, state: HybridJoinState
) -> Generator[Any, Any, None]:
    """Join the spooled partition pairs, one partition at a time.

    A partition whose build side unexpectedly exceeds memory (estimate
    error) is processed in memory-sized chunks, re-scanning its probe
    spool per chunk — still bounded, never recursive.
    """
    costs = ctx.config.costs
    for build_spool, probe_spool in zip(
        state.build_spools, state.probe_spools
    ):
        build_pages = list(build_spool.read_pages())
        if not build_pages:
            # No build tuples landed in this partition: its probe spool
            # can produce no matches and is skipped entirely.
            continue
        start = 0
        while start < len(build_pages):
            state.table = defaultdict(list)
            state.bytes_used = 0.0
            consumed = 0
            cpu = 0.0
            for page_no, records in build_pages[start:]:
                if (
                    state.bytes_used + len(records) * state.entry_bytes
                    > state.capacity_bytes
                    and state.bytes_used > 0
                ):
                    break
                yield from build_spool.read_page_io(page_no)
                for record in records:
                    cpu += costs.hash_table_insert
                    state.table[record[state.build_pos]].append(record)
                    state.bytes_used += state.entry_bytes
                consumed += 1
            eff = state.node.work_effect(cpu)
            if eff is not None:
                yield eff
            if consumed == 0:
                break
            if start > 0 or consumed < len(build_pages) - start:
                state.overflow_chunks += 1
                ctx.metrics.node(state.node.name).overflow_chunks += 1
            ctx.metrics.record_hash_table_bytes(
                state.node.name, state.bytes_used
            )
            if ctx.trace is not None:
                ctx.trace.counter(
                    state.node.name, "hash-table", ctx.sim.now,
                    {"bytes": float(state.bytes_used),
                     "overflows": float(state.overflow_chunks)},
                )
            start += consumed
            results: list[tuple] = []
            cpu = 0.0
            for page_no, records in probe_spool.read_pages():
                yield from probe_spool.read_page_io(page_no)
                for record in records:
                    cpu += costs.hash_table_probe
                    bucket = state.table.get(record[state.probe_pos])
                    if bucket:
                        cpu += costs.join_result_tuple * len(bucket)
                        for build_record in bucket:
                            results.append(build_record + record)
            state.matches += len(results)
            eff = state.node.work_effect(cpu)
            if eff is not None:
                yield eff
            if results:
                yield from state.output.emit_many(results)
        state.table = defaultdict(list)
        state.bytes_used = 0.0


def hybrid_close(
    ctx: ExecutionContext, state: HybridJoinState
) -> Generator[Any, Any, None]:
    """Flush/close the node's output stream and report completion."""
    yield from state.output.close()
    yield from operator_done(ctx, state.node)


class HybridHashJoinDriver:
    """Drives the parallel Hybrid hash join (the paper's announced fix)."""

    def run(self, sched: Any, join: Any, dest: Any) -> Generator[Any, Any, None]:
        from ...sim import WaitAll
        from ..ports import InputPort
        from ..split_table import Destination

        ctx = sched.ctx
        config = ctx.config
        nodes = ctx.placement_nodes(join.placement)
        capacity = config.join_memory_total // len(nodes)
        build_pos = join.build.schema.position(join.build_attr)
        probe_pos = join.probe.schema.position(join.probe_attr)
        est = join.build_input.estimated_rows
        states: list[HybridJoinState] = []
        build_ports: list[Destination] = []
        probe_ports: list[Destination] = []
        for idx, node in enumerate(nodes):
            build_port = InputPort(ctx, f"{join.op_id}.b.{idx}", node)
            probe_port = InputPort(ctx, f"{join.op_id}.p.{idx}", node)
            build_ports.append(Destination(node.name, build_port))
            probe_ports.append(Destination(node.name, probe_port))
            output = sched._make_output(node, dest, join.schema)
            bit_filter = (
                BitVectorFilter() if config.use_bit_filters else None
            )
            yield from sched._initiate(node)
            yield from sched._initiate(node)
            states.append(
                HybridJoinState(
                    ctx, node, idx, build_pos, probe_pos, capacity,
                    join.build.schema.tuple_bytes,
                    join.probe.schema.tuple_bytes,
                    output, bit_filter, build_port, probe_port,
                    expected_build_tuples=est / len(nodes),
                )
            )

        build_procs = [
            sched._spawn(s.node, hybrid_build_consumer(ctx, s),
                         f"{join.op_id}.build.{s.index}",
                         op_id=join.build_input.op_id, phase="build")
            for s in states
        ]
        yield from sched.run_op(
            join.build,
            sched.lower_exchange(join.build_input.exchange, build_ports),
        )
        yield WaitAll(build_procs)

        probe_filter: Optional[BitVectorFilter] = None
        if config.use_bit_filters:
            probe_filter = BitVectorFilter()
            for state in states:
                assert state.bit_filter is not None
                yield from ctx.net.transfer(
                    state.node.name, ctx.scheduler_node.name,
                    state.bit_filter.size_bytes,
                )
                probe_filter.union(state.bit_filter)

        probe_procs = [
            sched._spawn(s.node, hybrid_probe_consumer(ctx, s),
                         f"{join.op_id}.probe.{s.index}",
                         op_id=join.op_id, phase="probe")
            for s in states
        ]
        yield from sched.run_op(
            join.probe,
            sched.lower_exchange(
                join.exchange, probe_ports, bit_filter=probe_filter
            ),
        )
        yield WaitAll(probe_procs)

        resolve_procs = [
            sched._spawn(s.node, hybrid_resolve(ctx, s),
                         f"{join.op_id}.resolve.{s.index}",
                         op_id=join.op_id, phase="overflow")
            for s in states
        ]
        yield WaitAll(resolve_procs)
        closers = [
            sched._spawn(s.node, hybrid_close(ctx, s),
                         f"{join.op_id}.close.{s.index}",
                         op_id=join.op_id, phase="probe")
            for s in states
        ]
        yield WaitAll(closers)
        sched.overflows_per_node = [
            max(0, s.n_partitions - 1) for s in states
        ]
