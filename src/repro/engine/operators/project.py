"""The projection operator (duplicate-eliminating or streaming).

Section 2 lists projection among the operations executed on the diskless
processors.  A duplicate-eliminating projection receives its input
hash-partitioned on the projected attributes, so every node can
deduplicate its disjoint share with a local hash table; a plain projection
just rewrites tuples in stream order.
"""

from __future__ import annotations

from typing import Any, Generator

from ..node import ExecutionContext, Node
from ..ports import InputPort, OutputPort
from .base import operator_done


def project_operator(
    ctx: ExecutionContext,
    node: Node,
    port: InputPort,
    positions: list[int],
    unique: bool,
    output: OutputPort,
) -> Generator[Any, Any, int]:
    """Project the input stream onto ``positions``; dedup if ``unique``."""
    costs = ctx.config.costs
    seen: set[tuple] = set()
    emitted = 0
    while True:
        packet = yield from port.next_packet()
        if packet is None:
            break
        cpu = 0.0
        out: list[tuple] = []
        for record in packet.records:
            cpu += costs.project_tuple
            projected = tuple(record[p] for p in positions)
            if unique:
                cpu += costs.duplicate_check
                if projected in seen:
                    continue
                seen.add(projected)
            out.append(projected)
        emitted += len(out)
        yield from node.work(cpu)
        if out:
            yield from output.emit_many(out)
    yield from output.close()
    yield from operator_done(ctx, node)
    return emitted
