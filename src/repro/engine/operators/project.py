"""The projection operator (duplicate-eliminating or streaming).

Section 2 lists projection among the operations executed on the diskless
processors.  A duplicate-eliminating projection receives its input
hash-partitioned on the projected attributes, so every node can
deduplicate its disjoint share with a local hash table; a plain projection
just rewrites tuples in stream order.
"""

from __future__ import annotations

from typing import Any, Generator

from ..node import ExecutionContext, Node
from ..ports import InputPort, OutputPort
from .base import operator_done


def project_operator(
    ctx: ExecutionContext,
    node: Node,
    port: InputPort,
    positions: list[int],
    unique: bool,
    output: OutputPort,
) -> Generator[Any, Any, int]:
    """Project the input stream onto ``positions``; dedup if ``unique``."""
    costs = ctx.config.costs
    seen: set[tuple] = set()
    emitted = 0
    while True:
        packet = yield from port.next_packet()
        if packet is None:
            break
        cpu = 0.0
        out: list[tuple] = []
        for record in packet.records:
            cpu += costs.project_tuple
            projected = tuple(record[p] for p in positions)
            if unique:
                cpu += costs.duplicate_check
                if projected in seen:
                    continue
                seen.add(projected)
            out.append(projected)
        emitted += len(out)
        yield from node.work(cpu)
        if out:
            yield from output.emit_many(out)
    yield from output.close()
    yield from operator_done(ctx, node)
    return emitted


class ProjectDriver:
    """Drives a projection: duplicate-eliminating projections partition
    their input by a hash of the projected attributes so each node
    deduplicates a disjoint share; streaming projections take a
    round-robin share (Section 2)."""

    def run(
        self, sched: Any, project: Any, dest: Any
    ) -> Generator[Any, Any, None]:
        from ...sim import WaitAll
        from ..split_table import Destination

        ctx = sched.ctx
        nodes = ctx.placement_nodes(project.placement)
        ports: list[Destination] = []
        procs = []
        for idx, node in enumerate(nodes):
            port = InputPort(ctx, f"{project.op_id}.{idx}", node)
            ports.append(Destination(node.name, port))
            output = sched._make_output(node, dest, project.schema)
            yield from sched._initiate(node)
            procs.append(
                sched._spawn(
                    node,
                    project_operator(ctx, node, port, project.positions,
                                     project.unique, output),
                    f"{project.op_id}.{idx}",
                    op_id=project.op_id, phase="project",
                )
            )
        yield from sched.run_op(
            project.source, sched.lower_exchange(project.exchange, ports)
        )
        yield WaitAll(procs)
