"""Gamma operator processes."""

from .aggregate import (
    combine_aggregate_operator,
    grouped_aggregate_operator,
    partial_aggregate_operator,
)
from .base import DestSpec, SpoolFile, operator_done
from .join import (
    JoinState,
    OverflowExchange,
    build_consumer,
    close_output,
    probe_consumer,
    resolve_round,
)
from .scan import (
    clustered_index_scan_operator,
    exact_match_operator,
    file_scan_operator,
    nonclustered_index_scan_operator,
)
from .store import host_sink_operator, make_result_fragment, store_operator
from .update import (
    append_operator,
    delete_operator,
    modify_operator,
    reinsert_operator,
)

__all__ = [
    "DestSpec",
    "JoinState",
    "OverflowExchange",
    "SpoolFile",
    "append_operator",
    "build_consumer",
    "close_output",
    "clustered_index_scan_operator",
    "combine_aggregate_operator",
    "delete_operator",
    "exact_match_operator",
    "file_scan_operator",
    "grouped_aggregate_operator",
    "host_sink_operator",
    "make_result_fragment",
    "modify_operator",
    "nonclustered_index_scan_operator",
    "operator_done",
    "partial_aggregate_operator",
    "probe_consumer",
    "reinsert_operator",
    "resolve_round",
    "store_operator",
]
