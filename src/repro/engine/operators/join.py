"""Distributed Simple hash-partitioned join [DEWI85, KITS83].

Phase one builds main-memory hash tables from the (smaller) building
relation; phase two probes them with the larger relation.  When a node's
hash table exceeds its memory budget the *Simple* overflow algorithm kicks
in: the node halves the fraction of the key space it keeps resident, evicts
everything else to spool files, and — crucially — the overflow tuples are
redistributed across **all** joining processors with a *different* hash
function ("This change in hash functions is necessary in order to ensure
that all joining processors are used in the case when only a subset of
sites overflow").  Spooled build/probe pairs are joined recursively, one
round per overflow generation, which is what makes the algorithm
"deteriorate exponentially with multiple overflows" (Figure 13) and also
why Local joins lose their short-circuit advantage after the first overflow
(the crossover in Figure 13).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Generator, Optional

from ...catalog.partitioning import stable_hash
from ...errors import ExecutionError
from ..bitfilter import BitVectorFilter
from ..node import ExecutionContext, Node
from ..ports import EndOfStream, InputPort, OutputPort
from .base import SpoolFile, operator_done

#: Safety valve against non-terminating overflow recursion.
MAX_OVERFLOW_ROUNDS = 200


_M64 = 0xFFFFFFFFFFFFFFFF


def _h2(value: Any, seed: int) -> float:
    """The overflow subpartitioning hash family: uniform in [0, 1).

    Independent of :func:`repro.catalog.partitioning.gamma_hash`, so the
    first overflow really does "switch hash functions".  A splitmix64
    finalizer makes different seeds mutually independent (Python's tuple
    hash is *not*, and correlated families would skew the overflow
    exchange).  Built on :func:`stable_hash` so string join keys route
    identically regardless of ``PYTHONHASHSEED``.
    """
    h = (stable_hash(value) ^ (seed * 0x9E3779B97F4A7C15)) & _M64
    h ^= h >> 30
    h = (h * 0xBF58476D1CE4E5B9) & _M64
    h ^= h >> 27
    h = (h * 0x94D049BB133111EB) & _M64
    h ^= h >> 31
    return (h >> 11) / float(1 << 53)


def _route_h(value: Any, seed: int) -> float:
    """The hash that picks which node owns a spooled tuple.

    It must be independent of :func:`_h2`: every spooled tuple has
    ``_h2(key) >= kept_fraction`` by construction, so routing by the same
    value would crowd all overflow work onto the top slice of the joining
    processors.  An independent family keeps every processor busy during
    overflow resolution — the paper's stated reason for switching hash
    functions.
    """
    return _h2(value, seed + 1_000_003)


class JoinState:
    """Per-node state of one distributed hash join."""

    def __init__(
        self,
        ctx: ExecutionContext,
        node: Node,
        index: int,
        build_pos: int,
        probe_pos: int,
        capacity_bytes: int,
        build_record_bytes: int,
        probe_record_bytes: int,
        output: OutputPort,
        bit_filter: Optional[BitVectorFilter],
        build_port: InputPort,
        probe_port: InputPort,
    ) -> None:
        self.ctx = ctx
        self.node = node
        self.index = index
        self.build_pos = build_pos
        self.probe_pos = probe_pos
        self.capacity_bytes = capacity_bytes
        self.build_record_bytes = build_record_bytes
        self.probe_record_bytes = probe_record_bytes
        self.output = output
        self.bit_filter = bit_filter
        self.build_port = build_port
        self.probe_port = probe_port
        self.entry_bytes = build_record_bytes * ctx.config.hash_table_overhead
        self.table: dict[Any, list[tuple]] = defaultdict(list)
        self.bytes_used = 0.0
        self.kept_fraction = 1.0
        self.seed = 0
        self.overflows = 0
        self.matches = 0
        self.build_tuples = 0
        self.probe_tuples = 0
        self.expected_build_tuples = 0.0

    def reset_for_round(self, seed: int, expected_build_tuples: float) -> None:
        self.table = defaultdict(list)
        self.bytes_used = 0.0
        self.kept_fraction = 1.0
        self.seed = seed
        self.expected_build_tuples = expected_build_tuples

    def target_kept_fraction(self) -> float:
        """The kept fraction chosen when an overflow is detected.

        The query scheduler knows the optimizer's estimate of the building
        relation, so the Simple-join subpartition can be sized to make the
        remainder fit — "the optimizer can be off by a factor of two in
        estimating either the amount of memory available or the selectivity
        factor of an operator without significantly affecting the response
        time" (Section 6.2.2).  When the estimate is wrong (we overflowed
        below the target already), fall back to halving so progress is
        guaranteed.
        """
        expected_bytes = self.expected_build_tuples * self.entry_bytes
        if expected_bytes > 0:
            target = self.capacity_bytes / (expected_bytes * 1.05)
            if target < self.kept_fraction:
                # Shave at least 10% so marginal overflows make progress.
                return min(target, self.kept_fraction * 0.9)
            # The estimate claims we fit, yet we overflowed: estimate is
            # off — shrink conservatively.
            return self.kept_fraction * 0.75
        return self.kept_fraction / 2.0


class OverflowExchange:
    """One generation of cross-node overflow spool files.

    Tuples spooled during round ``seed`` are routed to the join node that
    owns their ``_h2(key, seed)`` slice, so the next round's work is spread
    over every joining processor.
    """

    def __init__(
        self, ctx: ExecutionContext, states: list[JoinState], seed: int
    ) -> None:
        self.seed = seed
        self.n = len(states)
        self.build_spools = [
            SpoolFile(ctx, s.node, f"jb{seed}", s.build_record_bytes)
            for s in states
        ]
        self.probe_spools = [
            SpoolFile(ctx, s.node, f"jp{seed}", s.probe_record_bytes)
            for s in states
        ]

    def target_index(self, h2_value: float) -> int:
        return min(self.n - 1, int(h2_value * self.n))

    def spooled_build(self) -> int:
        return sum(len(s) for s in self.build_spools)

    def spooled_probe(self) -> int:
        return sum(len(s) for s in self.probe_spools)

    def flush(self) -> Generator[Any, Any, None]:
        for spool in [*self.build_spools, *self.probe_spools]:
            yield from spool.flush()


# ---------------------------------------------------------------------------
# build
# ---------------------------------------------------------------------------


def _insert_batch(
    state: JoinState,
    records: list[tuple],
    exchange: OverflowExchange,
) -> Generator[Any, Any, None]:
    """Insert build records, evicting to the exchange on overflow."""
    costs = state.node.config.costs
    # Every record pays the insert charge regardless of whether it spills;
    # the constants are integer-valued, so one bulk multiply is exactly the
    # float sum of the per-record adds.
    cpu = costs.hash_table_insert * len(records)
    seed = state.seed
    pos = state.build_pos
    spill: dict[int, list[tuple]] = defaultdict(list)
    bitset_cost = costs.bitfilter_set
    entry_bytes = state.entry_bytes
    capacity = state.capacity_bytes
    table = state.table
    bf = state.bit_filter
    bf_add = bf.add if bf is not None else None
    build_tuples = state.build_tuples
    bytes_used = state.bytes_used
    kept = state.kept_fraction
    # While no eviction has happened kept_fraction is 1.0 and
    # ``_h2(key) >= kept`` is unreachable (_h2 maps into [0, 1)), so the
    # subpartition hash is skipped entirely; the first eviction drops
    # ``kept`` below 1.0 and re-enables it mid-batch.
    fast = kept >= 1.0
    for record in records:
        key = record[pos]
        if not fast and _h2(key, seed) >= kept:
            spill[exchange.target_index(_route_h(key, seed))].append(record)
            continue
        table[key].append(record)
        build_tuples += 1
        bytes_used += entry_bytes
        if bf_add is not None:
            bf_add(key)
            cpu += bitset_cost
        if bytes_used > capacity:
            state.build_tuples = build_tuples
            state.bytes_used = bytes_used
            cpu += _evict(state, exchange, spill, costs)
            build_tuples = state.build_tuples
            bytes_used = state.bytes_used
            table = state.table
            kept = state.kept_fraction
            fast = kept >= 1.0
    state.build_tuples = build_tuples
    state.bytes_used = bytes_used
    state.ctx.metrics.record_hash_table_bytes(
        state.node.name, state.bytes_used
    )
    if state.ctx.trace is not None:
        state.ctx.trace.counter(
            state.node.name, "hash-table", state.ctx.sim.now,
            {"bytes": float(state.bytes_used),
             "overflows": float(state.overflows)},
        )
    eff = state.node.work_effect(cpu)
    if eff is not None:
        yield eff
    for target, batch in spill.items():
        yield from exchange.build_spools[target].add_batch(
            batch, sender=state.node
        )


def _evict(
    state: JoinState,
    exchange: OverflowExchange,
    spill: dict[int, list[tuple]],
    costs: Any,
) -> float:
    """Shrink the kept key-space fraction; move evicted entries to spill.

    Returns the CPU instructions spent rehashing the table.
    """
    state.overflows += 1
    state.ctx.metrics.record_overflow_chunk(state.node.name)
    state.kept_fraction = state.target_kept_fraction()
    seed = state.seed
    doomed = [
        key for key in state.table if _h2(key, seed) >= state.kept_fraction
    ]
    cpu = costs.hash_table_insert * len(state.table)
    for key in doomed:
        bucket = state.table.pop(key)
        state.bytes_used -= state.entry_bytes * len(bucket)
        state.build_tuples -= len(bucket)
        spill[exchange.target_index(_route_h(key, seed))].extend(bucket)
    if not doomed and state.kept_fraction < 2 ** -40:
        raise ExecutionError(
            "hash-table overflow cannot make progress (all keys collide)"
        )
    return cpu


def build_consumer(
    ctx: ExecutionContext, state: JoinState, exchange: OverflowExchange
) -> Generator[Any, Any, None]:
    """Drain the build port into the hash table (phase one).

    The uninstrumented path is flattened: one Get yield per message with
    the port's metrics/cost accounting inlined (``receive_effect``), no
    ``next_packet`` generator per packet.  Effects and their order are
    identical to the generator path.
    """
    port = state.build_port
    if ctx.profiler is not None or ctx.trace is not None:
        while True:
            packet = yield from port.next_packet()
            if packet is None:
                break
            yield from _insert_batch(state, packet.records, exchange)
        return
    get_effect = port._get_effect
    receive = port.receive_effect
    while port.expected_producers == 0 or (
        port._eos_seen < port.expected_producers
    ):
        message = yield get_effect
        if type(message) is EndOfStream:
            port._eos_seen += 1
            continue
        eff = receive(message)
        if eff is not None:
            yield eff
        yield from _insert_batch(state, message.records, exchange)


def overflow_route(states_count: int):
    """Probe-split routing used after the first overflow.

    "If the same function was used to distribute both overflow tuples and
    the original tuples, the same sets of tuples would continuously re-map
    to the same processors" — so once any node overflows, the scheduler
    switches the *entire* distribution (kept tables and the probe stream)
    to the new hash function.  For a Local join on the partitioning
    attribute this destroys the short-circuit advantage, producing the
    Local/Remote crossover of Figure 13.
    """

    def route(value: Any) -> int:
        return min(states_count - 1, int(_route_h(value, 0) * states_count))

    return route


def redistribute_tables_after_overflow(
    ctx: ExecutionContext, states: list[JoinState], exchange: OverflowExchange
) -> list[Generator[Any, Any, None]]:
    """Re-home every kept build tuple under the switched hash function.

    All nodes also adopt the *global minimum* kept fraction, evicting any
    entry above it into the owner's spool — otherwise a probe tuple could
    be spooled at a node whose partner build tuple is still resident (or
    vice versa) and matches would be lost.  If a receiving node would
    exceed its memory, the global fraction halves again.

    The functional exchange happens immediately; the returned per-node
    generators charge CPU and network when the scheduler runs them.
    """
    n = len(states)
    route = overflow_route(n)
    kept_global = min(state.kept_fraction for state in states)

    def evict_to_global() -> None:
        for state in states:
            for key in list(state.table):
                if _h2(key, 0) >= kept_global:
                    bucket = state.table.pop(key)
                    state.bytes_used -= state.entry_bytes * len(bucket)
                    state.build_tuples -= len(bucket)
                    spool_moves[route(key)].extend(bucket)
                    spool_from[state.index] += len(bucket)

    spool_moves: list[list[tuple]] = [[] for _ in range(n)]
    spool_from: list[int] = [0] * n
    moved_out: list[int] = [0] * n
    moved_in: list[int] = [0] * n
    transfers: dict[tuple[int, int], int] = defaultdict(int)

    evict_to_global()
    # Move surviving entries to their route-hash owner.
    incoming: list[list[tuple[Any, list[tuple]]]] = [[] for _ in range(n)]
    for state in states:
        for key in list(state.table):
            target = route(key)
            if target == state.index:
                continue
            bucket = state.table.pop(key)
            state.bytes_used -= state.entry_bytes * len(bucket)
            state.build_tuples -= len(bucket)
            moved_out[state.index] += len(bucket)
            transfers[(state.index, target)] += len(bucket)
            incoming[target].append((key, bucket))
    for target, entries in enumerate(incoming):
        state = states[target]
        for key, bucket in entries:
            state.table[key].extend(bucket)
            state.bytes_used += state.entry_bytes * len(bucket)
            state.build_tuples += len(bucket)
            moved_in[target] += len(bucket)
    # Receiving nodes must still fit: shrink the global fraction until
    # every node does (counts as another detected overflow there).
    while any(s.bytes_used > s.capacity_bytes for s in states):
        for state in states:
            if state.bytes_used > state.capacity_bytes:
                state.overflows += 1
                ctx.metrics.record_overflow_chunk(state.node.name)
        kept_global /= 2.0
        evict_to_global()
    for state in states:
        state.kept_fraction = kept_global

    def charge(state: JoinState) -> Generator[Any, Any, None]:
        i = state.index
        costs = state.node.config.costs
        yield from state.node.work(
            costs.split_hash * (state.build_tuples + moved_out[i])
            + costs.result_tuple * (moved_out[i] + spool_from[i])
            + costs.hash_table_insert * moved_in[i]
        )
        packet = ctx.config.packet_size
        for (src, dst), count in transfers.items():
            if src != i:
                continue
            nbytes = count * state.build_record_bytes
            for _ in range(max(1, nbytes // packet)):
                yield from ctx.net.transfer(
                    states[src].node.name, states[dst].node.name, packet
                )
        if spool_moves[i]:
            yield from exchange.build_spools[i].add_batch(
                spool_moves[i], sender=state.node
            )
        ctx.metrics.add("overflow_redistributed_tuples", moved_out[i])

    return [charge(state) for state in states]


# ---------------------------------------------------------------------------
# probe
# ---------------------------------------------------------------------------


def _probe_batch(
    state: JoinState,
    records: list[tuple],
    exchange: OverflowExchange,
) -> Generator[Any, Any, None]:
    """Probe with a batch, spooling tuples aimed at evicted partitions."""
    costs = state.node.config.costs
    # Every record pays the probe charge whether it hits, misses, or
    # spills; integer-valued constants make the bulk multiply exact.
    cpu = costs.hash_table_probe * len(records)
    seed = state.seed
    pos = state.probe_pos
    table_get = state.table.get
    result_cost = costs.join_result_tuple
    spill: dict[int, list[tuple]] = defaultdict(list)
    results: list[tuple] = []
    res_append = results.append
    if state.kept_fraction >= 1.0:
        # No partition was evicted: the spill branch is unreachable (see
        # _insert_batch), so skip the subpartition hash per tuple.
        for record in records:
            bucket = table_get(record[pos])
            if bucket:
                cpu += result_cost * len(bucket)
                for build_record in bucket:
                    res_append(build_record + record)
        state.probe_tuples += len(records)
    else:
        kept = state.kept_fraction
        for record in records:
            key = record[pos]
            state.probe_tuples += 1
            if _h2(key, seed) >= kept:
                spill[exchange.target_index(_route_h(key, seed))].append(
                    record
                )
                continue
            bucket = table_get(key)
            if bucket:
                cpu += result_cost * len(bucket)
                for build_record in bucket:
                    res_append(build_record + record)
    state.matches += len(results)
    eff = state.node.work_effect(cpu)
    if eff is not None:
        yield eff
    if results:
        yield from state.output.emit_many(results)
    if spill:
        for target, batch in spill.items():
            yield from exchange.probe_spools[target].add_batch(
                batch, sender=state.node
            )


def probe_consumer(
    ctx: ExecutionContext, state: JoinState, exchange: OverflowExchange
) -> Generator[Any, Any, None]:
    """Drain the probe port through the hash table (phase two).

    Flattened like :func:`build_consumer` when uninstrumented.
    """
    port = state.probe_port
    if ctx.profiler is not None or ctx.trace is not None:
        while True:
            packet = yield from port.next_packet()
            if packet is None:
                break
            yield from _probe_batch(state, packet.records, exchange)
        return
    get_effect = port._get_effect
    receive = port.receive_effect
    while port.expected_producers == 0 or (
        port._eos_seen < port.expected_producers
    ):
        message = yield get_effect
        if type(message) is EndOfStream:
            port._eos_seen += 1
            continue
        eff = receive(message)
        if eff is not None:
            yield eff
        yield from _probe_batch(state, message.records, exchange)


# ---------------------------------------------------------------------------
# overflow resolution rounds
# ---------------------------------------------------------------------------


def resolve_round(
    ctx: ExecutionContext,
    state: JoinState,
    build_spool: SpoolFile,
    probe_spool: SpoolFile,
    next_exchange: OverflowExchange,
) -> Generator[Any, Any, None]:
    """Join one node's spooled partition pair from the previous round."""
    # The node's own spool size is known exactly, so the round's
    # subpartition fraction is well chosen.
    state.reset_for_round(next_exchange.seed, float(len(build_spool)))
    for page_no, records in build_spool.read_pages():
        yield from build_spool.read_page_io(page_no)
        yield from _insert_batch(state, records, next_exchange)
    for page_no, records in probe_spool.read_pages():
        yield from probe_spool.read_page_io(page_no)
        yield from _probe_batch(state, records, next_exchange)


def close_output(
    ctx: ExecutionContext, state: JoinState
) -> Generator[Any, Any, None]:
    """Flush/close the node's output stream and report completion."""
    yield from state.output.close()
    yield from operator_done(ctx, state.node)


class SimpleHashJoinDriver:
    """Drives a hash join with Gamma's original *Simple* overflow scheme:
    build, (maybe) switch hash functions, probe, then resolution rounds
    until no partition spills (Section 6.1)."""

    def run(self, sched: Any, join: Any, dest: Any) -> Generator[Any, Any, None]:
        from ...errors import ExecutionError
        from ...sim import WaitAll
        from ..ports import InputPort
        from ..split_table import Destination
        from .base import DestSpec

        ctx = sched.ctx
        config = ctx.config
        nodes = ctx.placement_nodes(join.placement)
        capacity = config.join_memory_total // len(nodes)
        build_pos = join.build.schema.position(join.build_attr)
        probe_pos = join.probe.schema.position(join.probe_attr)
        states: list[JoinState] = []
        build_ports: list[Destination] = []
        probe_ports: list[Destination] = []
        for idx, node in enumerate(nodes):
            build_port = InputPort(ctx, f"{join.op_id}.b.{idx}", node)
            probe_port = InputPort(ctx, f"{join.op_id}.p.{idx}", node)
            build_ports.append(Destination(node.name, build_port))
            probe_ports.append(Destination(node.name, probe_port))
            output = sched._make_output(node, dest, join.schema)
            bit_filter = (
                BitVectorFilter() if config.use_bit_filters else None
            )
            # A join is logically two operators (build and probe): two
            # activations' worth of scheduling messages per node.
            yield from sched._initiate(node)
            yield from sched._initiate(node)
            states.append(
                JoinState(
                    ctx, node, idx, build_pos, probe_pos, capacity,
                    join.build.schema.tuple_bytes,
                    join.probe.schema.tuple_bytes,
                    output, bit_filter, build_port, probe_port,
                )
            )
        # The optimizer's building-relation estimate sizes the overflow
        # subpartition fraction (Section 6.2.2's robustness claim).
        est = join.build_input.estimated_rows
        for state in states:
            state.expected_build_tuples = est / len(nodes)
        exchange = OverflowExchange(ctx, states, seed=1)

        # Phase one: build.
        build_procs = [
            sched._spawn(s.node, build_consumer(ctx, s, exchange),
                         f"{join.op_id}.build.{s.index}",
                         op_id=join.build_input.op_id, phase="build")
            for s in states
        ]
        yield from sched.run_op(
            join.build,
            sched.lower_exchange(join.build_input.exchange, build_ports),
        )
        yield WaitAll(build_procs)

        # Bit-vector filters: collected from the joining nodes, merged, and
        # installed in the probe-side split tables before probing starts.
        probe_filter: Optional[BitVectorFilter] = None
        if config.use_bit_filters:
            probe_filter = BitVectorFilter()
            for state in states:
                assert state.bit_filter is not None
                yield from ctx.net.transfer(
                    state.node.name, ctx.scheduler_node.name,
                    state.bit_filter.size_bytes,
                )
                probe_filter.union(state.bit_filter)

        # Hash-function switch: if any node overflowed during the build,
        # the scheduler redistributes the kept tables under the new hash
        # and passes the new function to the probing selections' split
        # tables (Section 6.2.2) — Local joins lose their short-circuit.
        if any(s.overflows for s in states):
            charges = redistribute_tables_after_overflow(ctx, states, exchange)
            redist_procs = [
                sched._spawn(s.node, gen, f"{join.op_id}.redist.{s.index}",
                             op_id=join.op_id, phase="overflow")
                for s, gen in zip(states, charges)
            ]
            yield WaitAll(redist_procs)
            probe_dest = DestSpec(
                "fn", probe_ports, attr=join.probe_attr,
                bit_filter=probe_filter,
                route_fn=overflow_route(len(states)),
            )
        else:
            probe_dest = sched.lower_exchange(
                join.exchange, probe_ports, bit_filter=probe_filter
            )

        # Phase two: probe.
        probe_procs = [
            sched._spawn(s.node, probe_consumer(ctx, s, exchange),
                         f"{join.op_id}.probe.{s.index}",
                         op_id=join.op_id, phase="probe")
            for s in states
        ]
        yield from sched.run_op(join.probe, probe_dest)
        yield WaitAll(probe_procs)

        # Overflow resolution rounds: one generation at a time, all nodes
        # in parallel, until no partition spilled.
        round_no = 1
        yield from exchange.flush()
        while exchange.spooled_build() or exchange.spooled_probe():
            round_no += 1
            if round_no > 100:
                raise ExecutionError("join overflow did not converge")
            next_exchange = OverflowExchange(ctx, states, seed=round_no)
            round_procs = [
                sched._spawn(
                    s.node,
                    resolve_round(
                        ctx, s,
                        exchange.build_spools[s.index],
                        exchange.probe_spools[s.index],
                        next_exchange,
                    ),
                    f"{join.op_id}.ovfl.{round_no}.{s.index}",
                    op_id=join.op_id, phase="overflow",
                )
                for s in states
            ]
            yield WaitAll(round_procs)
            yield from next_exchange.flush()
            exchange = next_exchange

        closers = [
            sched._spawn(s.node, close_output(ctx, s),
                         f"{join.op_id}.close.{s.index}",
                         op_id=join.op_id, phase="probe")
            for s in states
        ]
        yield WaitAll(closers)
        sched.overflows_per_node = [s.overflows for s in states]
