"""Bit-vector filters [BABB79].

The Gamma optimizer can insert an array of bit-vector filters into a split
table: the join build phase sets a bit for every join-attribute value it
stores, and the selection producing probe tuples tests the bit before
shipping a tuple — discarding most non-matching tuples at the disk sites
instead of paying network and probe costs for them.
"""

from __future__ import annotations

from typing import Any

from ..catalog.partitioning import stable_hash
from ..errors import ConfigError


def _mix(value: Any, seed: int) -> int:
    """A second, independent hash family (distinct from gamma_hash).

    Routed through :func:`stable_hash` so string join keys set/test the
    same bits in every process (integers keep the builtin hash exactly).
    """
    h = hash((seed, stable_hash(value)))
    h ^= (h >> 16)
    return h & 0x7FFFFFFF


class BitVectorFilter:
    """A fixed-size Bloom-style filter with ``n_hashes`` probes."""

    def __init__(self, n_bits: int = 1 << 16, n_hashes: int = 2) -> None:
        if n_bits < 8:
            raise ConfigError("filter needs at least 8 bits")
        if n_hashes < 1:
            raise ConfigError("filter needs at least one hash")
        self.n_bits = n_bits
        self.n_hashes = n_hashes
        self._bits = bytearray(n_bits // 8 + 1)
        self._seeds = tuple(range(n_hashes))
        self.set_count = 0

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"<BitVectorFilter {self.n_bits}b set={self.set_count}>"

    @property
    def size_bytes(self) -> int:
        return len(self._bits)

    def add(self, value: Any) -> None:
        """Set the bits for ``value`` (build side)."""
        self.set_count += 1
        # _mix, inlined with stable_hash's integer fast path hoisted out
        # of the per-seed loop (the bit positions are unchanged).
        sv = hash(value) if type(value) is int else stable_hash(value)
        bits = self._bits
        n_bits = self.n_bits
        for seed in self._seeds:
            h = hash((seed, sv))
            h ^= h >> 16
            bit = (h & 0x7FFFFFFF) % n_bits
            bits[bit >> 3] |= 1 << (bit & 7)

    def might_contain(self, value: Any) -> bool:
        """Probe side: False means *definitely* absent."""
        sv = hash(value) if type(value) is int else stable_hash(value)
        bits = self._bits
        n_bits = self.n_bits
        for seed in self._seeds:
            h = hash((seed, sv))
            h ^= h >> 16
            bit = (h & 0x7FFFFFFF) % n_bits
            if not bits[bit >> 3] & (1 << (bit & 7)):
                return False
        return True

    def union(self, other: "BitVectorFilter") -> None:
        """Merge another node's filter into this one (the scheduler ORs
        per-node filters before installing them in split tables)."""
        if other.n_bits != self.n_bits or other.n_hashes != self.n_hashes:
            raise ConfigError("cannot union differently-shaped filters")
        for i, byte in enumerate(other._bits):
            self._bits[i] |= byte
        self.set_count += other.set_count
