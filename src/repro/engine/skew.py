"""Skew-aware redistribution statistics, shared by both planners.

Plain hash partitioning sends every tuple with join-attribute value *v*
to fragment ``gamma_hash(v, N)``.  Under a skewed value distribution one
fragment receives the hot values' entire weight and the join runs at the
speed of its slowest site.  These helpers turn a plan-time sample of the
join attribute into the three classic mitigations:

* :func:`histogram_boundaries` — equal-depth range cut points, so each
  fragment covers the same sampled tuple count rather than the same
  key-space width;
* :func:`virtual_map` — virtual-processor hashing: over-partition into
  ``V = factor × N`` buckets, then bin-pack the buckets onto the N
  fragments by sampled load (longest-processing-time-first);
* :func:`hot_keys` — fragment-replicate: identify the values heavy
  enough that no *partitioning* scheme can balance them, so the build
  side broadcasts them and the probe side sprays them round-robin.

All three are pure functions of the sample — deterministic, and shared
by the Gamma :class:`~repro.engine.planner.Planner` and the
:class:`~repro.teradata.planner.TeradataPlanner`.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional, Sequence

from ..catalog import gamma_hash

#: Valid values for the planners' ``skew_strategy`` knob.
SKEW_STRATEGIES = ("hash", "range", "vhash", "hot-broadcast")

#: Records sampled from the probe-side base relation per join.
SKEW_SAMPLE = 2000

#: Virtual buckets per join fragment for ``vhash``.
VIRTUAL_FACTOR = 8

#: ``hot-broadcast``: a key is hot when its sampled share of the stream
#: is at least this fraction of one fragment's fair share.
HOT_KEY_SHARE = 0.5


def histogram_boundaries(
    sample: Sequence, n_frag: int
) -> Optional[list]:
    """Equal-depth quantile cut points from the sampled histogram.

    Tuples route by ``bisect_right(boundaries, value)``, so the cut
    points are the *sorted sample's* quantiles — with a skewed
    distribution the slices are narrow around the hot values and wide
    over the cold tail.  Returns None when the sample is too small to
    cut, or so concentrated that ranges cannot split it (a single
    dominant key would send everything to fragment 0 anyway).
    """
    ordered = sorted(sample)
    if len(ordered) < n_frag:
        return None
    boundaries = [
        ordered[(len(ordered) * i) // n_frag - 1]
        for i in range(1, n_frag)
    ]
    if boundaries[0] == ordered[-1]:
        return None
    return boundaries


def virtual_map(
    sample: Sequence, n_frag: int, factor: int = VIRTUAL_FACTOR
) -> tuple[int, ...]:
    """Virtual-processor hash map: ``map[gamma_hash(v, V)]`` is the
    fragment for value ``v``, with the V virtual buckets bin-packed onto
    the fragments by sampled load (heaviest first — the LPT heuristic).
    Ties break on the lower bucket / fragment index, so the map is a
    deterministic function of the sample."""
    v = n_frag * factor
    load = [0] * v
    for value in sample:
        load[gamma_hash(value, v)] += 1
    assignment = [0] * v
    fragment_load = [0] * n_frag
    for bucket in sorted(range(v), key=lambda b: (-load[b], b)):
        target = min(range(n_frag), key=lambda f: (fragment_load[f], f))
        assignment[bucket] = target
        fragment_load[target] += load[bucket]
    return tuple(assignment)


def hot_keys(
    sample: Sequence, n_frag: int, share: float = HOT_KEY_SHARE
) -> frozenset:
    """Values whose sampled frequency reaches ``share`` of one
    fragment's fair share of the stream.  Empty when the sample is
    balanced — the caller should then fall back to plain hashing."""
    counts = Counter(sample)
    threshold = share * len(sample) / n_frag
    return frozenset(
        value for value, count in counts.items() if count >= threshold
    )


__all__ = [
    "HOT_KEY_SHARE",
    "SKEW_SAMPLE",
    "SKEW_STRATEGIES",
    "VIRTUAL_FACTOR",
    "histogram_boundaries",
    "hot_keys",
    "virtual_map",
]
