"""The recovery server (the Conclusions' second announced fix).

Gamma as measured in the paper "does not provide logging"; the authors
"intend on implementing a recovery server that will collect log records
from each processor".  When :attr:`GammaConfig.use_recovery_server` is on,
a dedicated logging node joins the configuration: every operator that
mutates permanent data ships its log records there *before* its page
writes commit (write-ahead discipline).  Records are batched into log
pages, cross the network like any other traffic, and are forced to the
recovery node's disk sequentially — so bulk loads see group-commit
amortisation while single-tuple updates pay a full round trip.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator


if TYPE_CHECKING:  # pragma: no cover - typing only
    from .node import ExecutionContext, Node

#: CPU cost (instructions) to format one log record at the mutating node.
LOG_RECORD_CPU = 300.0

#: CPU cost (instructions) to apply one record at the recovery server.
LOG_APPLY_CPU = 200.0


class RecoveryLog:
    """Per-query handle on the recovery server's log stream."""

    def __init__(self, ctx: "ExecutionContext", node: "Node") -> None:
        self.ctx = ctx
        self.node = node
        self.records_logged = 0
        self.pages_forced = 0
        self._buffered_bytes = 0
        self._next_page = 0

    def ship(
        self,
        src: "Node",
        n_records: int,
        payload_bytes: int,
        force: bool = False,
    ) -> Generator[Any, Any, None]:
        """Write-ahead ship ``n_records`` of log from ``src``.

        Completed log pages are written as they fill (group commit for
        bulk mutations); ``force=True`` additionally forces the partial
        tail page — the single-tuple-update commit path.
        """
        if n_records <= 0:
            return
        config = self.ctx.config
        total_bytes = payload_bytes + n_records * config.log_record_bytes
        self.records_logged += n_records
        self.ctx.metrics.add("log_records", n_records)
        yield from src.work(LOG_RECORD_CPU * n_records)
        # Ship in packet-sized chunks.
        remaining = total_bytes
        while remaining > 0:
            chunk = min(remaining, config.packet_size)
            yield from self.ctx.net.transfer(src.name, self.node.name, chunk)
            remaining -= chunk
        yield from self.node.work(LOG_APPLY_CPU * n_records)
        self._buffered_bytes += total_bytes
        while self._buffered_bytes >= config.page_size:
            yield from self._force_page()
            self._buffered_bytes -= config.page_size
        if force:
            yield from self.commit()

    def commit(self) -> Generator[Any, Any, None]:
        """Force the partial tail page (end-of-transaction durability)."""
        if self._buffered_bytes > 0:
            yield from self._force_page()
            self._buffered_bytes = 0

    def _force_page(self) -> Generator[Any, Any, None]:
        assert self.node.drive is not None
        self.pages_forced += 1
        self.ctx.metrics.add("log_pages_forced")
        yield from self.node.drive.write(
            "recovery.log", self._next_page, self.ctx.config.page_size,
            sequential=True,
        )
        self._next_page += 1
