"""Two-phase locking with deadlock detection.

The paper's tests ran "with full concurrency control" on both machines;
Gamma's scheduler processor also performs "global deadlock detection"
(Section 2).  This module provides both:

* a fragment-granularity lock manager — shared locks for scans, exclusive
  locks for updates, strict two-phase (all locks released at end of
  transaction);
* a waits-for-graph deadlock detector that runs whenever a request blocks,
  aborting the requester when it would close a cycle.

The engine acquires each transaction's locks in a canonical sorted order,
so its own workloads cannot deadlock — the detector guards ad-hoc users of
the public API.
"""

from __future__ import annotations

from collections import deque
from enum import Enum
from typing import Any, Generator, Hashable, Optional

from ..errors import ExecutionError
from ..sim import Get, Simulation, Store


class DeadlockError(ExecutionError):
    """Raised inside the requesting process chosen as the deadlock victim."""


class LockTimeoutError(ExecutionError):
    """Raised inside a requester whose lock wait exceeded its timeout."""


#: Sentinel delivered through a waiter's wakeup store when its wait expires
#: (a normal grant delivers ``None``).
_TIMED_OUT = object()


def _noop(*_args: Any) -> None:
    return None


class LockMode(Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


def _compatible(held: set[LockMode], want: LockMode) -> bool:
    if not held:
        return True
    return want is LockMode.SHARED and held == {LockMode.SHARED}


class _LockState:
    __slots__ = ("holders", "queue")

    def __init__(self) -> None:
        self.holders: dict[Hashable, LockMode] = {}
        self.queue: deque[tuple[Hashable, LockMode, Store]] = deque()

    def held_modes(self) -> set[LockMode]:
        return set(self.holders.values())


class LockManager:
    """Strict 2PL over arbitrary hashable lock names."""

    def __init__(self, sim: Simulation) -> None:
        self.sim = sim
        self._locks: dict[Hashable, _LockState] = {}
        # Lock names per txn in acquisition order (dict, not set: release
        # order feeds _dispatch scheduling, and set iteration over names
        # containing strings varies with the per-process hash salt).
        self._held_by_txn: dict[Hashable, dict[Hashable, None]] = {}
        self._waits_for: dict[Hashable, set[Hashable]] = {}
        self.grants = 0
        self.blocks = 0
        self.deadlocks = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    def acquire(
        self,
        txn: Hashable,
        name: Hashable,
        mode: LockMode,
        timeout: Optional[float] = None,
    ) -> Generator[Any, Any, None]:
        """Block until ``txn`` holds ``name`` in ``mode``.

        ``timeout`` bounds the wait: when it expires the request is
        withdrawn — the queue entry is removed, the requester's waits-for
        edges are dropped (so the deadlock detector never sees a stale
        edge from a departed transaction), and waiters behind it are
        re-examined for grants.

        Raises:
            DeadlockError: if waiting would close a waits-for cycle (the
                requester is the victim, per Gamma's global detector).
            LockTimeoutError: if the wait exceeded ``timeout`` seconds.
        """
        state = self._locks.setdefault(name, _LockState())
        current = state.holders.get(txn)
        if current is mode or current is LockMode.EXCLUSIVE:
            return
        if current is LockMode.SHARED and mode is LockMode.EXCLUSIVE:
            # Upgrade: allowed only when we are the sole holder.
            if set(state.holders) == {txn} and not state.queue:
                state.holders[txn] = LockMode.EXCLUSIVE
                return
        elif _compatible(state.held_modes(), mode) and not state.queue:
            self._grant(txn, name, mode, state)
            return
        # Must wait: record the waits-for edges and check for a cycle.
        self.blocks += 1
        blockers = {t for t in state.holders if t != txn}
        blockers |= {t for t, _m, _s in state.queue if t != txn}
        self._waits_for[txn] = blockers
        if self._closes_cycle(txn):
            del self._waits_for[txn]
            self.deadlocks += 1
            raise DeadlockError(
                f"transaction {txn!r} would deadlock waiting for {name!r}"
            )
        wakeup = Store(f"lock.{name}.{txn}")
        entry = (txn, mode, wakeup)
        state.queue.append(entry)
        if timeout is not None:
            self.sim.call_after(
                timeout, lambda: self._expire(name, state, entry)
            )
        got = yield Get(wakeup)
        self._waits_for.pop(txn, None)
        if got is _TIMED_OUT:
            raise LockTimeoutError(
                f"transaction {txn!r} timed out after {timeout}s"
                f" waiting for {name!r}"
            )

    def release_all(self, txn: Hashable) -> None:
        """End of transaction: drop every lock ``txn`` holds (strict 2PL)."""
        for name in self._held_by_txn.pop(txn, ()):
            state = self._locks.get(name)
            if state is None:
                continue
            state.holders.pop(txn, None)
            self._dispatch(name, state)
        self._waits_for.pop(txn, None)

    def holders_of(self, name: Hashable) -> dict[Hashable, LockMode]:
        state = self._locks.get(name)
        return dict(state.holders) if state else {}

    # ------------------------------------------------------------------
    def _grant(
        self, txn: Hashable, name: Hashable, mode: LockMode, state: _LockState
    ) -> None:
        state.holders[txn] = mode
        self._held_by_txn.setdefault(txn, {})[name] = None
        self.grants += 1

    def _dispatch(self, name: Hashable, state: _LockState) -> None:
        while state.queue:
            txn, mode, wakeup = state.queue[0]
            upgrade_ok = (
                state.holders.get(txn) is LockMode.SHARED
                and mode is LockMode.EXCLUSIVE
                and set(state.holders) == {txn}
            )
            if upgrade_ok:
                state.holders[txn] = LockMode.EXCLUSIVE
            elif _compatible(state.held_modes(), mode):
                self._grant(txn, name, mode, state)
            else:
                break
            state.queue.popleft()
            self.sim.call_after(0.0, lambda w=wakeup: w._put(
                self.sim, None, lambda *_: None
            ))

    def _expire(
        self,
        name: Hashable,
        state: _LockState,
        entry: tuple[Hashable, LockMode, Store],
    ) -> None:
        """Withdraw a still-queued request whose wait timer fired.

        A no-op when the request was granted (dispatch removed it from the
        queue) before the timer fired at the same timestamp.
        """
        try:
            state.queue.remove(entry)
        except ValueError:
            return
        txn, _mode, wakeup = entry
        self._waits_for.pop(txn, None)
        self.timeouts += 1
        # The withdrawn entry may have been gating grantable waiters.
        self._dispatch(name, state)
        wakeup._put(self.sim, _TIMED_OUT, _noop)

    def _closes_cycle(self, start: Hashable) -> bool:
        """DFS over the waits-for graph looking for a path back to start."""
        stack = list(self._waits_for.get(start, ()))
        seen: set[Hashable] = set()
        while stack:
            txn = stack.pop()
            if txn == start:
                return True
            if txn in seen:
                continue
            seen.add(txn)
            stack.extend(self._waits_for.get(txn, ()))
        return False
