"""Timed bulk loading.

Section 2: "when tuples are loaded into a relation, they are distributed
[round-robin / hashed / range / uniform] among all disk drives".  The
untimed ``load_relation`` builds the fragments instantly (convenient for
benchmarks whose clock starts at query submission); this module makes the
load itself a measured dataflow operation: the host streams tuples through
a split table to a loader operator at every disk site, which fills pages,
writes them out, and bulk-builds the requested indexes.
"""

from __future__ import annotations

from math import ceil
from typing import Any, Generator, Optional, Sequence

from ..catalog import PartitioningStrategy
from ..sim import Delay, Process, Put, WaitAll
from ..storage import Schema, external_sort, records_per_page
from ..storage.btree import ENTRY_OVERHEAD_BYTES, NODE_HEADER_BYTES, POINTER_BYTES
from .node import ExecutionContext, Node
from .ports import DataPacket, EndOfStream, InputPort

#: Host CPU instructions to stage one tuple for shipment.
HOST_TUPLE_CPU = 200.0


class LoadRun:
    """One timed load: host streaming + per-site loader operators."""

    def __init__(
        self,
        ctx: ExecutionContext,
        name: str,
        schema: Schema,
        records: Sequence[tuple],
        strategy: PartitioningStrategy,
        clustered_on: Optional[str],
        secondary_on: Sequence[str],
    ) -> None:
        self.ctx = ctx
        self.name = name
        self.schema = schema
        self.records = records
        self.strategy = strategy
        self.clustered_on = clustered_on
        self.secondary_on = list(secondary_on)
        self.loaded = 0

    # ------------------------------------------------------------------
    def host_process(self) -> Generator[Any, Any, None]:
        ctx = self.ctx
        yield Delay(ctx.config.host_startup_s)
        n_sites = len(ctx.disk_nodes)
        self.strategy.prepare(self.records, self.schema, n_sites)
        ports = [
            InputPort(ctx, f"load.{i}", node)
            for i, node in enumerate(ctx.disk_nodes)
        ]
        for port in ports:
            port.add_producer()
        procs: list[Process] = []
        for i, node in enumerate(ctx.disk_nodes):
            procs.append(
                ctx.sim.spawn(
                    self._loader(node, ports[i]), name=f"load.{i}"
                )
            )
        yield from self._stream(ports)
        results = yield WaitAll(procs)
        self.loaded = sum(results)

    def _stream(self, ports: list[InputPort]) -> Generator[Any, Any, None]:
        """The host ships tuples through the partitioning split."""
        ctx = self.ctx
        host = ctx.host_node
        n_sites = len(ports)
        capacity = max(1, ctx.config.packet_size // self.schema.tuple_bytes)
        buffers: list[list[tuple]] = [[] for _ in range(n_sites)]
        for record in self.records:
            site = self.strategy.site_of(record, n_sites)
            yield from host.work(HOST_TUPLE_CPU)
            buffers[site].append(record)
            if len(buffers[site]) >= capacity:
                yield from self._ship(host, ports[site], buffers[site])
                buffers[site] = []
        for site, buffer in enumerate(buffers):
            if buffer:
                yield from self._ship(host, ports[site], buffer)
        for site, port in enumerate(ports):
            yield from ctx.net.transfer(
                host.name, ctx.disk_nodes[site].name, 64
            )
            yield Put(port.store, EndOfStream("host"))

    def _ship(
        self, host: Node, port: InputPort, records: list[tuple]
    ) -> Generator[Any, Any, None]:
        ctx = self.ctx
        nbytes = len(records) * self.schema.tuple_bytes
        yield from host.work(ctx.config.costs.packet_send)
        yield from ctx.net.transfer(host.name, port.node.name, nbytes)
        yield Put(
            port.store,
            DataPacket(records, nbytes, "host", src_node=host.name),
        )
        ctx.metrics.add("load_packets")

    # ------------------------------------------------------------------
    def _loader(
        self, node: Node, port: InputPort
    ) -> Generator[Any, Any, int]:
        """Receive this site's share, write pages, bulk-build indexes."""
        ctx = self.ctx
        costs = ctx.config.costs
        page_size = ctx.config.page_size
        per_page = records_per_page(page_size, self.schema.tuple_bytes)
        received = 0
        pages_written = 0
        while True:
            packet = yield from port.next_packet()
            if packet is None:
                break
            received += len(packet.records)
            yield from node.work(costs.store_tuple * len(packet.records))
            while received // per_page > pages_written:
                yield from node.write_page(self.name, pages_written)
                pages_written += 1
        if received % per_page:
            yield from node.write_page(self.name, pages_written)
            pages_written += 1
        data_pages = pages_written
        if self.clustered_on is not None:
            yield from self._charge_sort(node, received, data_pages)
            # Rewrite the file in key order + the sparse index on top.
            for page_no in range(data_pages):
                yield from node.write_page(f"{self.name}.sorted", page_no)
            yield from self._charge_index_build(
                node, n_entries=data_pages, payload=POINTER_BYTES
            )
        for _attr in self.secondary_on:
            yield from self._charge_sort(node, received, data_pages)
            yield from self._charge_index_build(
                node, n_entries=received, payload=POINTER_BYTES
            )
        return received

    def _charge_sort(
        self, node: Node, n_records: int, n_pages: int
    ) -> Generator[Any, Any, None]:
        ctx = self.ctx
        _ordered, stats = external_sort(
            [],  # counts only; the functional sort happens in the catalog
            key=lambda r: r,
            record_bytes=self.schema.tuple_bytes,
            page_size=ctx.config.page_size,
            memory_bytes=max(ctx.config.page_size,
                             ctx.config.join_memory_per_node),
        )
        passes = 1 + stats.merge_passes
        yield from node.work(
            ctx.config.costs.sort_tuple_pass * n_records * passes
        )
        spill = f"{self.name}.loadsort"
        if n_records * self.schema.tuple_bytes > ctx.config.join_memory_per_node:
            for page_no in range(n_pages):
                yield from node.write_page(spill, page_no)
            for page_no in range(n_pages):
                yield from node.read_page(spill, page_no)

    def _charge_index_build(
        self, node: Node, n_entries: int, payload: int
    ) -> Generator[Any, Any, None]:
        ctx = self.ctx
        usable = ctx.config.page_size - NODE_HEADER_BYTES
        per_leaf = max(2, usable // (4 + payload + ENTRY_OVERHEAD_BYTES))
        leaf_pages = ceil(n_entries / per_leaf) if n_entries else 0
        yield from node.work(
            ctx.config.costs.index_entry * n_entries
        )
        index_file = ctx.temp_file_id(f"{self.name}.idxbuild")
        for page_no in range(leaf_pages):
            yield from node.write_page(index_file, page_no)
        ctx.metrics.add("index_pages_built", leaf_pages)
