"""Tuple streams between operator processes.

Producers push :class:`DataPacket`\\ s (network-packet-sized batches of
tuples) into consumers' :class:`InputPort`\\ s, closing the stream with one
:class:`EndOfStream` per producer — the three control messages of Section 2
("With the exception of these three control messages, execution of an
operator is completely self-scheduling").

Packets are carried by *courier* processes so a producer is not blocked for
the full network latency: the sender's interface server provides the
back-pressure, exactly like the real DMA path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..errors import ExecutionError
from ..sim import Get, Put, Store
from .node import ExecutionContext, Node


@dataclass
class DataPacket:
    """A batch of tuples occupying ``nbytes`` on the wire."""

    records: list[tuple]
    nbytes: int
    producer: str
    src_node: str = ""


@dataclass(frozen=True)
class EndOfStream:
    """Stream-close control message from one producer."""

    producer: str


class InputPort:
    """Consumer endpoint: a mailbox expecting ``n_producers`` EOS marks."""

    def __init__(self, ctx: ExecutionContext, name: str, node: Node) -> None:
        self.ctx = ctx
        self.name = name
        self.node = node
        self.store = Store(name)
        self.expected_producers = 0
        self._eos_seen = 0
        # Get effects are immutable descriptions, so one instance serves
        # every next_packet() call instead of an allocation per packet.
        self._get_effect = Get(self.store)
        # Cached metrics objects: next_packet runs once per packet, so the
        # registry's name-keyed lookups are hoisted out of the hot path.
        # Node/operator entries stay lazily created (first packet), so a
        # port that never receives anything keeps out of snapshots exactly
        # as before.
        self._query_counter = ctx.metrics.query
        self._node_metrics: Optional[Any] = None
        self._op_metrics: Optional[Any] = None

    def add_producer(self, count: int = 1) -> None:
        self.expected_producers += count

    def next_packet(self) -> Generator[Any, Any, Optional[DataPacket]]:
        """Generator returning the next packet, or None once every producer
        has closed.  Charges the per-packet receive cost to this node.

        A consumer may start before the scheduler has registered its
        producers (operators are activated consumers-first); the port then
        simply blocks on the mailbox — registration always happens before
        any producer can deliver a message.
        """
        while self.expected_producers == 0 or (
            self._eos_seen < self.expected_producers
        ):
            message = yield self._get_effect
            if type(message) is EndOfStream:
                self._eos_seen += 1
                continue
            node = self.node
            costs = node.config.costs
            if message.src_node == node.name:
                eff = node.work_effect(costs.packet_short_circuit)
            else:
                eff = node.work_effect(costs.packet_receive)
            if eff is not None:
                yield eff
            n_records = len(message.records)
            # record_packet_received + record_operator_tuples, inlined on
            # the cached metrics objects.
            self._query_counter["packets_received"] += 1
            nm = self._node_metrics
            if nm is None:
                nm = self._node_metrics = self.ctx.metrics.node(node.name)
            nm.packets_received += 1
            nm.tuples_in += n_records
            om = self._op_metrics
            if om is None:
                om = self._op_metrics = self.ctx.metrics.operator(
                    self.name, node.name
                )
            om.tuples_in += n_records
            if self.ctx.profiler is not None:
                # next_packet runs inside the consumer operator's process.
                self.ctx.profiler.record_tuples(
                    self.ctx.sim._current, tuples_in=len(message.records)
                )
            if self.ctx.trace is not None:
                self.ctx.trace.instant(
                    self.node.name, "net", f"recv:{self.name}",
                    self.ctx.sim.now, cat="packet",
                    args={"tuples": len(message.records),
                          "from": message.src_node},
                )
                self.ctx.trace.counter(
                    self.node.name, f"queue:{self.name}", self.ctx.sim.now,
                    {"depth": float(len(self.store))},
                )
            return message
        return None

    def receive_effect(self, message: DataPacket) -> Optional[Any]:
        """Metrics plus the receive-cost effect for one data message.

        The non-generator core of :meth:`next_packet`, used by flattened
        consumer loops (join build/probe, store) so the hot path creates no
        generator per packet.  Only valid when no profiler or trace is
        attached — the caller falls back to :meth:`next_packet` otherwise —
        and the caller owns the EOS bookkeeping (``_eos_seen``) and yields
        the returned effect itself.
        """
        node = self.node
        costs = node.config.costs
        if message.src_node == node.name:
            eff = node.work_effect(costs.packet_short_circuit)
        else:
            eff = node.work_effect(costs.packet_receive)
        n_records = len(message.records)
        self._query_counter["packets_received"] += 1
        nm = self._node_metrics
        if nm is None:
            nm = self._node_metrics = self.ctx.metrics.node(node.name)
        nm.packets_received += 1
        nm.tuples_in += n_records
        om = self._op_metrics
        if om is None:
            om = self._op_metrics = self.ctx.metrics.operator(
                self.name, node.name
            )
        om.tuples_in += n_records
        return eff

    def drain(self) -> Generator[Any, Any, list[tuple]]:
        """Consume the whole stream, returning every record."""
        records: list[tuple] = []
        while True:
            packet = yield from self.next_packet()
            if packet is None:
                return records
            records.extend(packet.records)


class OutputPort:
    """Producer endpoint: per-destination packet buffers over a split table.

    ``emit``/``emit_many`` route tuples through the
    :class:`~repro.engine.split_table.SplitTable`; a destination's buffer is
    flushed as one network packet whenever it reaches the configured packet
    size, and ``close`` flushes everything and sends the EOS marks.
    """

    def __init__(
        self,
        ctx: ExecutionContext,
        node: Node,
        split: "Any",  # SplitTable; typed loosely to avoid an import cycle
        tuple_bytes: int,
        label: str,
    ) -> None:
        self.ctx = ctx
        self.node = node
        self.split = split
        self.tuple_bytes = tuple_bytes
        self.label = label
        self.packet_capacity = max(
            1, ctx.config.packet_size // max(1, tuple_bytes)
        )
        self._buffers: list[list[tuple]] = [
            [] for _ in range(len(split.destinations))
        ]
        # Tuples bound for a same-node process skip the network-buffer
        # copy (NOSE short-circuiting).  The destination set is fixed for
        # the port's lifetime, so compute the flags once — and from them
        # the per-destination routing charge emit_many accrues per tuple.
        self._local_flags = [
            dest.node_name == node.name for dest in split.destinations
        ]
        costs = node.config.costs
        local_cost = costs.result_tuple_local + split.route_cost
        remote_cost = costs.result_tuple + split.route_cost
        self._dest_costs = [
            local_cost if local else remote_cost for local in self._local_flags
        ]
        self.tuples_sent = 0
        self.tuples_filtered = 0
        self._closed = False
        # Cached metrics objects (see InputPort.__init__).
        self._query_counter = ctx.metrics.query
        self._node_metrics: Optional[Any] = None
        self._op_metrics: Optional[Any] = None

    def emit_many(self, records: list[tuple]) -> Generator[Any, Any, None]:
        """Route a batch of tuples, flushing any buffer that fills."""
        if self._closed:
            raise ExecutionError(f"emit on closed port {self.label}")
        costs = self.node.config.costs
        buffers = self._buffers
        capacity = self.packet_capacity
        dest_costs = self._dest_costs
        bitfilter_cost = costs.bitfilter_test
        work_effect = self.node.work_effect
        cpu = 0.0
        filtered = 0
        for record, dest_idx in zip(
            records, self.split.route_batch(records)
        ):
            if type(dest_idx) is int:
                cpu += dest_costs[dest_idx]
                buffer = buffers[dest_idx]
                buffer.append(record)
                if len(buffer) >= capacity:
                    # Ship immediately so no packet exceeds the wire size.
                    eff = work_effect(cpu)
                    if eff is not None:
                        yield eff
                    cpu = 0.0
                    yield from self._flush(dest_idx)
            elif dest_idx is None:
                # Dropped by a bit-vector filter in the split table.
                filtered += 1
                cpu += bitfilter_cost
            else:
                # A multi-destination route (fragment-replicate broadcast
                # of a hot key): a copy — and its CPU cost — per target.
                for idx in dest_idx:
                    cpu += dest_costs[idx]
                    buffer = buffers[idx]
                    buffer.append(record)
                    if len(buffer) >= capacity:
                        eff = work_effect(cpu)
                        if eff is not None:
                            yield eff
                        cpu = 0.0
                        yield from self._flush(idx)
        if filtered:
            self.tuples_filtered += filtered
        if cpu:
            eff = work_effect(cpu)
            if eff is not None:
                yield eff

    def flush_all(self) -> Generator[Any, Any, None]:
        """Push every partial buffer onto the wire without closing.

        Used by operators that must sequence their output behind other
        producers (the sort chain): everything buffered so far enters the
        FIFO network path before the hand-off token does.
        """
        for dest_idx in range(len(self._buffers)):
            if self._buffers[dest_idx]:
                yield from self._flush(dest_idx)

    def close(self) -> Generator[Any, Any, None]:
        """Flush remaining buffers and send EndOfStream to every
        destination (closing output streams sends eos to each destination
        process — Section 2)."""
        if self._closed:
            return
        self._closed = True
        for dest_idx in range(len(self._buffers)):
            if self._buffers[dest_idx]:
                yield from self._flush(dest_idx)
        for dest in self.split.destinations:
            yield from self._send_control(dest, EndOfStream(self.label))

    def _flush(self, dest_idx: int) -> Generator[Any, Any, None]:
        records = self._buffers[dest_idx]
        if not records:
            return
        self._buffers[dest_idx] = []
        dest = self.split.destinations[dest_idx]
        n_records = len(records)
        packet = DataPacket(
            records, n_records * self.tuple_bytes, self.label,
            src_node=self.node.name,
        )
        self.tuples_sent += n_records
        short_circuit = self._local_flags[dest_idx]
        # record_packet_sent + record_operator_tuples, inlined on the
        # cached metrics objects.
        q = self._query_counter
        q["packets_sent"] += 1
        q["tuples_shipped"] += n_records
        nm = self._node_metrics
        if nm is None:
            nm = self._node_metrics = self.ctx.metrics.node(self.node.name)
        nm.packets_sent += 1
        nm.tuples_out += n_records
        if short_circuit:
            q["packets_short_circuited"] += 1
            nm.packets_short_circuited += 1
        om = self._op_metrics
        if om is None:
            om = self._op_metrics = self.ctx.metrics.operator(
                self.label, self.node.name
            )
        om.tuples_out += n_records
        if self.ctx.profiler is not None:
            # _flush runs inside the producer operator's process.
            self.ctx.profiler.record_tuples(
                self.ctx.sim._current, tuples_out=len(records)
            )
        if self.ctx.trace is not None:
            self.ctx.trace.instant(
                self.node.name, "net", f"send:{self.label}",
                self.ctx.sim.now, cat="packet",
                args={"tuples": len(records), "to": dest.node_name},
            )
        costs = self.node.config.costs
        if short_circuit:
            eff = self.node.work_effect(costs.packet_short_circuit)
        else:
            eff = self.node.work_effect(costs.packet_send)
        if eff is not None:
            yield eff
        self._dispatch(dest, packet, packet.nbytes)

    def _send_control(
        self, dest: "Any", message: EndOfStream
    ) -> Generator[Any, Any, None]:
        self.ctx.metrics.record_control_message(self.node.name)
        self._dispatch(dest, message, nbytes=64)
        return
        yield  # pragma: no cover - keeps this a generator

    def _dispatch(self, dest: "Any", message: Any, nbytes: int) -> None:
        """Hand the message to a courier (fire and forget).

        Couriers traverse FIFO servers with identical service demands, so
        per-destination ordering — including EOS-last — is preserved.
        Without a profiler the courier is a plain callback chain
        (:meth:`Interconnect.transfer_fast`) producing the exact same event
        sequence as the generator it replaces; with one, the generator
        path is kept so service attributes via ``Process.parent``.
        """
        ctx = self.ctx
        src = self.node.name
        if ctx.profiler is None:
            ctx.net.transfer_fast(
                ctx.sim, src, dest.node_name, nbytes, dest.port.store, message
            )
            return

        def courier() -> Generator[Any, Any, None]:
            yield from ctx.net.transfer(src, dest.node_name, nbytes)
            yield Put(dest.port.store, message)

        ctx.sim.spawn(courier(), name=f"courier:{self.label}")
