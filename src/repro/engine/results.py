"""Query results: the answer plus the timing/statistics profile."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class QueryResult:
    """Outcome of one query (or update) execution.

    Attributes:
        response_time: Simulated seconds from submission to completion —
            the number every table and figure of the paper reports.
        tuples: Result tuples, when returned to the host.
        result_relation: Name of the stored result relation, if any.
        result_count: Number of result tuples produced.
        stats: Raw counters (packets, pages, overflows, messages, ...).
        overflows_per_node: Actual hash-table overflow reactions at each
            joining node (Figure 13's x-axis is this value at one of
            eight sites).  For the Hybrid join this counts real events —
            static overflow activation, demotions, recursive
            re-partitionings, extra resolve chunks — not the planned
            partition count, which ``partitions_per_node`` reports.
        partitions_per_node: Spool partitions each joining node *planned*
            from the optimizer estimate (Hybrid hash join only; empty for
            the Simple join, whose partitioning is reactive).
        utilisations: End-of-run busy fractions of CPUs/disks/interfaces.
        node_metrics: Typed per-node counters (tuples, packets, spool I/O,
            hash-table bytes, overflow chunks) from the metrics registry.
        operator_metrics: Per-operator counters (tuples in/out, lifetime).
        utilisation_report: The printable per-node
            :class:`~repro.metrics.UtilisationReport`, when the machine
            built one (Gamma runs).
        plan: Text description of the physical plan executed.
        profile: The :class:`~repro.metrics.QueryProfile` (spans,
            timeline, critical path, verdict) when the query ran with
            ``profile=True``; render it with
            :func:`~repro.metrics.explain_analyze`.
        error: The exception that aborted this request, or ``None`` on
            success.  Only concurrent/workload entry points produce
            failed results (a deadlock victim, a timed-out admission
            queue entry, ...); single-query ``run()``/``update()`` raise
            instead.  For a failed request ``response_time`` is the
            abort time, not the batch's end time.
    """

    response_time: float
    tuples: Optional[list[tuple]] = None
    result_relation: Optional[str] = None
    result_count: int = 0
    stats: dict[str, int] = field(default_factory=dict)
    overflows_per_node: list[int] = field(default_factory=list)
    partitions_per_node: list[int] = field(default_factory=list)
    utilisations: dict[str, float] = field(default_factory=dict)
    node_metrics: dict[str, dict] = field(default_factory=dict)
    operator_metrics: dict[str, dict] = field(default_factory=dict)
    utilisation_report: Optional[Any] = None
    plan: str = ""
    profile: Optional[Any] = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        """True when the request completed (no per-request error)."""
        return self.error is None

    @property
    def max_overflows(self) -> int:
        """Overflows at the most-loaded joining site (paper's label)."""
        return max(self.overflows_per_node, default=0)

    @property
    def max_partitions(self) -> int:
        """Planned spool partitions at the most-partitioned joining site
        (1 = the whole build side was expected to fit in memory)."""
        return max(self.partitions_per_node, default=0)

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        if self.error is not None:
            return (
                f"<QueryResult FAILED at {self.response_time:.3f}s"
                f" error={type(self.error).__name__} plan={self.plan!r}>"
            )
        return (
            f"<QueryResult {self.response_time:.3f}s"
            f" n={self.result_count} plan={self.plan!r}>"
        )
