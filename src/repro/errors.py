"""Exception hierarchy for the Gamma reproduction library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """Raised when the discrete-event kernel is used incorrectly."""


class StorageError(ReproError):
    """Raised by the WiSS storage substrate (heap files, B+-trees, buffers)."""


class PageFullError(StorageError):
    """Raised when a tuple does not fit on a slotted page."""


class RecordNotFoundError(StorageError):
    """Raised when a RID or key does not identify an existing record."""


class CatalogError(ReproError):
    """Raised for unknown relations, duplicate names, or bad partitioning."""


class PlanError(ReproError):
    """Raised when a query cannot be planned (unknown attribute, bad mode)."""


class ExecutionError(ReproError):
    """Raised when an operator process fails during query execution."""


class ConfigError(ReproError):
    """Raised for invalid machine configurations."""


class BenchmarkError(ReproError):
    """Raised by the benchmark harness for malformed experiments."""
