"""Persistent result store: every measured grid point, on disk, forever.

The experiment matrix (:mod:`repro.bench.matrix`) runs *grid points* —
one picklable config dict in, one JSON-safe result out.  This module
persists those runs as JSON lines under ``benchmarks/results/store/``
(one ``<experiment>.jsonl`` per experiment), keyed by:

* the **canonical config hash** — SHA-256 over the sorted-key JSON of
  the config dict, so the key is identical across processes and
  ``PYTHONHASHSEED`` values (the builtin ``hash`` is salted; see
  ``tests/catalog/test_stable_hash.py`` for the same contract on the
  partitioning layer);
* the experiment's **code-version tag** — bumped by an experiment when
  its semantics change, which invalidates (without deleting) every
  stored run of the old version;
* the **git sha** the run was recorded at — *metadata*, not part of the
  resume key: simulated results are deterministic and survive commits
  that do not touch the experiment (that is what the version tag
  tracks), while wall-clock perf records use the sha to build
  cross-commit trend tables (``python -m repro matrix report --perf``).

Resume falls out of the keying: re-invoking a sweep looks up each grid
point and executes only the misses; ``force=True`` re-runs and replaces.
Appends are O(1) file appends — a crash mid-sweep loses at most the line
being written, and :meth:`ResultStore.load` skips (and counts) corrupted
lines instead of refusing the whole file.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..errors import BenchmarkError


class StoreError(BenchmarkError):
    """Raised for malformed store usage (not for corrupted files)."""


def canonical_config(config: dict[str, Any]) -> str:
    """The canonical JSON text of a config dict (sorted keys, no spaces).

    Configs must be JSON-safe: strings, ints, floats, bools, ``None``,
    and lists/dicts of those.  Tuples are serialised as JSON arrays, so
    a config round-trips through the store with tuples becoming lists —
    normalise to lists up front to keep hashing and equality aligned.
    """
    try:
        return json.dumps(
            _normalise(config), sort_keys=True, separators=(",", ":"),
            ensure_ascii=True, allow_nan=False,
        )
    except (TypeError, ValueError) as exc:
        raise StoreError(f"config is not JSON-canonicalisable: {exc}") from exc


def _normalise(value: Any) -> Any:
    """Tuples → lists, recursively, so configs equal their round-trip."""
    if isinstance(value, (list, tuple)):
        return [_normalise(v) for v in value]
    if isinstance(value, dict):
        return {k: _normalise(v) for k, v in value.items()}
    return value


def config_hash(config: dict[str, Any]) -> str:
    """Process-stable 16-hex-digit key for one grid-point config."""
    digest = hashlib.sha256(canonical_config(config).encode("utf-8"))
    return digest.hexdigest()[:16]


def current_git_sha(repo_dir: Optional[str] = None) -> str:
    """The repo HEAD sha, ``GAMMA_GIT_SHA`` override, or ``"unknown"``."""
    override = os.environ.get("GAMMA_GIT_SHA", "").strip()
    if override:
        return override
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


@dataclass(frozen=True)
class Record:
    """One stored grid-point run."""

    experiment: str
    version: str
    config: dict[str, Any]
    config_hash: str
    result: Any
    git_sha: str
    recorded_at: str  # ISO-8601 UTC
    wall_s: Optional[float] = None

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.experiment, self.version, self.config_hash)

    def to_json(self) -> str:
        return json.dumps({
            "experiment": self.experiment,
            "version": self.version,
            "config": _normalise(self.config),
            "config_hash": self.config_hash,
            "result": self.result,
            "git_sha": self.git_sha,
            "recorded_at": self.recorded_at,
            "wall_s": self.wall_s,
        }, sort_keys=False, allow_nan=False)

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Record":
        return cls(
            experiment=payload["experiment"],
            version=payload["version"],
            config=payload["config"],
            config_hash=payload["config_hash"],
            result=payload["result"],
            git_sha=payload.get("git_sha", "unknown"),
            recorded_at=payload.get("recorded_at", ""),
            wall_s=payload.get("wall_s"),
        )


def default_store_dir() -> str:
    """``benchmarks/results/store`` (``GAMMA_BENCH_STORE``-tunable)."""
    override = os.environ.get("GAMMA_BENCH_STORE", "").strip()
    if override:
        return override
    return os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "..", "..",
        "benchmarks", "results", "store",
    )


class ResultStore:
    """JSON-lines store of grid-point runs, one file per experiment.

    Later lines win: a ``--force`` re-run simply appends, and loading
    deduplicates by ``(experiment, version, config_hash)`` keeping the
    last record.  ``compact()`` rewrites a file to the deduplicated,
    corruption-free form.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = os.path.abspath(directory or default_store_dir())
        # (experiment, version, config_hash) -> Record, last append wins.
        self._records: dict[tuple[str, str, str], Record] = {}
        #: Experiments whose files contained undecodable lines, with
        #: the count of lines skipped (crash-truncated appends).
        self.corrupt_lines: dict[str, int] = {}
        self._loaded: set[str] = set()

    # -- paths ---------------------------------------------------------

    def path_for(self, experiment: str) -> str:
        if not experiment or "/" in experiment or experiment.startswith("."):
            raise StoreError(f"bad experiment name {experiment!r}")
        return os.path.join(self.directory, f"{experiment}.jsonl")

    def experiments(self) -> list[str]:
        """Experiment names present on disk, sorted."""
        if not os.path.isdir(self.directory):
            return []
        return sorted(
            name[:-len(".jsonl")]
            for name in os.listdir(self.directory)
            if name.endswith(".jsonl")
        )

    # -- loading -------------------------------------------------------

    def _ensure_loaded(self, experiment: str) -> None:
        if experiment in self._loaded:
            return
        self._loaded.add(experiment)
        path = self.path_for(experiment)
        if not os.path.exists(path):
            return
        bad = 0
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    record = Record.from_dict(payload)
                except (ValueError, KeyError, TypeError):
                    # Crash-truncated or hand-mangled line: recover by
                    # skipping it (an append-only log must tolerate a
                    # torn tail), but keep the evidence visible.
                    bad += 1
                    continue
                self._records[record.key] = record
        if bad:
            self.corrupt_lines[experiment] = (
                self.corrupt_lines.get(experiment, 0) + bad
            )

    def load_all(self) -> None:
        for experiment in self.experiments():
            self._ensure_loaded(experiment)

    # -- queries -------------------------------------------------------

    def get(
        self, experiment: str, version: str, config: dict[str, Any]
    ) -> Optional[Record]:
        """The stored run for one grid point, or ``None``."""
        self._ensure_loaded(experiment)
        return self._records.get((experiment, version, config_hash(config)))

    def records(
        self,
        experiment: Optional[str] = None,
        version: Optional[str] = None,
        git_sha: Optional[str] = None,
        predicate: Optional[Callable[[Record], bool]] = None,
    ) -> list[Record]:
        """Deduplicated records, filtered, in deterministic order."""
        if experiment is None:
            self.load_all()
        else:
            self._ensure_loaded(experiment)
        out = [
            r for r in self._records.values()
            if (experiment is None or r.experiment == experiment)
            and (version is None or r.version == version)
            and (git_sha is None or r.git_sha == git_sha)
            and (predicate is None or predicate(r))
        ]
        out.sort(key=lambda r: (r.experiment, r.version, r.config_hash))
        return out

    def shas(self) -> list[str]:
        """Git shas present in the store, oldest recorded first."""
        self.load_all()
        seen: dict[str, str] = {}
        for record in self._records.values():
            stamp = seen.get(record.git_sha)
            if stamp is None or record.recorded_at < stamp:
                seen[record.git_sha] = record.recorded_at
        return [sha for sha, _ in sorted(seen.items(), key=lambda kv: kv[1])]

    # -- appends -------------------------------------------------------

    def append(
        self,
        experiment: str,
        version: str,
        config: dict[str, Any],
        result: Any,
        *,
        git_sha: Optional[str] = None,
        wall_s: Optional[float] = None,
        replace: bool = False,
    ) -> Record:
        """Persist one run; returns the stored :class:`Record`.

        Duplicate detection: if the key already holds a record with an
        *identical* result the append is a no-op (the existing record is
        returned).  A **different** result under the same key means the
        code changed without bumping the experiment's version tag — that
        is an error unless ``replace=True`` (the ``--force`` path, and
        the normal path for wall-clock perf records, which never repeat
        exactly).
        """
        import datetime

        self._ensure_loaded(experiment)
        key = (experiment, version, config_hash(config))
        existing = self._records.get(key)
        if existing is not None and not replace:
            if _normalise(existing.result) == _normalise(result):
                return existing
            raise StoreError(
                f"{experiment}[{key[2]}] already stored with a different"
                f" result under version {version!r}; bump the experiment"
                " version or re-run with force/replace"
            )
        record = Record(
            experiment=experiment,
            version=version,
            config=_normalise(config),
            config_hash=key[2],
            result=_normalise(result),
            git_sha=git_sha if git_sha is not None else current_git_sha(),
            recorded_at=datetime.datetime.now(
                datetime.timezone.utc
            ).strftime("%Y-%m-%dT%H:%M:%SZ"),
            wall_s=wall_s,
        )
        os.makedirs(self.directory, exist_ok=True)
        with open(self.path_for(experiment), "a", encoding="utf-8") as fh:
            fh.write(record.to_json() + "\n")
        self._records[key] = record
        return record

    # -- maintenance ---------------------------------------------------

    def compact(self, experiment: str) -> int:
        """Rewrite one experiment's file deduplicated and corruption-free.

        Returns the number of surviving records.  This is the recovery
        path for corrupted lines: load (which skips them), then compact
        (which rewrites only the decodable, deduplicated records).
        """
        self._ensure_loaded(experiment)
        survivors = self.records(experiment)
        path = self.path_for(experiment)
        tmp = path + ".tmp"
        os.makedirs(self.directory, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in survivors:
                fh.write(record.to_json() + "\n")
        os.replace(tmp, path)
        self.corrupt_lines.pop(experiment, None)
        return len(survivors)

    def counts(self) -> dict[str, int]:
        """Records per experiment (deduplicated)."""
        self.load_all()
        out: dict[str, int] = {}
        for record in self._records.values():
            out[record.experiment] = out.get(record.experiment, 0) + 1
        return dict(sorted(out.items()))
