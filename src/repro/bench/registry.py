"""One registry of every table/figure/ablation/extension experiment.

This is the single source of truth the rest of the tooling reads:

* ``benchmarks/bench_*.py`` are thin lookups — each calls
  :func:`bench_experiment` with its experiment's name;
* ``benchmarks/generate_experiments_md.py`` takes its section order
  (and its drift check) from :func:`ordered`;
* ``python -m repro matrix`` lists/runs/reports experiments by the
  names registered here.

Entries appear in EXPERIMENTS.md order.  Each couples the
:class:`~repro.bench.matrix.ExperimentSpec` with the experiment's side
artifact, if any (the raw sweep-profile JSON written next to the
markdown report).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..errors import BenchmarkError
from .ablations import (
    ABLATION_A1_SPEC,
    ABLATION_A2_SPEC,
    ABLATION_A3_SPEC,
    ABLATION_A4_SPEC,
    EXTENSION_E1_SPEC,
    EXTENSION_E2_SPEC,
    save_hybrid_profile,
)
from .experiments import (
    AGGREGATE_SPEC,
    FIG01_02_SPEC,
    FIG03_04_SPEC,
    FIG05_06_SPEC,
    FIG07_08_SPEC,
    FIG09_12_SPEC,
    FIG13_SPEC,
    FIG14_15_SPEC,
    TABLE1_SPEC,
    TABLE2_SPEC,
    TABLE3_SPEC,
)
from .matrix import ExperimentSpec, MatrixRun, run_experiment
from .reporting import Report
from .scaleup import EXTENSION_E5_SPEC, save_scaleup_profile
from .skew import EXTENSION_E4_SPEC, save_skew_profile
from .store import ResultStore
from .telemetry import EXTENSION_E6_SPEC, save_telemetry_profile
from .workload import EXTENSION_E3_SPEC, save_workload_profile


@dataclass(frozen=True)
class RegistryEntry:
    """One registered experiment plus its optional profile artifact."""

    spec: ExperimentSpec
    #: Writes the summarise function's profile dict as a JSON artifact
    #: next to the markdown report; ``None`` when the experiment has no
    #: side artifact.
    save_profile: Optional[Callable[[dict[str, Any]], str]] = None


#: Every experiment, in EXPERIMENTS.md section order.
REGISTRY: tuple[RegistryEntry, ...] = (
    RegistryEntry(TABLE1_SPEC),
    RegistryEntry(TABLE2_SPEC),
    RegistryEntry(TABLE3_SPEC),
    RegistryEntry(FIG01_02_SPEC),
    RegistryEntry(FIG03_04_SPEC),
    RegistryEntry(FIG05_06_SPEC),
    RegistryEntry(FIG07_08_SPEC),
    RegistryEntry(FIG09_12_SPEC),
    RegistryEntry(FIG13_SPEC),
    RegistryEntry(FIG14_15_SPEC),
    RegistryEntry(AGGREGATE_SPEC),
    RegistryEntry(ABLATION_A1_SPEC),
    RegistryEntry(ABLATION_A2_SPEC),
    RegistryEntry(ABLATION_A3_SPEC),
    RegistryEntry(ABLATION_A4_SPEC, save_hybrid_profile),
    RegistryEntry(EXTENSION_E1_SPEC),
    RegistryEntry(EXTENSION_E2_SPEC),
    RegistryEntry(EXTENSION_E3_SPEC, save_workload_profile),
    RegistryEntry(EXTENSION_E4_SPEC, save_skew_profile),
    RegistryEntry(EXTENSION_E5_SPEC, save_scaleup_profile),
    RegistryEntry(EXTENSION_E6_SPEC, save_telemetry_profile),
)


def ordered() -> list[tuple[str, str]]:
    """(name, label) pairs in EXPERIMENTS.md order."""
    return [(e.spec.name, e.spec.label) for e in REGISTRY]


def names() -> list[str]:
    return [e.spec.name for e in REGISTRY]


def get(name: str) -> RegistryEntry:
    for entry in REGISTRY:
        if entry.spec.name == name:
            return entry
    raise BenchmarkError(
        f"no registered experiment named {name!r};"
        f" known: {', '.join(names())}"
    )


def run_registered(
    name: str,
    store: Optional[ResultStore] = None,
    *,
    force: bool = False,
    jobs: Optional[int] = None,
    save_artifacts: bool = True,
    **overrides: Any,
) -> MatrixRun:
    """Run one registered experiment (resuming from ``store``) and, by
    default, write its report and profile artifact under
    ``benchmarks/results/``."""
    entry = get(name)
    run = run_experiment(
        entry.spec, store, force=force, jobs=jobs, **overrides
    )
    if save_artifacts:
        run.report.save()
        if run.profile is not None and entry.save_profile is not None:
            entry.save_profile(run.profile)
    return run


def bench_force_enabled() -> bool:
    """True when benches should re-run stored grid points
    (``pytest benchmarks/ --force`` / ``GAMMA_BENCH_FORCE=1``)."""
    return os.environ.get("GAMMA_BENCH_FORCE", "") not in ("", "0")


def bench_experiment(name: str) -> Report:
    """The entry point the ``benchmarks/bench_*.py`` files call.

    Runs the named experiment at its committed defaults against the
    persistent store (so a warm store executes zero grid points), writes
    the profile artifact if the experiment has one, and returns the
    report for the conftest runner to save and assert.

    Profiling defaults on (the committed store was recorded with
    ``GAMMA_BENCH_PROFILE=1``): the profiled grid points are distinct
    configs, so a warm suite must summarise the stored ones — not
    execute unprofiled twins and emit reports missing the "profiling
    does not perturb" checks.  ``GAMMA_BENCH_PROFILE=0`` opts out.
    """
    os.environ.setdefault("GAMMA_BENCH_PROFILE", "1")
    run = run_registered(
        name, ResultStore(), force=bench_force_enabled(),
        save_artifacts=False,
    )
    entry = get(name)
    if run.profile is not None and entry.save_profile is not None:
        entry.save_profile(run.profile)
    return run.report
