"""Benchmark harness: experiments regenerating every table and figure."""

from .ablations import (
    ablation_bitfilter_experiment,
    multiuser_offloading_experiment,
    recovery_server_experiment,
    ablation_default_page_size_experiment,
    ablation_hybrid_join_experiment,
)
from .experiments import (
    aggregate_experiment,
    fig01_02_experiment,
    fig03_04_experiment,
    fig05_06_experiment,
    fig07_08_experiment,
    fig09_12_experiment,
    fig13_experiment,
    fig14_15_experiment,
    table1_selection_experiment,
    table2_join_experiment,
    table3_update_experiment,
)
from .harness import (
    bench_sizes,
    build_gamma,
    build_teradata,
    run_stored,
    run_to_host,
    speedup_series,
)
from .matrix import (
    Axis,
    ExperimentSpec,
    Grid,
    MatrixRun,
    run_experiment,
)
from .perf import (
    format_perf_trend,
    perf_diff,
    perf_trend,
    record_perf_report,
)
from .recorded import (
    FIGURE_CLAIMS,
    TABLE1_SELECTIONS,
    TABLE2_JOINS,
    TABLE3_UPDATES,
)
from .registry import (
    REGISTRY,
    RegistryEntry,
    bench_experiment,
    run_registered,
)
from .reporting import Report, ratio_note
from .scaleup import (
    save_scaleup_profile,
    scaleup_experiment,
)
from .skew import (
    load_skew_machine,
    save_skew_profile,
    skew_join_experiment,
)
from .store import (
    Record,
    ResultStore,
    StoreError,
    canonical_config,
    config_hash,
    current_git_sha,
)
from .sweep import bench_jobs, run_sweep
from .telemetry import (
    save_telemetry_profile,
    telemetry_knee_experiment,
)
from .workload import (
    make_mix,
    machine_builder,
    save_workload_profile,
    workload_mpl_experiment,
)

__all__ = [
    "Axis",
    "ExperimentSpec",
    "FIGURE_CLAIMS",
    "Grid",
    "MatrixRun",
    "REGISTRY",
    "Record",
    "RegistryEntry",
    "Report",
    "ResultStore",
    "StoreError",
    "TABLE1_SELECTIONS",
    "TABLE2_JOINS",
    "TABLE3_UPDATES",
    "ablation_bitfilter_experiment",
    "ablation_default_page_size_experiment",
    "ablation_hybrid_join_experiment",
    "aggregate_experiment",
    "bench_experiment",
    "bench_jobs",
    "bench_sizes",
    "build_gamma",
    "build_teradata",
    "canonical_config",
    "config_hash",
    "current_git_sha",
    "fig01_02_experiment",
    "fig03_04_experiment",
    "fig05_06_experiment",
    "fig07_08_experiment",
    "fig09_12_experiment",
    "fig13_experiment",
    "fig14_15_experiment",
    "format_perf_trend",
    "load_skew_machine",
    "machine_builder",
    "make_mix",
    "multiuser_offloading_experiment",
    "perf_diff",
    "perf_trend",
    "ratio_note",
    "record_perf_report",
    "recovery_server_experiment",
    "run_experiment",
    "run_registered",
    "run_stored",
    "run_sweep",
    "run_to_host",
    "save_scaleup_profile",
    "save_skew_profile",
    "save_telemetry_profile",
    "save_workload_profile",
    "scaleup_experiment",
    "skew_join_experiment",
    "speedup_series",
    "table1_selection_experiment",
    "table2_join_experiment",
    "table3_update_experiment",
    "telemetry_knee_experiment",
    "workload_mpl_experiment",
]
