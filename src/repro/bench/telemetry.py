"""Extension E6: open-loop arrival-rate sweep with time-resolved SLOs.

The paper's multiuser discussion (Section 6.2.1) and every closed-loop
MPL sweep (Extension E3) bound concurrency by construction; the
overload-facing question — *where is the knee?* — needs open-loop
arrivals: a Poisson stream at a fixed offered rate, independent of
completions.  This experiment sweeps the offered rate over the mixed
Wisconsin workload on both machines and reports the latency-knee table:
percentiles stay flat while the machine keeps up, then grow without
bound once the offered rate crosses the service capacity.

Evidence is time-resolved, not just end-of-run: every point runs with a
:class:`~repro.metrics.TelemetrySampler` attached (passive, so the
numbers are bit-identical with or without it) and stores the
sliding-window p95 track, the admission-queue depth track and the
detector alerts — the knee row of the table is backed by the simulated
timestamp overload onset fired.
"""

from __future__ import annotations

from typing import Any, Optional

from ..metrics.slo import SlidingWindowTracker, detect_all
from ..metrics.telemetry import TelemetrySampler
from ..workloads import WorkloadSpec
from .matrix import Axis, ExperimentSpec, Grid, run_experiment
from .reporting import Report, results_dir
from .workload import machine_builder, make_mix

__all__ = [
    "DEFAULT_RATES", "EXTENSION_E6_SPEC", "telemetry_knee_experiment",
    "save_telemetry_profile",
]

#: Offered arrival rates (queries/second) straddling both machines'
#: saturation throughput at the committed scale.
DEFAULT_RATES = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0)

#: Telemetry tracks persisted per point (times + values); the rest of
#: the sampler's series stay in-process to keep the store light.
_STORED_TRACKS = ("slo.p50", "slo.p95", "slo.p99", "admission.queued")


def _telemetry_point(config: dict[str, Any]) -> dict[str, Any]:
    """Grid point: one (machine, rate) open-loop run with telemetry."""
    n = config["n"]
    spec = WorkloadSpec(
        queries=config["queries"], arrival="open",
        arrival_rate=config["rate"], mpl=config["mpl"],
        timeout=config["timeout"], seed=config["seed"],
    )
    slo = SlidingWindowTracker(window=config["window"])
    sampler = TelemetrySampler(interval=config["interval"], slo=slo)
    machine = machine_builder(config["machine"], n)()
    result = machine.run_workload(
        make_mix(config["mix"], n), spec, telemetry=sampler
    )
    alerts = detect_all(sampler)
    overload = [a for a in alerts if a.kind == "overload"]
    queued = sampler.series.get("admission.queued")
    summary = result.to_dict()
    del summary["records"]  # per-query records would dominate the store
    summary.update({
        "rate": config["rate"],
        "warmup_end": slo.warmup_end(),
        "overload_at": overload[0].at if overload else None,
        "alerts": [a.as_dict() for a in alerts],
        "peak_queue_depth": max(queued.values) if queued else 0.0,
        "telemetry": {
            "interval": sampler.interval,
            "samples": sampler.samples,
            "tracks": {
                key: {
                    "times": list(sampler.series[key].times),
                    "values": list(sampler.series[key].values),
                }
                for key in _STORED_TRACKS if key in sampler.series
            },
        },
    })
    return summary


def _telemetry_grid(
    n: int = 1_000,
    queries: int = 64,
    mix: str = "mixed",
    rates: tuple[float, ...] = DEFAULT_RATES,
    mpl: int = 8,
    timeout: Optional[float] = None,
    interval: float = 0.25,
    window: float = 4.0,
    seed: int = 1988,
    machines: tuple[str, ...] = ("gamma", "teradata"),
) -> Grid:
    return Grid(
        axes=(
            Axis("machine", tuple(machines)),
            Axis("rate", tuple(rates)),
        ),
        base={
            "n": n, "queries": queries, "mix": mix, "mpl": mpl,
            "timeout": timeout, "interval": interval, "window": window,
            "seed": seed,
        },
    )


def _telemetry_summarise(
    grid: Grid, results: list[Any]
) -> tuple[Report, dict[str, Any]]:
    n = grid.base["n"]
    queries = grid.base["queries"]
    machines = grid.axis("machine").values
    rates = grid.axis("rate").values
    report = Report(
        name="telemetry_knee",
        title=(
            f"Open-loop arrival-rate sweep ({grid.base['mix']} mix,"
            f" {queries} queries, mpl={grid.base['mpl']},"
            f" {n:,}-tuple relations): the latency knee"
        ),
        columns=[
            "machine", "rate (q/s)", "throughput (q/s)",
            "latency p50 (s)", "latency p95 (s)", "latency p99 (s)",
            "peak queue", "overload onset (s)",
        ],
    )
    profile: dict[str, Any] = {
        "experiment": "telemetry_knee",
        "mix": grid.base["mix"],
        "relations": {"a": n, "bprime": max(1, n // 10)},
        "spec": {
            "queries": queries, "arrival": "open",
            "mpl": grid.base["mpl"], "timeout": grid.base["timeout"],
            "interval": grid.base["interval"],
            "window": grid.base["window"], "seed": grid.base["seed"],
        },
        "rates": list(rates),
        "points": [],
    }
    curves: dict[str, list[dict[str, Any]]] = {m: [] for m in machines}
    for config, point in zip(grid.points(), results):
        curves[config["machine"]].append(point)
        onset = point["overload_at"]
        report.add_row(
            config["machine"], point["rate"], point["throughput"],
            point["latency"]["p50"], point["latency"]["p95"],
            point["latency"]["p99"], point["peak_queue_depth"],
            "-" if onset is None else onset,
        )
        profile["points"].append(point)

    for machine, points in curves.items():
        low, high = points[0], points[-1]
        report.check(
            f"{machine}: offered load {low['rate']:g}->{high['rate']:g} q/s"
            " pushes p95 past the knee (>= 2x)",
            high["latency"]["p95"] >= 2.0 * low["latency"]["p95"],
        )
        report.check(
            f"{machine}: throughput saturates below the top offered rate",
            high["throughput"] < high["rate"],
        )
        report.check(
            f"{machine}: overload detector fires at the top rate only"
            " after staying quiet at the bottom one",
            low["overload_at"] is None and high["overload_at"] is not None,
        )
        report.check(
            f"{machine}: sliding-window p95 track covers the run",
            all(
                len(p["telemetry"]["tracks"]["slo.p95"]["values"]) > 0
                for p in points
            ),
        )
        report.check(
            f"{machine}: every submitted query completed",
            all(p["failed"] == 0 for p in points),
        )
    report.notes.append(
        "Open-loop Poisson arrivals at a fixed offered rate; telemetry"
        " sampled every"
        f" {grid.base['interval']:g}s of simulated time with a"
        f" {grid.base['window']:g}s sliding SLO window.  The sampler is"
        " pulled by the kernel, never scheduled, so every number is"
        " bit-identical with telemetry on or off."
    )
    return report, profile


EXTENSION_E6_SPEC = ExperimentSpec(
    name="telemetry_knee", label="Extension E6", kind="extension",
    grid=_telemetry_grid, point=_telemetry_point,
    summarise=_telemetry_summarise,
)


def telemetry_knee_experiment(
    n: int = 1_000,
    queries: int = 64,
    mix: str = "mixed",
    rates: tuple[float, ...] = DEFAULT_RATES,
    mpl: int = 8,
    timeout: Optional[float] = None,
    interval: float = 0.25,
    window: float = 4.0,
    seed: int = 1988,
    machines: tuple[str, ...] = ("gamma", "teradata"),
    **matrix: Any,
) -> tuple[Report, dict[str, Any]]:
    """Arrival-rate sweep with time-resolved percentiles on both machines.

    Returns the shape-checked :class:`Report` plus a JSON-serialisable
    profile holding every point's latency summary, stored telemetry
    tracks and detector alerts.
    """
    run = run_experiment(
        EXTENSION_E6_SPEC, n=n, queries=queries, mix=mix, rates=rates,
        mpl=mpl, timeout=timeout, interval=interval, window=window,
        seed=seed, machines=machines, **matrix,
    )
    assert run.profile is not None
    return run.report, run.profile


def save_telemetry_profile(
    profile: dict[str, Any], directory: Optional[str] = None
) -> str:
    """Write the sweep profile JSON next to the markdown report."""
    import json
    import os

    path = os.path.join(results_dir(directory), "telemetry_knee.json")
    with open(path, "w") as fh:
        json.dump(profile, fh, indent=2, sort_keys=False)
    return path
