"""The multiuser experiment the paper left open (Section 6.2.1).

Sweeps the admission multiprogramming level on both machines under the
same terminal workload and reports the throughput–latency trade-off:
throughput climbs with MPL until the hardware saturates, queue waits
shrink (more slots), and per-query service times stretch (more
contention inside the machine).  Everything is seeded, so a sweep is
reproducible bit for bit.

Each (machine, MPL) cell is one grid point — a fresh machine and a
fresh mix per point, exactly like
:func:`~repro.workloads.multiuser.mpl_sweep`, because update mixes
mutate relations and reusing a machine would couple the points.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..workloads import (
    QueryMix,
    WorkloadSpec,
    mixed_mix,
    mpl_sweep,
    selection_mix,
    update_mix,
)
from .harness import build_gamma, build_teradata
from .matrix import Axis, ExperimentSpec, Grid, run_experiment
from .reporting import Report, results_dir

__all__ = [
    "DEFAULT_MPLS", "A_RELATION", "BPRIME_RELATION", "make_mix",
    "workload_relations", "machine_builder", "workload_mpl_experiment",
    "save_workload_profile", "mpl_sweep", "EXTENSION_E3_SPEC",
]

DEFAULT_MPLS = (1, 2, 4, 8, 16)

#: Relation names used by every workload experiment.
A_RELATION = "wl_a"
BPRIME_RELATION = "wl_bprime"


def make_mix(name: str, n: int) -> QueryMix:
    """A canonical mix by name over the experiment's relations."""
    if name == "selection":
        return selection_mix(A_RELATION, n)
    if name == "update":
        return update_mix(A_RELATION, n)
    if name == "mixed":
        return mixed_mix(A_RELATION, BPRIME_RELATION, n)
    raise ValueError(f"unknown mix {name!r}; expected selection/update/mixed")


def workload_relations(n: int) -> list[tuple[str, int, str]]:
    return [(A_RELATION, n, "heap"), (BPRIME_RELATION, max(1, n // 10), "heap")]


def machine_builder(machine: str, n: int) -> Callable[[], Any]:
    """A zero-argument builder for a freshly loaded machine.

    Fresh per sweep point: the update mixes mutate relations, so reusing
    one machine would couple the points and break per-point determinism.
    """
    relations = workload_relations(n)
    if machine == "gamma":
        return lambda: build_gamma(relations=relations)
    if machine == "teradata":
        return lambda: build_teradata(relations=relations)
    raise ValueError(f"unknown machine {machine!r}")


def _workload_point(config: dict[str, Any]) -> dict[str, Any]:
    """Grid point: one (machine, MPL) workload run (picklable)."""
    n = config["n"]
    spec = WorkloadSpec(
        queries=config["queries"], clients=config["clients"],
        arrival="closed", think_time=config["think_time"],
        policy=config["policy"], timeout=config["timeout"],
        seed=config["seed"],
    ).with_mpl(config["mpl"])
    machine = machine_builder(config["machine"], n)()
    result = machine.run_workload(make_mix(config["mix"], n), spec)
    return result.to_dict()


def _workload_grid(
    n: int = 1_000,
    queries: int = 32,
    clients: int = 16,
    mix: str = "mixed",
    mpls: tuple[int, ...] = DEFAULT_MPLS,
    think_time: float = 0.2,
    policy: str = "fifo",
    timeout: Optional[float] = None,
    seed: int = 1988,
    machines: tuple[str, ...] = ("gamma", "teradata"),
) -> Grid:
    return Grid(
        axes=(
            Axis("machine", tuple(machines)),
            Axis("mpl", tuple(mpls)),
        ),
        base={
            "n": n, "queries": queries, "clients": clients, "mix": mix,
            "think_time": think_time, "policy": policy, "timeout": timeout,
            "seed": seed,
        },
    )


def _workload_summarise(
    grid: Grid, results: list[Any]
) -> tuple[Report, dict[str, Any]]:
    n = grid.base["n"]
    mix = grid.base["mix"]
    queries, clients = grid.base["queries"], grid.base["clients"]
    machines = grid.axis("machine").values
    mpls = grid.axis("mpl").values
    report = Report(
        name="workload_mpl",
        title=(
            f"Multiuser {mix} workload: MPL sweep"
            f" ({clients} terminals, {queries} queries, {n:,}-tuple"
            f" relations)"
        ),
        columns=[
            "machine", "MPL", "ok/submitted", "throughput (q/s)",
            "latency p50 (s)", "latency p95 (s)", "queue wait mean (s)",
            "service mean (s)",
        ],
    )
    profile: dict[str, Any] = {
        "experiment": "workload_mpl",
        "mix": mix,
        "relations": {"a": n, "bprime": max(1, n // 10)},
        "spec": {
            "queries": queries, "clients": clients, "arrival": "closed",
            "think_time": grid.base["think_time"],
            "policy": grid.base["policy"],
            "timeout": grid.base["timeout"], "seed": grid.base["seed"],
        },
        "mpls": list(mpls),
        "points": [],
    }
    curves: dict[str, list[dict[str, Any]]] = {m: [] for m in machines}
    for config, point in zip(grid.points(), results):
        curves[config["machine"]].append(point)
        report.add_row(
            config["machine"], point["mpl"],
            f"{point['completed']}/{point['submitted']}",
            point["throughput"],
            point["latency"]["p50"], point["latency"]["p95"],
            point["queue_wait"]["mean"], point["service"]["mean"],
        )
        profile["points"].append(point)

    for machine, points in curves.items():
        first, last = points[0], points[-1]
        report.check(
            f"{machine}: raising MPL {first['mpl']}→{last['mpl']} raises"
            " throughput",
            last["throughput"] > first["throughput"],
        )
        report.check(
            f"{machine}: queue waits shrink as slots are added",
            last["queue_wait"]["mean"] < first["queue_wait"]["mean"]
            or first["queue_wait"]["mean"] == 0.0,
        )
        report.check(
            f"{machine}: per-query service stretches under contention",
            last["service"]["mean"] > first["service"]["mean"],
        )
        report.check(
            f"{machine}: every submitted query completed",
            all(p["failed"] == 0 for p in points),
        )
    report.notes.append(
        "Closed-loop terminals with exponential think times; seeded, so"
        " every number is reproducible bit for bit."
    )
    return report, profile


EXTENSION_E3_SPEC = ExperimentSpec(
    name="workload_mpl", label="Extension E3", kind="extension",
    grid=_workload_grid, point=_workload_point,
    summarise=_workload_summarise,
)


def workload_mpl_experiment(
    n: int = 1_000,
    queries: int = 32,
    clients: int = 16,
    mix: str = "mixed",
    mpls: tuple[int, ...] = DEFAULT_MPLS,
    think_time: float = 0.2,
    policy: str = "fifo",
    timeout: Optional[float] = None,
    seed: int = 1988,
    machines: tuple[str, ...] = ("gamma", "teradata"),
    **matrix: Any,
) -> tuple[Report, dict[str, Any]]:
    """MPL 1→16 sweep of a closed-loop terminal workload on both machines.

    Returns the shape-checked :class:`Report` plus a JSON-serialisable
    profile of every sweep point (the raw :class:`~repro.metrics.
    WorkloadResult` dictionaries, per-query records included).
    """
    run = run_experiment(
        EXTENSION_E3_SPEC, n=n, queries=queries, clients=clients, mix=mix,
        mpls=mpls, think_time=think_time, policy=policy, timeout=timeout,
        seed=seed, machines=machines, **matrix,
    )
    assert run.profile is not None
    return run.report, run.profile


def save_workload_profile(
    profile: dict[str, Any], directory: Optional[str] = None
) -> str:
    """Write the sweep profile JSON next to the markdown report."""
    import json
    import os

    path = os.path.join(results_dir(directory), "workload_mpl.json")
    with open(path, "w") as fh:
        json.dump(profile, fh, indent=2, sort_keys=False)
    return path
