"""Extension E5 — scaling the simulated machine to 1000 nodes.

The paper's largest Gamma configuration is 32 processors (17 in the
prototype, 30-40 planned); its speedup figures stop where the hardware
did.  This experiment keeps the workload fixed — the 1 % non-indexed
selection and the non-key joinABprime over the 100,000/10,000-tuple
Wisconsin relations the paper's figures use — and sweeps the *machine*
far past the paper: 8 → 64 → 256 → 1000 disk sites.

Two regimes show up, and both are the point of the table:

* Up to roughly one page of tuples per site, more sites still help —
  the scan and join work divides, so response time falls.
* Past that the fixed per-site costs take over: operator activation is
  per site, and every producer closes every consumer port, so the
  scheduling and EndOfStream traffic grows with the *square* of the
  site count while the useful work per site approaches zero.  Response
  time turns around and climbs — the rollover the paper's Section 4.5
  anticipates when it weighs "the potential for using the extra
  resources".

The simulator-side story is tracked alongside: the kernel event count
per configuration (deterministic) lands in the report, and the JSON
profile adds wall-clock seconds and events/second per point so
``python -m repro scaleup`` doubles as a simulator throughput check at
1000 nodes.  The wall-clock figures never gate a shape check — they are
box-dependent; the deterministic simulated quantities are what the
checks pin.  (In the result store the wall clock is data like any other
field: a warm-store regeneration reports the wall clock of the run that
*produced* the record, which is what a throughput trend wants.)
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from ..hardware import GammaConfig
from ..workloads.queries import join_abprime, selection_query
from .harness import build_gamma, run_stored
from .matrix import Axis, ExperimentSpec, Grid, run_experiment
from .reporting import Report

DEFAULT_SITE_COUNTS = (8, 64, 256, 1000)

#: Relation names used by the scaleup experiment.
PROBE_RELATION = "scaleup_a"
BUILD_RELATION = "scaleup_bprime"

_SCALEUP_QUERIES = ("selection", "joinABprime")


def _scaleup_point(config: dict[str, Any]) -> list[Any]:
    """[response s, result count, kernel events, wall s] for one cell."""
    n, sites, query = config["n"], config["sites"], config["query"]
    machine_config = GammaConfig.paper_default().with_sites(sites)
    if query == "selection":
        machine = build_gamma(
            machine_config, relations=[(PROBE_RELATION, n, "heap")]
        )
        make = lambda into: selection_query(  # noqa: E731
            PROBE_RELATION, n, 0.01, into=into
        )
    elif query == "joinABprime":
        machine = build_gamma(machine_config, relations=[
            (PROBE_RELATION, n, "heap"),
            (BUILD_RELATION, max(1, n // 10), "heap"),
        ])
        make = lambda into: join_abprime(  # noqa: E731
            PROBE_RELATION, BUILD_RELATION, key=False, into=into
        )
    else:  # pragma: no cover - guarded by the grid builder
        raise ValueError(f"unknown scaleup query {query!r}")
    wall0 = time.perf_counter()
    result = run_stored(machine, make)
    wall = time.perf_counter() - wall0
    return [
        result.response_time,
        result.result_count,
        result.stats["sim_events"],
        wall,
    ]


def _scaleup_grid(
    n: int = 100_000, site_counts: Sequence[int] = DEFAULT_SITE_COUNTS
) -> Grid:
    site_counts = sorted(set(int(s) for s in site_counts))
    if not site_counts:
        raise ValueError("scaleup needs at least one site count")
    return Grid(
        axes=(
            Axis("sites", tuple(site_counts)),
            Axis("query", _SCALEUP_QUERIES),
        ),
        base={"n": n},
    )


def _scaleup_summarise(
    grid: Grid, results: list[Any]
) -> tuple[Report, dict[str, Any]]:
    n = grid.base["n"]
    site_counts = list(grid.axis("sites").values)
    queries = _SCALEUP_QUERIES
    base = site_counts[0]
    report = Report(
        name="extension_e5_scaleup",
        title=(
            f"Extension E5 — 1 % selection and joinABprime ({n:,} ⋈"
            f" {max(1, n // 10):,} tuples) from {base} to"
            f" {site_counts[-1]} sites"
        ),
        columns=[
            "sites", "selection (s)", f"speedup @{base}",
            "joinABprime (s)", f"speedup @{base}", "kernel events",
        ],
    )
    profile: dict[str, Any] = {
        "experiment": "extension_e5_scaleup",
        "n": n,
        "site_counts": list(site_counts),
        "points": [],
    }
    cells = {
        (config["sites"], config["query"]): outcome
        for config, outcome in zip(grid.points(), results)
    }
    responses: dict[str, dict[int, float]] = {q: {} for q in queries}
    counts: dict[str, set[int]] = {q: set() for q in queries}
    for sites in site_counts:
        events_total = 0
        row: list[Any] = [sites]
        for query in queries:
            response, count, events, wall = cells[(sites, query)]
            responses[query][sites] = response
            counts[query].add(count)
            events_total += events
            row.extend([
                response,
                responses[query][base] / response,
            ])
            profile["points"].append({
                "sites": sites, "query": query, "response": response,
                "result_count": count, "events": events,
                "wall_s": wall,
                "events_per_s": events / wall if wall > 0 else 0.0,
            })
        row.append(events_total)
        report.add_row(*row)
    for query in queries:
        report.check(
            f"{query} returns the same result at every site count",
            len(counts[query]) == 1,
        )
    mid = min((s for s in site_counts if s > base), default=base)
    if mid > base:
        for query in queries:
            speedup = responses[query][base] / responses[query][mid]
            report.check(
                f"{query} still speeds up from {base} to {mid} sites"
                f" ({speedup:.2f}x)",
                speedup > 1.0,
            )
    widest = site_counts[-1]
    if widest >= 1000:
        report.check(
            f"the {widest}-site sweep completes (fixed per-site"
            " scheduling and EndOfStream costs now dominate: response"
            " rolls over instead of improving)",
            responses["selection"][widest]
            > responses["selection"][mid],
        )
    report.notes.append(
        "Per-site work shrinks as 1/sites while activation and"
        " port-close traffic grow as sites², so the response-time curve"
        " rolls over once fragments drop below about a page — the"
        " trade-off Section 4.5 of the paper weighs."
    )
    return report, profile


EXTENSION_E5_SPEC = ExperimentSpec(
    name="extension_e5_scaleup", label="Extension E5", kind="extension",
    grid=_scaleup_grid, point=_scaleup_point, summarise=_scaleup_summarise,
)


def scaleup_experiment(
    n: int = 100_000,
    site_counts: Sequence[int] = DEFAULT_SITE_COUNTS,
    **matrix: Any,
) -> tuple[Report, dict[str, Any]]:
    """Selection + joinABprime swept over machine sizes.

    Returns the shape-checked :class:`Report` (speedup-vs-sites table)
    plus a JSON profile with the per-point simulator throughput.
    """
    run = run_experiment(
        EXTENSION_E5_SPEC, n=n, site_counts=site_counts, **matrix,
    )
    assert run.profile is not None
    return run.report, run.profile


def save_scaleup_profile(profile: dict[str, Any]) -> str:
    """Write the sweep profile JSON next to the markdown report."""
    import json
    import os

    from .reporting import results_dir

    path = os.path.join(
        results_dir(), f"{profile['experiment']}.json"
    )
    with open(path, "w") as fh:
        json.dump(profile, fh, indent=2)
        fh.write("\n")
    return path
