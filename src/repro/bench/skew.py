"""Extension E4 — data skew and the skew-aware Exchange strategies.

The paper's Wisconsin relations are deliberately uniform, so every hash
bucket holds the same tuple count and the speedup figures show nothing
about robustness.  This experiment makes skew the swept axis: the probe
relation's join attribute is drawn from Zipf(``skew``) (see
:func:`~repro.workloads.generate_skewed_tuples`), and joinABprime runs
under each redistribution strategy — the paper's plain hash split plus
the three skew-aware splits of :mod:`repro.engine.skew` — at the ends of
the processor-count range.

Evidence reported per (strategy, skew) cell: the speedup from the
smallest to the largest configuration, and the join's *per-node
utilisation spread* (busiest node's busy time over the mean — 1.0 is a
perfect balance) from the EXPLAIN ANALYZE profile of the widest run.
Under high skew the plain hash split's spread approaches the site count
while the skew-aware splits stay near 1, which is exactly why their
speedup survives.
"""

from __future__ import annotations

import json
import os
from typing import Any, Optional, Sequence

from ..engine import GammaMachine
from ..engine.skew import SKEW_STRATEGIES
from ..hardware import GammaConfig
from ..workloads import (
    generate_skewed_tuples,
    generate_tuples,
    wisconsin_schema,
)
from ..workloads.queries import join_abprime
from .harness import run_stored
from .matrix import Axis, ExperimentSpec, Grid, run_experiment
from .reporting import Report, results_dir

DEFAULT_SKEWS = (0.0, 0.75, 1.5)
DEFAULT_SITE_COUNTS = (1, 8)

#: Relation names used by the skew experiment.
PROBE_RELATION = "skew_a"
BUILD_RELATION = "skew_bprime"


def load_skew_machine(
    n: int,
    skew: float,
    sites: int,
    strategy: str,
    seed: int = 1988,
) -> GammaMachine:
    """A Gamma machine loaded for the skewed joinABprime.

    The probe relation's ``unique2`` is Zipf(``skew``) over the build
    relation's key domain ``0..n//10-1``, so every probe tuple matches
    exactly one build tuple and the join result is always ``n`` tuples —
    a correctness cross-check that holds for every strategy.
    """
    machine = GammaMachine(
        GammaConfig.paper_default().with_sites(sites),
        skew_strategy=strategy,
    )
    n_build = max(1, n // 10)
    machine.load_relation(
        PROBE_RELATION, wisconsin_schema(),
        list(generate_skewed_tuples(n, seed=seed, skew=skew,
                                    domain=n_build)),
    )
    machine.load_relation(
        BUILD_RELATION, wisconsin_schema(),
        list(generate_tuples(n_build, seed=seed + 1)),
    )
    return machine


def _join_op_id(profile: Any) -> Optional[str]:
    """The probe-join operator's op_id in an EXPLAIN ANALYZE profile."""
    candidates = [
        op_id for op_id in profile.placements
        if "join" in op_id and "join.build" not in op_id
    ]
    return min(candidates) if candidates else None


def _skew_point(config: dict[str, Any]) -> list[Any]:
    """[response time, result count, utilisation spread] for one cell."""
    machine = load_skew_machine(
        config["n"], config["skew"], config["sites"], config["strategy"],
        seed=config["seed"],
    )
    result = run_stored(
        machine,
        lambda into: join_abprime(
            PROBE_RELATION, BUILD_RELATION, key=False, into=into
        ),
        profile=config["profiled"],
    )
    spread: Optional[float] = None
    if config["profiled"] and result.profile is not None:
        op_id = _join_op_id(result.profile)
        if op_id is not None:
            spread = result.profile.utilisation_spread(op_id)
    return [result.response_time, result.result_count, spread]


def _skew_grid(
    n: int = 10_000,
    skews: Sequence[float] = DEFAULT_SKEWS,
    strategies: Sequence[str] = SKEW_STRATEGIES,
    site_counts: Sequence[int] = DEFAULT_SITE_COUNTS,
    seed: int = 1988,
) -> Grid:
    lo, hi = min(site_counts), max(site_counts)

    def derive(config: dict[str, Any]) -> dict[str, Any]:
        config["profiled"] = config["sites"] == hi
        return config

    return Grid(
        axes=(
            Axis("skew", tuple(skews)),
            Axis("strategy", tuple(strategies)),
            Axis("sites", (lo, hi) if lo != hi else (lo,)),
        ),
        base={"n": n, "seed": seed},
        derive=derive,
    )


def _skew_summarise(
    grid: Grid, results: list[Any]
) -> tuple[Report, dict[str, Any]]:
    n, seed = grid.base["n"], grid.base["seed"]
    skews = grid.axis("skew").values
    strategies = grid.axis("strategy").values
    lo = min(grid.axis("sites").values)
    hi = max(grid.axis("sites").values)
    report = Report(
        name="extension_e4_skew",
        title=(
            f"Extension E4 — joinABprime ({n:,} ⋈ {max(1, n // 10):,}"
            f" tuples) under Zipf skew, {lo}→{hi} sites"
        ),
        columns=[
            "skew", "strategy", f"response @{lo} (s)",
            f"response @{hi} (s)", "speedup", f"node spread @{hi}",
            "result tuples",
        ],
    )
    profile: dict[str, Any] = {
        "experiment": "extension_e4_skew",
        "n": n,
        "skews": list(skews),
        "strategies": list(strategies),
        "site_counts": [lo, hi],
        "seed": seed,
        "points": [],
    }
    cells: dict[tuple[float, str, int], list[Any]] = {
        (config["skew"], config["strategy"], config["sites"]): outcome
        for config, outcome in zip(grid.points(), results)
    }
    speedups: dict[tuple[float, str], float] = {}
    spreads: dict[tuple[float, str], Optional[float]] = {}
    counts: set[int] = set()
    for skew in skews:
        for strategy in strategies:
            t_lo, count_lo, _ = cells[(skew, strategy, lo)]
            t_hi, count_hi, spread = cells[(skew, strategy, hi)]
            counts.update((count_lo, count_hi))
            speedup = t_lo / t_hi
            speedups[(skew, strategy)] = speedup
            spreads[(skew, strategy)] = spread
            report.add_row(
                skew, strategy, t_lo, t_hi, speedup, spread, count_hi
            )
            profile["points"].append({
                "skew": skew, "strategy": strategy,
                "sites": [lo, hi], "response": [t_lo, t_hi],
                "speedup": speedup, "spread": spread,
                "result_count": count_hi,
            })

    report.check(
        "every (skew, strategy, sites) cell returns the same join"
        f" result ({n:,} tuples)",
        counts == {n},
    )
    high = max(skews)
    if "hash" in strategies and high >= 1.0:
        aware = [s for s in strategies if s != "hash"]
        best = max(aware, key=lambda s: speedups[(high, s)])
        report.check(
            f"at skew={high}, {best} beats plain hash on speedup"
            f" ({speedups[(high, best)]:.2f}x vs"
            f" {speedups[(high, 'hash')]:.2f}x)",
            speedups[(high, best)] > speedups[(high, "hash")],
        )
        hash_spread = spreads[(high, "hash")]
        best_spread = spreads[(high, best)]
        report.check(
            f"at skew={high}, {best} balances the join"
            f" (spread {best_spread:.2f} vs hash {hash_spread:.2f})",
            best_spread is not None and hash_spread is not None
            and best_spread < hash_spread,
        )
        report.check(
            f"skew degrades the plain hash split (speedup at"
            f" skew={high} below skew={min(skews)})",
            speedups[(high, "hash")] < speedups[(min(skews), "hash")],
        )
    report.notes.append(
        "Speedup is response(min sites)/response(max sites) per strategy;"
        " spread is the join's busiest-node busy time over the mean"
        " (1.0 = perfectly balanced).  The probe relation's unique2 is"
        " Zipf-distributed over the build relation's key domain, so the"
        " join result is the probe cardinality for every strategy —"
        " redistribution changes timing, never answers."
    )
    return report, profile


EXTENSION_E4_SPEC = ExperimentSpec(
    name="extension_e4_skew", label="Extension E4", kind="extension",
    grid=_skew_grid, point=_skew_point, summarise=_skew_summarise,
)


def skew_join_experiment(
    n: int = 10_000,
    skews: Sequence[float] = DEFAULT_SKEWS,
    strategies: Sequence[str] = SKEW_STRATEGIES,
    site_counts: Sequence[int] = DEFAULT_SITE_COUNTS,
    seed: int = 1988,
    **matrix: Any,
) -> tuple[Report, dict[str, Any]]:
    """joinABprime under every (skew, strategy) pair at both ends of the
    processor range.  Returns the shape-checked :class:`Report` plus a
    JSON profile of every cell."""
    run = run_experiment(
        EXTENSION_E4_SPEC, n=n, skews=skews, strategies=strategies,
        site_counts=site_counts, seed=seed, **matrix,
    )
    assert run.profile is not None
    return run.report, run.profile


def save_skew_profile(
    profile: dict[str, Any], directory: Optional[str] = None
) -> str:
    """Write the sweep profile JSON next to the markdown report."""
    path = os.path.join(results_dir(directory), "extension_e4_skew.json")
    with open(path, "w") as fh:
        json.dump(profile, fh, indent=2, sort_keys=False)
    return path
