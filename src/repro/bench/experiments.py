"""Experiment definitions: one spec per table/figure of the paper.

Each experiment is an :class:`~repro.bench.matrix.ExperimentSpec`: a
declarative config grid, a picklable *point function* (config dict in,
JSON-safe measurement out — it crosses a process boundary under
:func:`~repro.bench.sweep.run_sweep` and lands verbatim in the
persistent :class:`~repro.bench.store.ResultStore`), and a *summarise*
function that folds the stored per-point results into the paper-style
:class:`~repro.bench.reporting.Report`, re-asserting the paper's
qualitative claims as shape checks.

The module-level ``*_experiment`` functions are the stable public API:
thin wrappers over :func:`~repro.bench.matrix.run_experiment` that run
without a store by default (tests, exploratory calls).  The registry
(:mod:`repro.bench.registry`) is what runs them *with* the store.
"""

from __future__ import annotations

import os
from typing import Any, Optional, Sequence

from ..engine import JoinMode, Query
from ..engine.plan import AccessPath
from ..hardware import KB, GammaConfig
from ..metrics import TraceBuffer, peak_utilisation
from ..workloads.queries import (
    join_abprime,
    join_aselb,
    join_cselaselb,
    selection_query,
    single_tuple_select,
    update_suite,
)
from .harness import (
    bench_sizes,
    build_gamma,
    build_teradata,
    run_stored,
    speedup_series,
)
from .matrix import Axis, ExperimentSpec, Grid, run_experiment
from .recorded import TABLE1_SELECTIONS, TABLE2_JOINS, TABLE3_UPDATES
from .reporting import Report, ratio_note, results_dir


def bench_profile_enabled() -> bool:
    """True when the bench harness should attach the query profiler.

    Set by ``pytest benchmarks/ --profile`` (via ``GAMMA_BENCH_PROFILE``)
    or directly in the environment; profiled figures then write a
    ``<figure>.profile.json`` next to their trace export.
    """
    return os.environ.get("GAMMA_BENCH_PROFILE", "") not in ("", "0")


# ---------------------------------------------------------------------------
# Table 1 — selections
# ---------------------------------------------------------------------------

def _table1_point(config: dict[str, Any]) -> list[list[Any]]:
    """Grid point: both machines at one relation size (picklable)."""
    n = config["n"]
    measured: list[list[Any]] = []
    gamma = build_gamma(relations=[
        (f"heap{n}", n, "heap"), (f"idx{n}", n, "indexed"),
    ])
    teradata = build_teradata(relations=[
        (f"heap{n}", n, "heap"), (f"idx{n}", n, "indexed"),
    ])
    runs = {
        "1% nonindexed selection": lambda into, m=n: selection_query(
            f"heap{m}", m, 0.01, into=into),
        "10% nonindexed selection": lambda into, m=n: selection_query(
            f"heap{m}", m, 0.10, into=into),
        "1% selection using non-clustered index":
            lambda into, m=n: selection_query(f"idx{m}", m, 0.01, into=into),
        "10% selection using non-clustered index":
            lambda into, m=n: selection_query(f"idx{m}", m, 0.10, into=into),
        "1% selection using clustered index":
            lambda into, m=n: selection_query(
                f"idx{m}", m, 0.01, attr="unique1", into=into),
        "10% selection using clustered index":
            lambda into, m=n: selection_query(
                f"idx{m}", m, 0.10, attr="unique1", into=into),
    }
    for label, builder in runs.items():
        measured.append(
            [label, "gamma", run_stored(gamma, builder).response_time]
        )
        if "clustered index" not in label or "non-clustered" in label:
            measured.append(
                [label, "teradata",
                 run_stored(teradata, builder).response_time]
            )
    # Single-tuple select returns to the host.
    single = single_tuple_select(f"idx{n}", n // 2)
    measured.append(
        ["single tuple select", "gamma", gamma.run(single).response_time]
    )
    measured.append(
        ["single tuple select", "teradata",
         teradata.run(single).response_time]
    )
    return measured


def _table1_grid(sizes: Optional[Sequence[int]] = None) -> Grid:
    return Grid(axes=(Axis("n", tuple(sizes or bench_sizes())),))


def _table1_summarise(grid: Grid, results: list[Any]) -> Report:
    sizes = list(grid.axis("n").values)
    report = Report(
        name="table1_selection",
        title="Table 1 — Selection Queries (seconds)",
        columns=["query", "tuples", "teradata paper", "teradata",
                 "gamma paper", "gamma", "gamma ratio"],
    )
    measured: dict[tuple[str, int, str], float] = {}
    for config, rows in zip(grid.points(), results):
        for label, machine, response in rows:
            measured[(label, config["n"], machine)] = response

    for label, per_size in TABLE1_SELECTIONS.items():
        for n in sizes:
            paper = per_size[n]
            gm = measured.get((label, n, "gamma"))
            tm = measured.get((label, n, "teradata"))
            report.add_row(
                label, n, paper["teradata"], tm, paper["gamma"], gm,
                ratio_note(gm, paper["gamma"]) if gm is not None else None,
            )

    def t(label, n, machine="gamma"):
        return measured[(label, n, machine)]

    big = max(sizes)
    small = min(sizes)
    if len(sizes) > 1:
        report.check(
            "execution time scales linearly with relation size (Gamma)",
            0.5 * (big / small)
            <= t("1% nonindexed selection", big)
            / t("1% nonindexed selection", small)
            <= 1.5 * (big / small),
        )
    report.check(
        "clustered index is the fastest organisation (Gamma)",
        t("1% selection using clustered index", big)
        < t("1% selection using non-clustered index", big)
        < t("1% nonindexed selection", big),
    )
    report.check(
        "10% non-clustered-index selection equals a file scan"
        " (optimizer picks the segment scan)",
        abs(t("10% selection using non-clustered index", big)
            - t("10% nonindexed selection", big))
        < 0.25 * t("10% nonindexed selection", big),
    )
    report.check(
        "Gamma beats Teradata on every common row",
        all(
            t(label, n) < t(label, n, "teradata")
            for label in TABLE1_SELECTIONS
            for n in sizes
            if (label, n, "teradata") in measured
            and (label, n, "gamma") in measured
        ),
    )
    report.check(
        "Teradata's non-clustered index barely helps at 10%"
        " (hash-ordered dense index)",
        abs(t("10% selection using non-clustered index", big, "teradata")
            - t("10% nonindexed selection", big, "teradata"))
        < 0.25 * t("10% nonindexed selection", big, "teradata"),
    )
    return report


TABLE1_SPEC = ExperimentSpec(
    name="table1_selection", label="Table 1", kind="table",
    grid=_table1_grid, point=_table1_point, summarise=_table1_summarise,
)


def table1_selection_experiment(
    sizes: Optional[Sequence[int]] = None, **matrix: Any
) -> Report:
    """Regenerate Table 1: seven selection variants on both machines."""
    return run_experiment(TABLE1_SPEC, sizes=sizes, **matrix).report


# ---------------------------------------------------------------------------
# Table 2 — joins
# ---------------------------------------------------------------------------

def _table2_point(config: dict[str, Any]) -> list[list[Any]]:
    """Grid point: the six join variants at one size (picklable)."""
    n = config["n"]
    measured: list[list[Any]] = []
    tenth = n // 10
    rels = [
        (f"A{n}", n, "heap"), (f"B{n}", n, "heap"),
        (f"Bp{n}", tenth, "heap"), (f"C{n}", tenth, "heap"),
    ]
    gamma = build_gamma(relations=rels)
    teradata = build_teradata(relations=rels)
    builders = {
        "joinABprime (non-key attributes)": lambda into, m=n: join_abprime(
            f"A{m}", f"Bp{m}", key=False, into=into),
        "joinAselB (non-key attributes)": lambda into, m=n: join_aselb(
            f"A{m}", f"B{m}", m, key=False, into=into),
        "joinCselAselB (non-key attributes)": lambda into, m=n: join_cselaselb(
            f"A{m}", f"B{m}", f"C{m}", m, key=False, into=into),
        "joinABprime (key attributes)": lambda into, m=n: join_abprime(
            f"A{m}", f"Bp{m}", key=True, into=into),
        "joinAselB (key attributes)": lambda into, m=n: join_aselb(
            f"A{m}", f"B{m}", m, key=True, into=into),
        "joinCselAselB (key attributes)": lambda into, m=n: join_cselaselb(
            f"A{m}", f"B{m}", f"C{m}", m, key=True, into=into),
    }
    for label, builder in builders.items():
        measured.append(
            [label, "gamma", run_stored(gamma, builder).response_time]
        )
        measured.append(
            [label, "teradata", run_stored(teradata, builder).response_time]
        )
    return measured


def _table2_grid(sizes: Optional[Sequence[int]] = None) -> Grid:
    return Grid(axes=(Axis("n", tuple(sizes or bench_sizes())),))


def _table2_summarise(grid: Grid, results: list[Any]) -> Report:
    sizes = list(grid.axis("n").values)
    report = Report(
        name="table2_join",
        title="Table 2 — Join Queries (seconds); Gamma Remote, 4 KB pages",
        columns=["query", "tuples", "teradata paper", "teradata",
                 "gamma paper", "gamma", "gamma ratio"],
    )
    measured: dict[tuple[str, int, str], float] = {}
    for config, rows in zip(grid.points(), results):
        for label, machine, response in rows:
            measured[(label, config["n"], machine)] = response

    for label, per_size in TABLE2_JOINS.items():
        for n in sizes:
            paper = per_size[n]
            gm = measured.get((label, n, "gamma"))
            tm = measured.get((label, n, "teradata"))
            report.add_row(
                label, n, paper["teradata"], tm, paper["gamma"], gm,
                ratio_note(gm, paper["gamma"]) if gm is not None else None,
            )

    def t(label, n, machine="gamma"):
        return measured[(label, n, machine)]

    big = max(sizes)
    report.check(
        "Gamma: joinAselB FASTER than joinABprime (selection propagation)",
        t("joinAselB (non-key attributes)", big)
        < t("joinABprime (non-key attributes)", big),
    )
    report.check(
        "Teradata: joinABprime FASTER than joinAselB (no propagation)",
        t("joinABprime (non-key attributes)", big, "teradata")
        < t("joinAselB (non-key attributes)", big, "teradata"),
    )
    report.check(
        "Teradata gains 25-50% on key-attribute joins"
        " (redistribution skipped)",
        0.40
        <= t("joinABprime (key attributes)", big, "teradata")
        / t("joinABprime (non-key attributes)", big, "teradata")
        <= 0.90,
    )
    report.check(
        "Gamma key-attribute joins cost about the same as non-key"
        " (Remote mode still redistributes both relations)",
        0.80
        <= t("joinABprime (key attributes)", big)
        / t("joinABprime (non-key attributes)", big)
        <= 1.10,
    )
    report.check(
        "Gamma beats Teradata on every join",
        all(
            t(label, n) < t(label, n, "teradata")
            for label in TABLE2_JOINS for n in sizes
        ),
    )
    return report


TABLE2_SPEC = ExperimentSpec(
    name="table2_join", label="Table 2", kind="table",
    grid=_table2_grid, point=_table2_point, summarise=_table2_summarise,
)


def table2_join_experiment(
    sizes: Optional[Sequence[int]] = None, **matrix: Any
) -> Report:
    """Regenerate Table 2: three join queries × key/non-key attributes."""
    return run_experiment(TABLE2_SPEC, sizes=sizes, **matrix).report


# ---------------------------------------------------------------------------
# Table 3 — updates
# ---------------------------------------------------------------------------

def _table3_point(config: dict[str, Any]) -> list[list[Any]]:
    """Grid point: the update mix at one size (picklable)."""
    n = config["n"]
    measured: list[list[Any]] = []
    gamma = build_gamma(relations=[
        (f"heap{n}", n, "heap"), (f"idx{n}", n, "indexed"),
    ])
    teradata = build_teradata(relations=[
        (f"heap{n}", n, "heap"), (f"idx{n}", n, "indexed"),
    ])
    heap_suite = update_suite(f"heap{n}", n)
    idx_suite = update_suite(f"idx{n}", n)
    for machine, tag in ((gamma, "gamma"), (teradata, "teradata")):
        for label in TABLE3_UPDATES:
            suite = heap_suite if label == "append 1 tuple (no indices)" else idx_suite
            measured.append(
                [label, tag, machine.update(suite[label]).response_time]
            )
    return measured


def _table3_grid(sizes: Optional[Sequence[int]] = None) -> Grid:
    return Grid(axes=(Axis("n", tuple(sizes or bench_sizes())),))


def _table3_summarise(grid: Grid, results: list[Any]) -> Report:
    sizes = list(grid.axis("n").values)
    report = Report(
        name="table3_update",
        title="Table 3 — Update Queries (seconds)",
        columns=["query", "tuples", "teradata paper", "teradata",
                 "gamma paper", "gamma"],
    )
    measured: dict[tuple[str, int, str], float] = {}
    for config, rows in zip(grid.points(), results):
        for label, machine, response in rows:
            measured[(label, config["n"], machine)] = response

    for label, per_size in TABLE3_UPDATES.items():
        for n in sizes:
            paper = per_size[n]
            report.add_row(
                label, n, paper["teradata"],
                measured[(label, n, "teradata")],
                paper["gamma"], measured[(label, n, "gamma")],
            )

    def t(label, n, machine="gamma"):
        return measured[(label, n, machine)]

    big = max(sizes)
    report.check(
        "append through an index costs more than a bare append"
        " (deferred-update file)",
        t("append 1 tuple (one index)", big)
        > t("append 1 tuple (no indices)", big),
    )
    report.check(
        "modifying the key attribute is the most expensive update"
        " (tuple relocation + index maintenance)",
        t("modify 1 tuple (key attribute)", big)
        == max(t(label, big) for label in TABLE3_UPDATES),
    )
    report.check(
        "Gamma is faster than Teradata on every update"
        " (partial recovery vs full logging)",
        all(
            t(label, n) < t(label, n, "teradata")
            for label in TABLE3_UPDATES for n in sizes
        ),
    )
    return report


TABLE3_SPEC = ExperimentSpec(
    name="table3_update", label="Table 3", kind="table",
    grid=_table3_grid, point=_table3_point, summarise=_table3_summarise,
)


def table3_update_experiment(
    sizes: Optional[Sequence[int]] = None, **matrix: Any
) -> Report:
    """Regenerate Table 3: the append/delete/modify mix."""
    return run_experiment(TABLE3_SPEC, sizes=sizes, **matrix).report


# ---------------------------------------------------------------------------
# Figures 1-2 — non-indexed selection speedup
# ---------------------------------------------------------------------------

_FIG01_02_SELECTIVITIES = (0.0, 0.01, 0.10)


def _fig01_02_point(config: dict[str, Any]) -> dict[str, Any]:
    """Grid point: one processor count, all selectivities (picklable)."""
    n, procs = config["n"], config["procs"]
    traced, profiled = config["traced"], config["profiled"]
    machine = build_gamma(
        GammaConfig.paper_default().with_sites(procs),
        relations=[("rel", n, "heap")],
    )
    sels: list[list[Any]] = []
    for sel in _FIG01_02_SELECTIVITIES:
        result = run_stored(
            machine, lambda into, s=sel: selection_query(
                "rel", n, s, into=into)
        )
        sels.append([sel, result.response_time, result.utilisations])
    traced_time: Optional[float] = None
    if traced:
        traced_run = run_stored(
            machine,
            lambda into: selection_query("rel", n, 0.01, into=into),
            trace=(trace := TraceBuffer()),
            profile=profiled,
        )
        traced_time = traced_run.response_time
        trace.write(os.path.join(
            results_dir(), "fig01_02_select_speedup.trace.json"))
        if profiled:
            path = os.path.join(
                results_dir(), "fig01_02_select_speedup.profile.json")
            with open(path, "w") as fh:
                fh.write(traced_run.profile.to_json())
    return {"sels": sels, "traced_time": traced_time}


def _fig01_02_grid(
    n: int = 100_000,
    processor_counts: Sequence[int] = (1, 2, 4, 8),
    profile: Optional[bool] = None,
) -> Grid:
    if profile is None:
        profile = bench_profile_enabled()
    widest = max(processor_counts)

    def derive(config: dict[str, Any]) -> dict[str, Any]:
        config["traced"] = config["procs"] == widest
        config["profiled"] = bool(profile) and config["procs"] == widest
        return config

    return Grid(
        axes=(Axis("procs", tuple(processor_counts)),),
        base={"n": n}, derive=derive,
    )


def _fig01_02_summarise(grid: Grid, results: list[Any]) -> Report:
    n = grid.base["n"]
    processor_counts = grid.axis("procs").values
    report = Report(
        name="fig01_02_select_speedup",
        title=f"Figures 1-2 — Non-indexed selections on {n:,} tuples"
              " vs processors with disks",
        columns=["selectivity", "processors", "response (s)", "speedup",
                 "cpu util", "disk util", "net util"],
    )
    selectivities = _FIG01_02_SELECTIVITIES
    times: dict[float, dict[int, float]] = {s: {} for s in selectivities}
    utils: dict[tuple[float, int], dict[str, float]] = {}
    traced_pair: Optional[tuple[float, float]] = None
    for config, point in zip(grid.points(), results):
        procs = config["procs"]
        ptimes = {sel: response for sel, response, _ in point["sels"]}
        for sel, response, putils in point["sels"]:
            times[sel][procs] = response
            utils[(sel, procs)] = putils
        if point["traced_time"] is not None:
            traced_pair = (ptimes[0.01], point["traced_time"])
    for sel in selectivities:
        speedups = speedup_series(times[sel], min(processor_counts))
        for procs in processor_counts:
            u = utils[(sel, procs)]
            report.add_row(f"{sel:.0%}", procs, times[sel][procs],
                           speedups[procs],
                           peak_utilisation(u, "cpu"),
                           peak_utilisation(u, "disk"),
                           peak_utilisation(u, "nic"))

    lo, hi = min(processor_counts), max(processor_counts)
    ideal = hi / lo
    report.check(
        "the disk is the saturated bottleneck at every scale"
        " (busiest disk >= 90% busy and above every CPU/NIC)",
        all(
            peak_utilisation(utils[(sel, procs)], "disk") >= 0.90
            and peak_utilisation(utils[(sel, procs)], "disk")
            > max(peak_utilisation(utils[(sel, procs)], "cpu"),
                  peak_utilisation(utils[(sel, procs)], "nic"))
            for sel in selectivities for procs in processor_counts
        ),
    )
    if traced_pair is not None:
        report.check(
            "trace/profile collection does not perturb the simulated"
            " timeline (bit-identical response time with instrumentation"
            " on)",
            traced_pair[0] == traced_pair[1],
        )
    for sel in selectivities:
        report.check(
            f"{sel:.0%} selection speeds up with processors",
            times[sel][hi] < times[sel][lo],
        )
    report.check(
        "0% and 1% speedups are near-linear (>= 70% of ideal)",
        all(
            speedup_series(times[s], lo)[hi] >= 0.7 * ideal
            for s in (0.0, 0.01)
        ),
    )
    report.check(
        "the 10% query keeps a persistent penalty over 0% at full scale"
        " (result shipping/storing does not vanish with parallelism)",
        times[0.10][hi] > 1.08 * times[0.0][hi],
    )
    report.check(
        "10% speedup does not beat 0% by a meaningful margin",
        speedup_series(times[0.10], lo)[hi]
        <= 1.05 * speedup_series(times[0.0], lo)[hi],
    )
    report.notes.append(
        "Residual: the paper's Figure 2 shows the 10% speedup visibly"
        " below 0% because disk and network DMA shared the VAX's bus;"
        " this model keeps them independent, so the 10% penalty stays"
        " proportional instead of growing with the processor count."
    )
    return report


FIG01_02_SPEC = ExperimentSpec(
    name="fig01_02_select_speedup", label="Figures 1-2", kind="figure",
    grid=_fig01_02_grid, point=_fig01_02_point,
    summarise=_fig01_02_summarise,
)


def fig01_02_experiment(
    n: int = 100_000,
    processor_counts: Sequence[int] = (1, 2, 4, 8),
    profile: Optional[bool] = None,
    **matrix: Any,
) -> Report:
    """Response time and speedup of 0/1/10% selections vs processors.

    Besides the paper's two figures, each row reports the busiest node's
    CPU/disk/network busy fractions, and the widest configuration's 1%
    selection is re-run under a :class:`~repro.metrics.TraceBuffer` to
    (a) export a Chrome-trace timeline next to the markdown report and
    (b) assert that tracing leaves the simulated timeline bit-identical.
    With ``profile`` (default: the ``--profile`` bench option), the
    re-run also attaches the query profiler and writes the
    EXPLAIN ANALYZE output as ``fig01_02_select_speedup.profile.json``.
    """
    return run_experiment(
        FIG01_02_SPEC, n=n, processor_counts=processor_counts,
        profile=profile, **matrix,
    ).report


# ---------------------------------------------------------------------------
# Figures 3-4 — indexed selection speedup
# ---------------------------------------------------------------------------

_FIG03_04_VARIANTS = {
    "1% clustered": ("unique1", 0.01, None),
    "10% clustered": ("unique1", 0.10, None),
    "1% non-clustered": ("unique2", 0.01, None),
    "0% non-clustered": ("unique2", 0.0, AccessPath.NONCLUSTERED_INDEX),
}


def _fig03_04_point(config: dict[str, Any]) -> dict[str, float]:
    """Grid point: indexed-selection variants at one width (picklable)."""
    n, procs = config["n"], config["procs"]
    machine = build_gamma(
        GammaConfig.paper_default().with_sites(procs),
        relations=[("rel", n, "indexed")],
    )
    times: dict[str, float] = {}
    for label, (attr, sel, forced) in _FIG03_04_VARIANTS.items():
        times[label] = run_stored(
            machine,
            lambda into, a=attr, s=sel, f=forced: selection_query(
                "rel", n, s, attr=a, into=into, forced_path=f),
        ).response_time
    return times


def _fig03_04_grid(
    n: int = 100_000, processor_counts: Sequence[int] = (1, 2, 4, 8)
) -> Grid:
    return Grid(
        axes=(Axis("procs", tuple(processor_counts)),), base={"n": n},
    )


def _fig03_04_summarise(grid: Grid, results: list[Any]) -> Report:
    n = grid.base["n"]
    processor_counts = grid.axis("procs").values
    report = Report(
        name="fig03_04_indexed_speedup",
        title=f"Figures 3-4 — Indexed selections on {n:,} tuples"
              " vs processors with disks",
        columns=["query", "processors", "response (s)", "speedup"],
    )
    variants = _FIG03_04_VARIANTS
    times: dict[str, dict[int, float]] = {v: {} for v in variants}
    for config, ptimes in zip(grid.points(), results):
        for label in variants:
            times[label][config["procs"]] = ptimes[label]
    for label in variants:
        speedups = speedup_series(times[label], min(processor_counts))
        for procs in processor_counts:
            report.add_row(label, procs, times[label][procs], speedups[procs])

    lo, hi = min(processor_counts), max(processor_counts)
    report.check(
        "0% indexed selection SLOWS DOWN as processors are added"
        " (operator start-up dominates 1-2 index I/Os)",
        times["0% non-clustered"][hi] > times["0% non-clustered"][lo],
    )
    report.check(
        "1% non-clustered achieves the best speedup of the indexed queries"
        " (random seeks throttle each disk)",
        speedup_series(times["1% non-clustered"], lo)[hi]
        >= max(
            speedup_series(times["1% clustered"], lo)[hi],
            speedup_series(times["10% clustered"], lo)[hi],
        ),
    )
    report.check(
        "clustered selections speed up sub-linearly",
        speedup_series(times["1% clustered"], lo)[hi] < 0.9 * hi / lo,
    )
    return report


FIG03_04_SPEC = ExperimentSpec(
    name="fig03_04_indexed_speedup", label="Figures 3-4", kind="figure",
    grid=_fig03_04_grid, point=_fig03_04_point,
    summarise=_fig03_04_summarise,
)


def fig03_04_experiment(
    n: int = 100_000,
    processor_counts: Sequence[int] = (1, 2, 4, 8),
    **matrix: Any,
) -> Report:
    """Indexed selections vs processors, incl. the 0% slowdown anomaly."""
    return run_experiment(
        FIG03_04_SPEC, n=n, processor_counts=processor_counts, **matrix,
    ).report


# ---------------------------------------------------------------------------
# Figures 5-6 — page size vs non-indexed selections
# ---------------------------------------------------------------------------

_FIG05_06_SELECTIVITIES = (0.0, 0.01, 0.10, 1.0)


def _fig05_06_point(config: dict[str, Any]) -> list[list[float]]:
    """Grid point: one page size, all selectivities (picklable)."""
    n, kb = config["n"], config["page_kb"]
    machine = build_gamma(
        GammaConfig.paper_default().with_page_size(kb * KB),
        relations=[("rel", n, "heap")],
    )
    out: list[list[float]] = []
    for sel in _FIG05_06_SELECTIVITIES:
        out.append([sel, run_stored(
            machine, lambda into, s=sel: selection_query(
                "rel", n, s, into=into)
        ).response_time])
    return out


def _fig05_06_grid(
    n: int = 100_000, page_sizes_kb: Sequence[int] = (2, 4, 8, 16, 32)
) -> Grid:
    return Grid(
        axes=(Axis("page_kb", tuple(page_sizes_kb)),), base={"n": n},
    )


def _fig05_06_summarise(grid: Grid, results: list[Any]) -> Report:
    n = grid.base["n"]
    page_sizes_kb = grid.axis("page_kb").values
    report = Report(
        name="fig05_06_pagesize_select",
        title=f"Figures 5-6 — Non-indexed selections on {n:,} tuples"
              " vs disk page size (8 processors)",
        columns=["selectivity", "page KB", "response (s)", "speedup vs 2KB"],
    )
    selectivities = _FIG05_06_SELECTIVITIES
    times: dict[float, dict[int, float]] = {s: {} for s in selectivities}
    for config, pairs in zip(grid.points(), results):
        for sel, response in pairs:
            times[sel][config["page_kb"]] = response
    for sel in selectivities:
        base = times[sel][min(page_sizes_kb)]
        for kb in page_sizes_kb:
            report.add_row(f"{sel:.0%}", kb, times[sel][kb],
                           base / times[sel][kb])

    small, big = min(page_sizes_kb), max(page_sizes_kb)
    report.check(
        "2 KB pages are disk bound: growing the page helps the 0% query",
        times[0.0][small] > 1.3 * times[0.0][big],
    )
    report.check(
        "by 16 KB the system is CPU bound: 16->32 KB changes 0% little",
        abs(times[0.0][16] - times[0.0][32]) < 0.1 * times[0.0][16],
    )
    report.check(
        "the 10%-over-0% gap widens with page size (network interface"
        " becomes the bottleneck as tuples are produced faster)",
        (times[0.10][big] - times[0.0][big]) / times[0.0][big]
        > (times[0.10][small] - times[0.0][small]) / times[0.0][small],
    )
    return report


FIG05_06_SPEC = ExperimentSpec(
    name="fig05_06_pagesize_select", label="Figures 5-6", kind="figure",
    grid=_fig05_06_grid, point=_fig05_06_point,
    summarise=_fig05_06_summarise,
)


def fig05_06_experiment(
    n: int = 100_000,
    page_sizes_kb: Sequence[int] = (2, 4, 8, 16, 32),
    **matrix: Any,
) -> Report:
    """Non-indexed selections across disk page sizes (8 disk sites)."""
    return run_experiment(
        FIG05_06_SPEC, n=n, page_sizes_kb=page_sizes_kb, **matrix,
    ).report


# ---------------------------------------------------------------------------
# Figures 7-8 — page size vs indexed selections
# ---------------------------------------------------------------------------

_FIG07_08_VARIANTS = {
    "1% non-clustered": ("unique2", 0.01),
    "1% clustered": ("unique1", 0.01),
    "10% clustered": ("unique1", 0.10),
}


def _fig07_08_point(config: dict[str, Any]) -> dict[str, float]:
    """Grid point: indexed variants at one page size (picklable)."""
    n, kb = config["n"], config["page_kb"]
    machine = build_gamma(
        GammaConfig.paper_default().with_page_size(kb * KB),
        relations=[("rel", n, "indexed")],
    )
    times: dict[str, float] = {}
    for label, (attr, sel) in _FIG07_08_VARIANTS.items():
        forced = (
            AccessPath.NONCLUSTERED_INDEX
            if label == "1% non-clustered" else None
        )
        times[label] = run_stored(
            machine,
            lambda into, a=attr, s=sel, f=forced: selection_query(
                "rel", n, s, attr=a, into=into, forced_path=f),
        ).response_time
    return times


def _fig07_08_grid(
    n: int = 100_000, page_sizes_kb: Sequence[int] = (2, 4, 8, 16, 32)
) -> Grid:
    return Grid(
        axes=(Axis("page_kb", tuple(page_sizes_kb)),), base={"n": n},
    )


def _fig07_08_summarise(grid: Grid, results: list[Any]) -> Report:
    n = grid.base["n"]
    page_sizes_kb = grid.axis("page_kb").values
    report = Report(
        name="fig07_08_pagesize_indexed",
        title=f"Figures 7-8 — Indexed selections on {n:,} tuples"
              " vs disk page size (8 processors)",
        columns=["query", "page KB", "response (s)"],
    )
    variants = _FIG07_08_VARIANTS
    times: dict[str, dict[int, float]] = {v: {} for v in variants}
    for config, ptimes in zip(grid.points(), results):
        for label in variants:
            times[label][config["page_kb"]] = ptimes[label]
    for label in variants:
        for kb in page_sizes_kb:
            report.add_row(label, kb, times[label][kb])

    small, big = min(page_sizes_kb), max(page_sizes_kb)
    report.check(
        "any page-size increase degrades the 1% non-clustered selection"
        " (one random transfer per tuple; transfer time grows)",
        times["1% non-clustered"][big] > times["1% non-clustered"][small],
    )
    report.check(
        "the 10% clustered selection keeps improving with page size",
        times["10% clustered"][big] < times["10% clustered"][small],
    )
    report.check(
        "the 1% clustered selection stops improving past 16 KB",
        times["1% clustered"][32] >= 0.95 * times["1% clustered"][16],
    )
    return report


FIG07_08_SPEC = ExperimentSpec(
    name="fig07_08_pagesize_indexed", label="Figures 7-8", kind="figure",
    grid=_fig07_08_grid, point=_fig07_08_point,
    summarise=_fig07_08_summarise,
)


def fig07_08_experiment(
    n: int = 100_000,
    page_sizes_kb: Sequence[int] = (2, 4, 8, 16, 32),
    **matrix: Any,
) -> Report:
    """Indexed selections across page sizes: fan-out vs transfer time."""
    return run_experiment(
        FIG07_08_SPEC, n=n, page_sizes_kb=page_sizes_kb, **matrix,
    ).report


# ---------------------------------------------------------------------------
# Figures 9-12 — join placement vs processors
# ---------------------------------------------------------------------------

_FIG09_12_MODES = (JoinMode.LOCAL, JoinMode.REMOTE, JoinMode.ALLNODES)


def _fig09_12_point(config: dict[str, Any]) -> list[list[Any]]:
    """Grid point: every placement × join-attr pair at one width."""
    n, procs = config["n"], config["procs"]
    machine = build_gamma(
        GammaConfig.paper_default().with_sites(procs),
        relations=[("A", n, "heap"), ("Bp", n // 10, "heap")],
    )
    out: list[list[Any]] = []
    for key in (True, False):
        for mode in _FIG09_12_MODES:
            out.append([key, mode.value, run_stored(
                machine,
                lambda into, k=key, md=mode: join_abprime(
                    "A", "Bp", key=k, mode=md, into=into),
            ).response_time])
    return out


def _fig09_12_grid(
    n: int = 100_000, processor_counts: Sequence[int] = (2, 4, 8)
) -> Grid:
    return Grid(
        axes=(Axis("procs", tuple(processor_counts)),), base={"n": n},
    )


def _fig09_12_summarise(grid: Grid, results: list[Any]) -> Report:
    n = grid.base["n"]
    processor_counts = grid.axis("procs").values
    report = Report(
        name="fig09_12_join_speedup",
        title=f"Figures 9-12 — joinABprime ({n:,} x {n // 10:,}) vs"
              " processors, by placement mode",
        columns=["join attr", "mode", "processors", "response (s)",
                 "speedup vs 2"],
    )
    modes = _FIG09_12_MODES
    times: dict[tuple[bool, JoinMode], dict[int, float]] = {
        (key, mode): {} for key in (True, False) for mode in modes
    }
    for config, rows in zip(grid.points(), results):
        for key, mode_value, response in rows:
            times[(key, JoinMode(mode_value))][config["procs"]] = response
    reference = min(processor_counts)
    for key in (True, False):
        for mode in modes:
            series = times[(key, mode)]
            speedups = speedup_series(series, reference)
            for procs in processor_counts:
                report.add_row(
                    "key" if key else "non-key", mode.value, procs,
                    series[procs], speedups[procs],
                )

    hi = max(processor_counts)
    report.check(
        "key attributes: Local fastest, then Allnodes, then Remote",
        times[(True, JoinMode.LOCAL)][hi]
        < times[(True, JoinMode.ALLNODES)][hi]
        < times[(True, JoinMode.REMOTE)][hi],
    )
    report.check(
        "non-key attributes: Remote fastest, then Allnodes, then Local",
        times[(False, JoinMode.REMOTE)][hi]
        < times[(False, JoinMode.ALLNODES)][hi]
        < times[(False, JoinMode.LOCAL)][hi],
    )
    report.check(
        "near-linear speedup from the 2-processor reference",
        speedup_series(times[(True, JoinMode.LOCAL)], reference)[hi]
        >= 0.6 * hi / reference,
    )
    report.check(
        "single-processor behaviour aside, Remote response is insensitive"
        " to the join attribute",
        abs(times[(True, JoinMode.REMOTE)][hi]
            - times[(False, JoinMode.REMOTE)][hi])
        < 0.15 * times[(False, JoinMode.REMOTE)][hi],
    )
    return report


FIG09_12_SPEC = ExperimentSpec(
    name="fig09_12_join_speedup", label="Figures 9-12", kind="figure",
    grid=_fig09_12_grid, point=_fig09_12_point,
    summarise=_fig09_12_summarise,
)


def fig09_12_experiment(
    n: int = 100_000,
    processor_counts: Sequence[int] = (2, 4, 8),
    **matrix: Any,
) -> Report:
    """joinABprime under Local/Remote/Allnodes on key and non-key attrs."""
    return run_experiment(
        FIG09_12_SPEC, n=n, processor_counts=processor_counts, **matrix,
    ).report


# ---------------------------------------------------------------------------
# Figure 13 — join overflow
# ---------------------------------------------------------------------------

def _fig13_point(config: dict[str, Any]) -> dict[str, Any]:
    """Grid point: Local + Remote joins at one memory ratio (picklable)."""
    n, ratio, profiled = config["n"], config["ratio"], config["profiled"]
    base_config = GammaConfig.paper_default()
    smaller_bytes = (n // 10) * 208 * base_config.hash_table_overhead
    machine_config = base_config.with_join_memory(
        max(64 * KB, int(ratio * smaller_bytes))
    )
    machine = build_gamma(
        machine_config,
        relations=[("A", n, "heap"), ("Bp", n // 10, "heap")],
    )
    per_mode: list[list[Any]] = []
    for mode in (JoinMode.LOCAL, JoinMode.REMOTE):
        result = run_stored(
            machine,
            lambda into, md=mode: join_abprime(
                "A", "Bp", key=True, mode=md, into=into),
        )
        per_mode.append(
            [mode.value, result.response_time, result.max_overflows]
        )
    profiled_time: Optional[float] = None
    if profiled:
        # Re-run the overflowing Remote join with the profiler and a
        # trace attached: the trace carries the hash-table/queue-depth
        # counter tracks, the profile the per-phase overflow story.
        result = run_stored(
            machine,
            lambda into: join_abprime(
                "A", "Bp", key=True, mode=JoinMode.REMOTE, into=into),
            trace=(trace := TraceBuffer()),
            profile=True,
        )
        profiled_time = result.response_time
        trace.write(os.path.join(results_dir(), "fig13_overflow.trace.json"))
        with open(os.path.join(
                results_dir(), "fig13_overflow.profile.json"), "w") as fh:
            fh.write(result.profile.to_json())
    return {"per_mode": per_mode, "profiled_time": profiled_time}


def _fig13_grid(
    n: int = 100_000,
    memory_ratios: Sequence[float] = (1.2, 1.0, 0.9, 0.8, 0.6, 0.45, 0.3, 0.2),
    profile: Optional[bool] = None,
) -> Grid:
    if profile is None:
        profile = bench_profile_enabled()
    deepest = min(memory_ratios)

    def derive(config: dict[str, Any]) -> dict[str, Any]:
        config["profiled"] = bool(profile) and config["ratio"] == deepest
        return config

    return Grid(
        axes=(Axis("ratio", tuple(memory_ratios)),),
        base={"n": n}, derive=derive,
    )


def _fig13_summarise(grid: Grid, results: list[Any]) -> Report:
    n = grid.base["n"]
    memory_ratios = grid.axis("ratio").values
    report = Report(
        name="fig13_overflow",
        title=f"Figure 13 — joinABprime ({n:,} x {n // 10:,}) under memory"
              " pressure (Simple hash-join overflow)",
        columns=["mode", "memory/|Bprime|", "response (s)",
                 "overflows per site"],
    )
    times: dict[tuple[JoinMode, float], float] = {}
    overflows: dict[tuple[JoinMode, float], int] = {}
    profiled_pair: Optional[tuple[float, float]] = None
    for config, point in zip(grid.points(), results):
        ratio = config["ratio"]
        for mode_value, response, ovf in point["per_mode"]:
            times[(JoinMode(mode_value), ratio)] = response
            overflows[(JoinMode(mode_value), ratio)] = ovf
        if point["profiled_time"] is not None:
            profiled_pair = (
                times[(JoinMode.REMOTE, ratio)], point["profiled_time"]
            )
    for mode in (JoinMode.LOCAL, JoinMode.REMOTE):
        for ratio in memory_ratios:
            report.add_row(mode.value, ratio, times[(mode, ratio)],
                           overflows[(mode, ratio)])

    high = max(memory_ratios)
    low = min(memory_ratios)
    if profiled_pair is not None:
        report.check(
            "profiling does not perturb the simulated timeline"
            " (bit-identical response time with profiler + trace on)",
            profiled_pair[0] == profiled_pair[1],
        )
    report.check(
        "no overflow at the highest memory ratio",
        overflows[(JoinMode.REMOTE, high)] == 0,
    )
    report.check(
        "response deteriorates rapidly once memory is scarce",
        times[(JoinMode.REMOTE, low)] > 1.6 * times[(JoinMode.REMOTE, high)],
    )
    flat_ratios = [r for r in memory_ratios
                   if overflows[(JoinMode.REMOTE, r)] <= 2]
    baseline = times[(JoinMode.REMOTE, high)]
    deepest = times[(JoinMode.REMOTE, low)]
    if len(flat_ratios) >= 2:
        report.check(
            "relatively flat from zero to two overflows, then rapid"
            " deterioration (optimizer may be off 2x without a blow-up)",
            max(times[(JoinMode.REMOTE, r)] for r in flat_ratios)
            < 2.2 * baseline < deepest,
        )
    report.check(
        "Local beats Remote before overflow (key attributes short-circuit)",
        times[(JoinMode.LOCAL, high)] < times[(JoinMode.REMOTE, high)],
    )
    crossed = any(
        times[(JoinMode.LOCAL, r)] > times[(JoinMode.REMOTE, r)]
        for r in memory_ratios
        if overflows[(JoinMode.LOCAL, r)] >= 1
    )
    report.check(
        "Local/Remote curves cross after overflow (hash-function switch)",
        crossed,
    )
    return report


FIG13_SPEC = ExperimentSpec(
    name="fig13_overflow", label="Figure 13", kind="figure",
    grid=_fig13_grid, point=_fig13_point, summarise=_fig13_summarise,
)


def fig13_experiment(
    n: int = 100_000,
    memory_ratios: Sequence[float] = (1.2, 1.0, 0.9, 0.8, 0.6, 0.45, 0.3, 0.2),
    profile: Optional[bool] = None,
    **matrix: Any,
) -> Report:
    """joinABprime response vs available-memory/smaller-relation ratio.

    Ratio 1.0 means hash-table capacity for exactly the building relation
    ("available memory was initially set to be sufficient to hold the
    total number of tuples required in the building phase"), so the
    bucket/pointer overhead factor is included in the budget.  With
    ``profile`` (default: the ``--profile`` bench option) the deepest
    overflow point is re-run with the profiler and a trace attached,
    writing ``fig13_overflow.profile.json`` and a Perfetto trace with
    hash-table/queue-depth counter tracks.
    """
    return run_experiment(
        FIG13_SPEC, n=n, memory_ratios=memory_ratios, profile=profile,
        **matrix,
    ).report


# ---------------------------------------------------------------------------
# Figures 14-15 — page size vs joinAselB
# ---------------------------------------------------------------------------

def _fig14_15_point(config: dict[str, Any]) -> float:
    """Grid point: joinAselB at one page size (picklable)."""
    n, kb = config["n"], config["page_kb"]
    machine = build_gamma(
        GammaConfig.paper_default().with_page_size(kb * KB),
        relations=[("A", n, "heap"), ("B", n, "heap")],
    )
    return run_stored(
        machine,
        lambda into: join_aselb("A", "B", n, key=False, into=into),
    ).response_time


def _fig14_15_grid(
    n: int = 100_000, page_sizes_kb: Sequence[int] = (2, 4, 8, 16, 32)
) -> Grid:
    return Grid(
        axes=(Axis("page_kb", tuple(page_sizes_kb)),), base={"n": n},
    )


def _fig14_15_summarise(grid: Grid, results: list[Any]) -> Report:
    n = grid.base["n"]
    page_sizes_kb = grid.axis("page_kb").values
    report = Report(
        name="fig14_15_pagesize_join",
        title=f"Figures 14-15 — joinAselB on {n:,} tuples vs disk page size",
        columns=["page KB", "response (s)", "speedup vs 2KB"],
    )
    times: dict[int, float] = {
        config["page_kb"]: response
        for config, response in zip(grid.points(), results)
    }
    base = times[min(page_sizes_kb)]
    for kb in page_sizes_kb:
        report.add_row(kb, times[kb], base / times[kb])

    report.check(
        "larger pages reduce joinAselB response time",
        times[16] < times[2],
    )
    report.check(
        "improvement levels off at 16 KB pages",
        abs(times[32] - times[16]) < 0.12 * times[16],
    )
    return report


FIG14_15_SPEC = ExperimentSpec(
    name="fig14_15_pagesize_join", label="Figures 14-15", kind="figure",
    grid=_fig14_15_grid, point=_fig14_15_point,
    summarise=_fig14_15_summarise,
)


def fig14_15_experiment(
    n: int = 100_000,
    page_sizes_kb: Sequence[int] = (2, 4, 8, 16, 32),
    **matrix: Any,
) -> Report:
    """joinAselB across page sizes (16 query processors, ample memory)."""
    return run_experiment(
        FIG14_15_SPEC, n=n, page_sizes_kb=page_sizes_kb, **matrix,
    ).report


# ---------------------------------------------------------------------------
# Aggregates ([DEWI88] companion experiment)
# ---------------------------------------------------------------------------

def _aggregate_point(config: dict[str, Any]) -> dict[str, Any]:
    """Grid point: the three aggregate queries on one machine."""
    n = config["n"]
    machine = build_gamma(relations=[("rel", n, "heap")])
    scalar = machine.run(Query.aggregate("rel", op="min", attr="unique2"))
    count = machine.run(Query.aggregate("rel", op="count"))
    grouped = machine.run(
        Query.aggregate("rel", op="sum", attr="unique1", group_by="ten")
    )
    return {
        "scalar": [scalar.response_time, scalar.tuples[0][0]],
        "count": [count.response_time, count.tuples[0][0]],
        "grouped": [grouped.response_time, len(grouped.tuples)],
    }


def _aggregate_grid(n: int = 10_000) -> Grid:
    return Grid(axes=(Axis("n", (n,)),))


def _aggregate_summarise(grid: Grid, results: list[Any]) -> Report:
    (n,) = grid.axis("n").values
    (point,) = results
    report = Report(
        name="aggregate",
        title=f"Aggregates on {n:,} tuples (companion experiment)",
        columns=["query", "response (s)", "result"],
    )
    scalar_t, scalar_min = point["scalar"]
    count_t, count_value = point["count"]
    grouped_t, n_groups = point["grouped"]
    report.add_row("scalar min(unique2)", scalar_t, scalar_min)
    report.add_row("scalar count(*)", count_t, count_value)
    report.add_row("sum(unique1) group by ten", grouped_t,
                   f"{n_groups} groups")
    report.check("count(*) returns the cardinality", count_value == n)
    report.check("min(unique2) is 0", scalar_min == 0)
    report.check("group-by produces 10 groups", n_groups == 10)
    report.check(
        "grouped aggregate costs more than scalar (repartitioning)",
        grouped_t > scalar_t,
    )
    return report


AGGREGATE_SPEC = ExperimentSpec(
    name="aggregate", label="Aggregates (companion)", kind="table",
    grid=_aggregate_grid, point=_aggregate_point,
    summarise=_aggregate_summarise,
)


def aggregate_experiment(n: int = 10_000, **matrix: Any) -> Report:
    """Scalar and grouped aggregates (run in the study, cut from the
    paper for space — reproduced from the companion TR's description)."""
    return run_experiment(AGGREGATE_SPEC, n=n, **matrix).report
