"""Every number the paper publishes, for paper-vs-measured reports.

Tables 1-3 are transcribed from the SIGMOD 1988 text.  ``None`` marks cells
the paper leaves blank (e.g. clustered-index rows for the Teradata machine,
which cannot build clustered indices, and 1 M-tuple Teradata cells missing
from the join table).  Figures 1-15 are published only as graphs; the
module records their *qualitative claims* instead, which is what the
benchmarks assert.
"""

from __future__ import annotations

#: Table 1 — selection queries, execution time in seconds.
#: row -> size -> machine -> seconds
TABLE1_SELECTIONS: dict[str, dict[int, dict[str, float | None]]] = {
    "1% nonindexed selection": {
        10_000: {"teradata": 6.86, "gamma": 1.63},
        100_000: {"teradata": 28.22, "gamma": 13.83},
        1_000_000: {"teradata": 213.13, "gamma": 134.86},
    },
    "10% nonindexed selection": {
        10_000: {"teradata": 15.97, "gamma": 2.11},
        100_000: {"teradata": 110.96, "gamma": 17.44},
        1_000_000: {"teradata": 1106.86, "gamma": 181.72},
    },
    "1% selection using non-clustered index": {
        10_000: {"teradata": 7.81, "gamma": 1.03},
        100_000: {"teradata": 29.94, "gamma": 5.32},
        1_000_000: {"teradata": 222.65, "gamma": 53.86},
    },
    "10% selection using non-clustered index": {
        10_000: {"teradata": 16.82, "gamma": 2.16},
        100_000: {"teradata": 111.40, "gamma": 17.65},
        1_000_000: {"teradata": 1107.59, "gamma": 182.00},
    },
    "1% selection using clustered index": {
        10_000: {"teradata": None, "gamma": 0.59},
        100_000: {"teradata": None, "gamma": 1.25},
        1_000_000: {"teradata": None, "gamma": 7.50},
    },
    "10% selection using clustered index": {
        10_000: {"teradata": None, "gamma": 1.26},
        100_000: {"teradata": None, "gamma": 7.27},
        1_000_000: {"teradata": None, "gamma": 69.60},
    },
    "single tuple select": {
        10_000: {"teradata": 1.08, "gamma": 0.15},
        100_000: {"teradata": 1.08, "gamma": 0.15},
        1_000_000: {"teradata": 1.08, "gamma": 0.20},
    },
}

#: Table 2 — join queries, execution time in seconds.
TABLE2_JOINS: dict[str, dict[int, dict[str, float | None]]] = {
    "joinABprime (non-key attributes)": {
        10_000: {"teradata": 34.9, "gamma": 6.5},
        100_000: {"teradata": 321.8, "gamma": 47.6},
        1_000_000: {"teradata": 3419.4, "gamma": 2938.2},
    },
    "joinAselB (non-key attributes)": {
        10_000: {"teradata": 35.6, "gamma": 5.1},
        100_000: {"teradata": 331.7, "gamma": 34.9},
        1_000_000: {"teradata": 3534.5, "gamma": 703.1},
    },
    "joinCselAselB (non-key attributes)": {
        10_000: {"teradata": 27.8, "gamma": 7.0},
        100_000: {"teradata": 191.8, "gamma": 38.0},
        1_000_000: {"teradata": 2032.7, "gamma": 731.2},
    },
    "joinABprime (key attributes)": {
        10_000: {"teradata": 22.2, "gamma": 5.7},
        100_000: {"teradata": 131.3, "gamma": 45.6},
        1_000_000: {"teradata": 1265.1, "gamma": 2926.7},
    },
    "joinAselB (key attributes)": {
        10_000: {"teradata": 25.0, "gamma": 5.0},
        100_000: {"teradata": 170.3, "gamma": 34.1},
        1_000_000: {"teradata": 1584.3, "gamma": 737.7},
    },
    "joinCselAselB (key attributes)": {
        10_000: {"teradata": 23.8, "gamma": 7.2},
        100_000: {"teradata": 156.7, "gamma": 37.4},
        1_000_000: {"teradata": 1509.6, "gamma": 712.8},
    },
}

#: Table 3 — update queries, execution time in seconds.
TABLE3_UPDATES: dict[str, dict[int, dict[str, float | None]]] = {
    "append 1 tuple (no indices)": {
        10_000: {"teradata": 0.87, "gamma": 0.18},
        100_000: {"teradata": 1.29, "gamma": 0.18},
        1_000_000: {"teradata": 1.47, "gamma": 0.20},
    },
    "append 1 tuple (one index)": {
        10_000: {"teradata": 0.94, "gamma": 0.60},
        100_000: {"teradata": 1.62, "gamma": 0.63},
        1_000_000: {"teradata": 1.73, "gamma": 0.66},
    },
    "delete 1 tuple": {
        10_000: {"teradata": 0.71, "gamma": 0.44},
        100_000: {"teradata": 0.42, "gamma": 0.56},
        1_000_000: {"teradata": 0.71, "gamma": 0.61},
    },
    "modify 1 tuple (key attribute)": {
        10_000: {"teradata": 2.62, "gamma": 1.01},
        100_000: {"teradata": 2.99, "gamma": 0.86},
        1_000_000: {"teradata": 4.82, "gamma": 1.13},
    },
    "modify 1 tuple (non-indexed attribute)": {
        10_000: {"teradata": 0.49, "gamma": 0.36},
        100_000: {"teradata": 0.90, "gamma": 0.36},
        1_000_000: {"teradata": 1.12, "gamma": 0.36},
    },
    "modify 1 tuple (non-clustered index attribute)": {
        10_000: {"teradata": 0.84, "gamma": 0.50},
        100_000: {"teradata": 1.16, "gamma": 0.46},
        1_000_000: {"teradata": 3.72, "gamma": 0.52},
    },
}

#: Figures 1-15 publish curves, not numbers; these are the claims the
#: benchmarks verify (quotes/paraphrases from Sections 5-6).
FIGURE_CLAIMS: dict[str, list[str]] = {
    "fig1-2": [
        "response time decreases as processors are added",
        "almost linear speedup is obtained for all three queries",
        "the 10% curve lags the 0%/1% curves (network-interface path)",
    ],
    "fig3-4": [
        "0% indexed selection slows down as processors are added"
        " (0.25s at 1 processor vs 0.58s at 8)",
        "1% non-clustered index selection comes close to linear speedup",
        "clustered-index selections speed up sub-linearly",
    ],
    "fig5-6": [
        "at 2 KB pages the system is disk bound; by 16 KB it is CPU bound",
        "beyond 8 KB pages the response changes little",
        "larger pages widen the 10%-vs-0% gap (network interface)",
    ],
    "fig7-8": [
        "any page-size increase degrades the 1% non-clustered selection",
        "the 10% clustered selection keeps improving with page size",
        "the 1% clustered selection worsens slightly from 16 KB to 32 KB",
    ],
    "fig9-12": [
        "key-attribute joins: Local fastest, then Allnodes, then Remote",
        "non-key joins: Remote fastest, then Allnodes, then Local",
        "near-linear speedup from the 2-processor reference point",
    ],
    "fig13": [
        "response deteriorates rapidly as memory shrinks (Simple hash)",
        "flat from zero to two overflows",
        "Local and Remote curves cross after the first overflow"
        " (the overflow hash function ignores the partitioning attribute)",
    ],
    "fig14-15": [
        "larger pages reduce joinAselB response time",
        "the improvement levels off at 16 KB pages",
    ],
}

#: The paper's own summary of the million-tuple join pathology.
OVERFLOW_CLAIM = (
    "the computation of the million tuple join queries required six"
    " partition overflow resolutions on each of the diskless processors"
)
