"""Declarative experiment matrix: grids of configs, run once, stored.

The paper's evidence is a grid — machine × relation size × page size ×
index organisation × MPL × skew — and every benchmark in this repo is a
slice of it.  This module replaces the per-figure ad-hoc sweep loops
with three small objects:

* :class:`Axis` — one named dimension and its values.
* :class:`Grid` — the cartesian product of axes over a base config,
  with an optional ``derive`` hook for fields computed from the whole
  grid (e.g. "trace the widest configuration").
* :class:`ExperimentSpec` — a named, versioned experiment: a grid
  builder, a picklable **point function** (config dict in, JSON-safe
  result out), and a **summarise** function that folds the per-point
  results into a :class:`~repro.bench.reporting.Report` (optionally
  plus a JSON profile artifact).

:func:`run_experiment` ties them to the persistent
:class:`~repro.bench.store.ResultStore`: every grid point already in
the store is *not* re-executed (resume), missing points fan out through
:func:`~repro.bench.sweep.run_sweep`, fresh results are appended, and
the report is summarised from stored results — so a warm store
regenerates every table byte-identically while executing zero points.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Union

from ..errors import BenchmarkError
from .reporting import Report
from .store import Record, ResultStore
from .sweep import run_sweep

#: What a summarise function may return: the report alone, or the
#: report plus a JSON-serialisable profile written as ``<name>.json``.
Summary = Union[Report, tuple[Report, dict[str, Any]]]


@dataclass(frozen=True)
class Axis:
    """One swept dimension: a name and its ordered values."""

    name: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise BenchmarkError("axis needs a name")
        if not self.values:
            raise BenchmarkError(f"axis {self.name!r} needs at least one value")


@dataclass(frozen=True)
class Grid:
    """A config grid: base fields × the cartesian product of the axes.

    ``derive`` (optional) maps each raw point dict to its final config —
    the place for fields that depend on the whole grid, like "profile
    only the widest configuration".  Derived fields are part of the
    config (and so of its store key): the point function stays a pure
    function of its config dict.
    """

    axes: tuple[Axis, ...]
    base: dict[str, Any] = field(default_factory=dict)
    derive: Optional[Callable[[dict[str, Any]], dict[str, Any]]] = None

    def __post_init__(self) -> None:
        names = [axis.name for axis in self.axes]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise BenchmarkError(f"duplicate axes: {sorted(dupes)}")
        clashes = set(names) & set(self.base)
        if clashes:
            raise BenchmarkError(
                f"axes shadow base fields: {sorted(clashes)}"
            )

    def points(self) -> list[dict[str, Any]]:
        """Every config dict, in axis-major (row-major) order."""
        out: list[dict[str, Any]] = []
        for combo in itertools.product(*(a.values for a in self.axes)):
            config = dict(self.base)
            config.update(zip((a.name for a in self.axes), combo))
            if self.derive is not None:
                config = self.derive(config)
            out.append(config)
        return out

    def axis(self, name: str) -> Axis:
        for ax in self.axes:
            if ax.name == name:
                return ax
        raise BenchmarkError(f"no axis named {name!r}")


@dataclass(frozen=True)
class ExperimentSpec:
    """One named, versioned experiment over a config grid.

    Attributes:
        name: Store/report id, e.g. ``fig05_06_pagesize_select``.
        label: EXPERIMENTS.md section label, e.g. ``Figures 5-6``.
        kind: ``table`` / ``figure`` / ``ablation`` / ``extension``.
        grid: ``grid(**overrides) -> Grid`` — overrides are the
            experiment's tunable parameters (sizes, site counts, …);
            defaults reproduce the committed full-scale reports.
        point: Module-level picklable function, config dict → JSON-safe
            result (it crosses a process boundary under ``run_sweep``).
        summarise: ``summarise(grid, results) -> Report | (Report,
            profile)`` with ``results`` aligned to ``grid.points()``.
        version: Code-version tag.  Bump when the point function's
            semantics change: stored runs of older versions stop
            matching and the grid re-executes.
    """

    name: str
    label: str
    kind: str
    grid: Callable[..., Grid]
    point: Callable[[dict[str, Any]], Any]
    summarise: Callable[[Grid, list[Any]], Summary]
    version: str = "v1"


@dataclass
class MatrixRun:
    """Outcome of one :func:`run_experiment` invocation."""

    spec: ExperimentSpec
    grid: Grid
    report: Report
    profile: Optional[dict[str, Any]]
    records: list[Optional[Record]]
    executed: int
    cached: int

    @property
    def total(self) -> int:
        return self.executed + self.cached


def _timed_point(
    point: Callable[[dict[str, Any]], Any], config: dict[str, Any]
) -> tuple[float, Any]:
    """Wrapper run in sweep workers: wall-clock the point function.

    Module-level (with the point function as data) so the pair stays
    picklable for :func:`run_sweep`'s process pool.
    """
    start = time.perf_counter()
    result = point(config)
    return time.perf_counter() - start, result


def run_experiment(
    spec: ExperimentSpec,
    store: Optional[ResultStore] = None,
    *,
    force: bool = False,
    jobs: Optional[int] = None,
    **overrides: Any,
) -> MatrixRun:
    """Run (or resume) one experiment's grid and summarise its report.

    With a ``store``, grid points whose ``(name, version, config-hash)``
    key is already present are **not** re-executed — their stored
    results feed the summary directly.  ``force=True`` re-executes every
    point and replaces the stored records.  Without a ``store`` the grid
    always runs fully in-memory (toy-scale tests, exploratory calls).

    ``overrides`` are forwarded to ``spec.grid``; note that non-default
    parameters change the configs and therefore the store keys, so a
    toy-scale run never collides with the committed full-scale results.
    """
    import functools

    grid = spec.grid(**overrides)
    configs = grid.points()
    hits: list[Optional[Record]] = [None] * len(configs)
    if store is not None and not force:
        for i, config in enumerate(configs):
            hits[i] = store.get(spec.name, spec.version, config)
    missing = [i for i, hit in enumerate(hits) if hit is None]

    outcomes = run_sweep(
        functools.partial(_timed_point, spec.point),
        [configs[i] for i in missing],
        jobs=jobs,
    )
    results: list[Any] = [
        None if hit is None else hit.result for hit in hits
    ]
    for i, (wall_s, result) in zip(missing, outcomes):
        results[i] = result
        if store is not None:
            hits[i] = store.append(
                spec.name, spec.version, configs[i], result,
                wall_s=wall_s, replace=force,
            )

    summary = spec.summarise(grid, results)
    if isinstance(summary, tuple):
        report, profile = summary
    else:
        report, profile = summary, None
    return MatrixRun(
        spec=spec, grid=grid, report=report, profile=profile,
        records=hits, executed=len(missing), cached=len(configs) - len(missing),
    )
