"""Ablation experiments for the design choices DESIGN.md calls out.

* **A1** — bit-vector filters in split tables (Section 2 mentions the
  optimizer can insert them; the paper never quantifies the gain).
* **A2** — Simple vs Hybrid hash join under memory pressure (the
  Conclusions announce the Hybrid replacement; this measures why).
* **A3** — the Conclusions' recommendation to raise the default page size
  from 4 KB to 8 KB, evaluated over a mixed query set.
* **E1** — the multiuser experiment the paper defers ("The validity of
  this expectation will be determined in future multiuser benchmarks"):
  does off-loading joins to the diskless processors leave the disk sites
  capacity for concurrent selections?
* **E2** — the recovery server the Conclusions announce: write-ahead
  logging overhead on bulk stores and single-tuple appends.

Like :mod:`.experiments`, each is an :class:`~repro.bench.matrix.
ExperimentSpec` — a grid, a picklable point function, and a summarise
function — with the old ``*_experiment`` call signatures kept as thin
wrappers.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Sequence

from ..engine import JoinMode, Query
from ..engine.plan import RangePredicate, ScanNode
from ..hardware import KB, GammaConfig
from ..workloads import selection_range
from ..workloads.queries import join_abprime, join_aselb, selection_query
from .harness import build_gamma, run_stored
from .matrix import Axis, ExperimentSpec, Grid, run_experiment
from .recorded import TABLE1_SELECTIONS
from .reporting import Report


# ---------------------------------------------------------------------------
# A1 — bit-vector filters
# ---------------------------------------------------------------------------

def _a1_point(config: dict[str, Any]) -> dict[str, Any]:
    """Grid point: joinABprime with filters on or off (picklable)."""
    n, use = config["n"], config["filters"]
    machine_config = replace(
        GammaConfig.paper_default(), use_bit_filters=use
    )
    machine = build_gamma(
        machine_config,
        relations=[("A", n, "heap"), ("Bp", n // 10, "heap")],
    )
    result = run_stored(
        machine,
        lambda into: join_abprime("A", "Bp", key=False, into=into),
    )
    return {
        "response": result.response_time,
        "shipped": result.stats.get("tuples_shipped", 0),
        "count": result.result_count,
    }


def _a1_grid(n: int = 100_000) -> Grid:
    return Grid(axes=(Axis("filters", (False, True)),), base={"n": n})


def _a1_summarise(grid: Grid, results: list[Any]) -> Report:
    n = grid.base["n"]
    report = Report(
        name="ablation_a1_bitfilter",
        title=f"Ablation A1 — bit-vector filters, joinABprime on {n:,}",
        columns=["filters", "response (s)", "tuples shipped",
                 "tuples dropped at scan"],
    )
    points = {
        config["filters"]: point
        for config, point in zip(grid.points(), results)
    }
    for use in (False, True):
        point = points[use]
        report.add_row(
            "on" if use else "off",
            point["response"],
            point["shipped"],
            "n/a" if not use else point["shipped"],
        )
    report.check(
        "filters never change the answer",
        points[False]["count"] == points[True]["count"],
    )
    report.check(
        "filters cut shipped probe tuples by more than 2x",
        points[True]["shipped"] < points[False]["shipped"] / 2,
    )
    report.check(
        "filters reduce response time",
        points[True]["response"] < points[False]["response"],
    )
    return report


ABLATION_A1_SPEC = ExperimentSpec(
    name="ablation_a1_bitfilter", label="Ablation A1", kind="ablation",
    grid=_a1_grid, point=_a1_point, summarise=_a1_summarise,
)


def ablation_bitfilter_experiment(n: int = 100_000, **matrix: Any) -> Report:
    """A1: joinAselB with and without bit-vector filters."""
    return run_experiment(ABLATION_A1_SPEC, n=n, **matrix).report


# ---------------------------------------------------------------------------
# A2 — Simple vs Hybrid hash join
# ---------------------------------------------------------------------------

def _a2_point(config: dict[str, Any]) -> float:
    """Grid point: one (memory ratio, algorithm) cell (picklable)."""
    n, ratio, algorithm = config["n"], config["ratio"], config["algorithm"]
    base = GammaConfig.paper_default()
    smaller_bytes = (n // 10) * 208 * base.hash_table_overhead
    machine_config = replace(
        base.with_join_memory(max(64 * KB, int(ratio * smaller_bytes))),
        join_algorithm=algorithm,
    )
    machine = build_gamma(
        machine_config,
        relations=[("A", n, "heap"), ("Bp", n // 10, "heap")],
    )
    return run_stored(
        machine,
        lambda into: join_abprime(
            "A", "Bp", key=False, mode=JoinMode.REMOTE, into=into),
    ).response_time


def _a2_grid(
    n: int = 100_000,
    memory_ratios: Sequence[float] = (1.2, 0.8, 0.45, 0.2),
) -> Grid:
    return Grid(
        axes=(
            Axis("ratio", tuple(memory_ratios)),
            Axis("algorithm", ("simple", "hybrid")),
        ),
        base={"n": n},
    )


def _a2_summarise(grid: Grid, results: list[Any]) -> Report:
    n = grid.base["n"]
    memory_ratios = grid.axis("ratio").values
    report = Report(
        name="ablation_a2_hybrid_join",
        title=f"Ablation A2 — Simple vs Hybrid hash join,"
              f" joinABprime on {n:,} under memory pressure",
        columns=["memory/|Bprime|", "simple (s)", "hybrid (s)", "hybrid gain"],
    )
    times: dict[tuple[str, float], float] = {
        (config["algorithm"], config["ratio"]): response
        for config, response in zip(grid.points(), results)
    }
    for ratio in memory_ratios:
        simple = times[("simple", ratio)]
        hybrid = times[("hybrid", ratio)]
        report.add_row(ratio, simple, hybrid, simple / hybrid)

    high, low = max(memory_ratios), min(memory_ratios)
    report.check(
        "identical when memory suffices",
        abs(times[("simple", high)] - times[("hybrid", high)])
        < 0.05 * times[("simple", high)],
    )
    report.check(
        "hybrid degrades far more gracefully at the deepest shortfall"
        " (>= 1.8x faster than Simple)",
        times[("simple", low)] > 1.8 * times[("hybrid", low)],
    )
    report.check(
        "hybrid's own degradation is modest (< 3x from full memory)",
        times[("hybrid", low)] < 3.0 * times[("hybrid", high)],
    )
    return report


ABLATION_A2_SPEC = ExperimentSpec(
    name="ablation_a2_hybrid_join", label="Ablation A2", kind="ablation",
    grid=_a2_grid, point=_a2_point, summarise=_a2_summarise,
)


def ablation_hybrid_join_experiment(
    n: int = 100_000,
    memory_ratios: Sequence[float] = (1.2, 0.8, 0.45, 0.2),
    **matrix: Any,
) -> Report:
    """A2: re-run the Figure 13 sweep with the Hybrid hash join."""
    return run_experiment(
        ABLATION_A2_SPEC, n=n, memory_ratios=memory_ratios, **matrix,
    ).report


# ---------------------------------------------------------------------------
# A3 — default page size
# ---------------------------------------------------------------------------

_A3_QUERY_LABELS = (
    "10% file scan", "1% non-clustered index", "1% clustered index",
    "joinAselB",
)


def _a3_point(config: dict[str, Any]) -> dict[str, float]:
    """Grid point: the mixed query set at one page size (picklable)."""
    n, kb = config["n"], config["page_kb"]
    machine_config = GammaConfig.paper_default().with_page_size(kb * KB)
    machine = build_gamma(
        machine_config,
        relations=[
            ("heap", n, "heap"), ("idx", n, "indexed"), ("B", n, "heap"),
        ],
    )
    runs = {
        "10% file scan": lambda into: selection_query(
            "heap", n, 0.10, into=into),
        "1% non-clustered index": lambda into: selection_query(
            "idx", n, 0.01, into=into),
        "1% clustered index": lambda into: selection_query(
            "idx", n, 0.01, attr="unique1", into=into),
        "joinAselB": lambda into: join_aselb("heap", "B", n, key=False,
                                             into=into),
    }
    return {
        label: run_stored(machine, builder).response_time
        for label, builder in runs.items()
    }


def _a3_grid(n: int = 100_000) -> Grid:
    return Grid(axes=(Axis("page_kb", (4, 8, 32)),), base={"n": n})


def _a3_summarise(grid: Grid, results: list[Any]) -> Report:
    n = grid.base["n"]
    page_sizes = grid.axis("page_kb").values
    report = Report(
        name="ablation_a3_pagesize_default",
        title=f"Ablation A3 — default page size (mixed workload, {n:,})",
        columns=["query", "4 KB (s)", "8 KB (s)", "32 KB (s)"],
    )
    times: dict[tuple[str, int], float] = {}
    for config, ptimes in zip(grid.points(), results):
        for label, response in ptimes.items():
            times[(label, config["page_kb"])] = response
    total = {kb: 0.0 for kb in page_sizes}
    for label in _A3_QUERY_LABELS:
        report.add_row(label, times[(label, 4)], times[(label, 8)],
                       times[(label, 32)])
        for kb in page_sizes:
            total[kb] += times[(label, kb)]
    report.add_row("TOTAL", total[4], total[8], total[32])
    report.check(
        "8 KB beats 4 KB on the mixed workload",
        total[8] < total[4],
    )
    report.check(
        "track-sized (32 KB) pages hurt the non-clustered index query",
        times[("1% non-clustered index", 32)]
        > times[("1% non-clustered index", 8)],
    )
    report.check(
        "8 KB is the best (or tied-best) overall default",
        total[8] <= min(total.values()) * 1.02,
    )
    return report


ABLATION_A3_SPEC = ExperimentSpec(
    name="ablation_a3_pagesize_default", label="Ablation A3",
    kind="ablation", grid=_a3_grid, point=_a3_point,
    summarise=_a3_summarise,
)


def ablation_default_page_size_experiment(
    n: int = 100_000, **matrix: Any
) -> Report:
    """A3: 4 KB vs 8 KB default pages over a mixed query set.

    The Conclusions: "we should increase the default page size from 4 to 8
    Kbytes.  While increasing the page size beyond 8 Kbytes provides slight
    improvement for some queries, the impact on queries that use indices
    (in particular, non-clustered indices) is very negative."
    """
    return run_experiment(ABLATION_A3_SPEC, n=n, **matrix).report


# ---------------------------------------------------------------------------
# E1 — multiuser off-loading
# ---------------------------------------------------------------------------

def _e1_point(config: dict[str, Any]) -> dict[str, Any]:
    """Grid point: solo selection, or a join+selection pair (picklable)."""
    n, mode = config["n"], config["mode"]
    relations = [
        ("A", n, "heap"), ("Bp", n // 10, "heap"), ("S", n, "heap"),
    ]
    sel_range = selection_range(n, 0.10)
    sel_pred = RangePredicate(sel_range.attr, sel_range.low, sel_range.high)
    machine = build_gamma(relations=relations)
    if mode == "solo":
        solo = machine.run(Query.select("S", sel_pred, into="solo"))
        return {"selection": solo.response_time}
    join_result, sel_result = machine.run_concurrent([
        Query.join(ScanNode("Bp"), ScanNode("A"),
                   on=("unique2", "unique2"), mode=JoinMode(mode), into="j"),
        Query.select("S", sel_pred, into="s"),
    ])
    return {
        "join": join_result.response_time,
        "selection": sel_result.response_time,
        "join_count": join_result.result_count,
        "selection_count": sel_result.result_count,
    }


def _e1_grid(n: int = 50_000) -> Grid:
    return Grid(
        axes=(Axis("mode", ("solo", "local", "remote")),), base={"n": n},
    )


def _e1_summarise(grid: Grid, results: list[Any]) -> Report:
    n = grid.base["n"]
    report = Report(
        name="extension_e1_multiuser",
        title=f"Extension E1 — multiuser off-loading"
              f" (joinABprime + concurrent 10% selection, {n:,} tuples)",
        columns=["join mode", "join (s)", "concurrent selection (s)",
                 "selection alone (s)"],
    )
    points = {
        config["mode"]: point
        for config, point in zip(grid.points(), results)
    }
    solo_time = points["solo"]["selection"]
    for mode in ("local", "remote"):
        report.add_row(mode, points[mode]["join"],
                       points[mode]["selection"], solo_time)

    report.check(
        "the concurrent selection finishes sooner when the join runs on"
        " the diskless processors (Remote off-loading)",
        points["remote"]["selection"] < points["local"]["selection"],
    )
    report.check(
        "contention is real: the concurrent selection is slower than solo",
        points["remote"]["selection"] > solo_time,
    )
    report.check(
        "both queries still complete correctly",
        points["remote"]["join_count"] == n // 10
        and points["remote"]["selection_count"] == n // 10,
    )
    return report


EXTENSION_E1_SPEC = ExperimentSpec(
    name="extension_e1_multiuser", label="Extension E1", kind="extension",
    grid=_e1_grid, point=_e1_point, summarise=_e1_summarise,
)


def multiuser_offloading_experiment(n: int = 50_000, **matrix: Any) -> Report:
    """E1: the deferred multiuser benchmark — Remote-join off-loading.

    A joinABprime and an independent 10% selection are submitted
    together; the join's placement is varied.  The paper's expectation:
    "offloading the join operators to remote processors will allow the
    processors with disks to effectively support more concurrent
    selection and store operators."
    """
    return run_experiment(EXTENSION_E1_SPEC, n=n, **matrix).report


# ---------------------------------------------------------------------------
# E2 — recovery server
# ---------------------------------------------------------------------------

def _e2_point(config: dict[str, Any]) -> dict[str, Any]:
    """Grid point: bulk store + append, logging on or off (picklable)."""
    from ..engine.plan import AppendTuple
    from ..workloads import generate_tuples

    n, logging = config["n"], config["logging"]
    machine_config = replace(
        GammaConfig.paper_default(), use_recovery_server=logging
    )
    machine = build_gamma(machine_config, relations=[("r", n, "heap")])
    stored = run_stored(
        machine, lambda into: selection_query("r", n, 0.10, into=into)
    )
    record = (n + 5, n + 5) + next(iter(generate_tuples(1, seed=3)))[2:]
    append = machine.update(AppendTuple("r", record))
    return {
        "bulk": stored.response_time,
        "append": append.response_time,
        "log_records": stored.stats.get("log_records", 0),
    }


def _e2_grid(n: int = 50_000) -> Grid:
    return Grid(axes=(Axis("logging", (False, True)),), base={"n": n})


def _e2_summarise(grid: Grid, results: list[Any]) -> Report:
    n = grid.base["n"]
    report = Report(
        name="extension_e2_recovery",
        title=f"Extension E2 — recovery server overhead ({n:,} tuples)",
        columns=["operation", "no logging (s)", "with logging (s)",
                 "overhead"],
    )
    points = {
        config["logging"]: point
        for config, point in zip(grid.points(), results)
    }
    times = {
        ("bulk store (10% retrieve into)", logging): points[logging]["bulk"]
        for logging in (False, True)
    }
    times.update({
        ("single-tuple append", logging): points[logging]["append"]
        for logging in (False, True)
    })
    for label in ("bulk store (10% retrieve into)", "single-tuple append"):
        off = times[(label, False)]
        on = times[(label, True)]
        report.add_row(label, off, on, f"{(on / off - 1) * 100:.0f}%")

    report.check(
        "logging ships one record per stored tuple",
        points[True]["log_records"] == round(0.10 * n),
    )
    report.check(
        "group commit keeps bulk-store overhead under 2x",
        times[("bulk store (10% retrieve into)", True)]
        < 2.0 * times[("bulk store (10% retrieve into)", False)],
    )
    report.check(
        "single-tuple appends pay a log force but stay cheap (< 50% over)",
        times[("single-tuple append", True)]
        < 1.5 * times[("single-tuple append", False)],
    )
    report.check(
        "Gamma with logging still beats Teradata's logged path",
        times[("bulk store (10% retrieve into)", True)]
        < TABLE1_SELECTIONS["10% nonindexed selection"][100_000]["teradata"]
        * n / 100_000,
    )
    return report


EXTENSION_E2_SPEC = ExperimentSpec(
    name="extension_e2_recovery", label="Extension E2", kind="extension",
    grid=_e2_grid, point=_e2_point, summarise=_e2_summarise,
)


def recovery_server_experiment(n: int = 50_000, **matrix: Any) -> Report:
    """E2: the recovery server the Conclusions announce.

    Measures the write-ahead logging overhead the server adds to a bulk
    ``retrieve into`` and to a single-tuple append.
    """
    return run_experiment(EXTENSION_E2_SPEC, n=n, **matrix).report
