"""Ablation experiments for the design choices DESIGN.md calls out.

* **A1** — bit-vector filters in split tables (Section 2 mentions the
  optimizer can insert them; the paper never quantifies the gain).
* **A2** — Simple vs Hybrid hash join under memory pressure (the
  Conclusions announce the Hybrid replacement; this measures why).
* **A3** — the Conclusions' recommendation to raise the default page size
  from 4 KB to 8 KB, evaluated over a mixed query set.
* **E1** — the multiuser experiment the paper defers ("The validity of
  this expectation will be determined in future multiuser benchmarks"):
  does off-loading joins to the diskless processors leave the disk sites
  capacity for concurrent selections?
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..engine import JoinMode, Query
from ..engine.plan import RangePredicate, ScanNode
from ..hardware import KB, GammaConfig
from ..workloads import selection_range
from ..workloads.queries import join_abprime, join_aselb, selection_query
from .harness import build_gamma, run_stored
from .recorded import TABLE1_SELECTIONS
from .reporting import Report


def ablation_bitfilter_experiment(n: int = 100_000) -> Report:
    """A1: joinAselB with and without bit-vector filters."""
    report = Report(
        name="ablation_a1_bitfilter",
        title=f"Ablation A1 — bit-vector filters, joinABprime on {n:,}",
        columns=["filters", "response (s)", "tuples shipped",
                 "tuples dropped at scan"],
    )
    results = {}
    for use in (False, True):
        config = replace(GammaConfig.paper_default(), use_bit_filters=use)
        machine = build_gamma(
            config, relations=[("A", n, "heap"), ("Bp", n // 10, "heap")],
        )
        result = run_stored(
            machine,
            lambda into: join_abprime("A", "Bp", key=False, into=into),
        )
        results[use] = result
        report.add_row(
            "on" if use else "off",
            result.response_time,
            result.stats.get("tuples_shipped", 0),
            "n/a" if not use else result.stats.get("tuples_shipped", 0),
        )
    report.check(
        "filters never change the answer",
        results[False].result_count == results[True].result_count,
    )
    report.check(
        "filters cut shipped probe tuples by more than 2x",
        results[True].stats["tuples_shipped"]
        < results[False].stats["tuples_shipped"] / 2,
    )
    report.check(
        "filters reduce response time",
        results[True].response_time < results[False].response_time,
    )
    return report


def ablation_hybrid_join_experiment(
    n: int = 100_000,
    memory_ratios: Sequence[float] = (1.2, 0.8, 0.45, 0.2),
) -> Report:
    """A2: re-run the Figure 13 sweep with the Hybrid hash join."""
    report = Report(
        name="ablation_a2_hybrid_join",
        title=f"Ablation A2 — Simple vs Hybrid hash join,"
              f" joinABprime on {n:,} under memory pressure",
        columns=["memory/|Bprime|", "simple (s)", "hybrid (s)", "hybrid gain"],
    )
    base = GammaConfig.paper_default()
    smaller_bytes = (n // 10) * 208 * base.hash_table_overhead
    times: dict[tuple[str, float], float] = {}
    for ratio in memory_ratios:
        for algorithm in ("simple", "hybrid"):
            config = replace(
                base.with_join_memory(max(64 * KB, int(ratio * smaller_bytes))),
                join_algorithm=algorithm,
            )
            machine = build_gamma(
                config,
                relations=[("A", n, "heap"), ("Bp", n // 10, "heap")],
            )
            result = run_stored(
                machine,
                lambda into: join_abprime(
                    "A", "Bp", key=False, mode=JoinMode.REMOTE, into=into),
            )
            times[(algorithm, ratio)] = result.response_time
    for ratio in memory_ratios:
        simple = times[("simple", ratio)]
        hybrid = times[("hybrid", ratio)]
        report.add_row(ratio, simple, hybrid, simple / hybrid)

    high, low = max(memory_ratios), min(memory_ratios)
    report.check(
        "identical when memory suffices",
        abs(times[("simple", high)] - times[("hybrid", high)])
        < 0.05 * times[("simple", high)],
    )
    report.check(
        "hybrid degrades far more gracefully at the deepest shortfall"
        " (>= 1.8x faster than Simple)",
        times[("simple", low)] > 1.8 * times[("hybrid", low)],
    )
    report.check(
        "hybrid's own degradation is modest (< 3x from full memory)",
        times[("hybrid", low)] < 3.0 * times[("hybrid", high)],
    )
    return report


def ablation_default_page_size_experiment(n: int = 100_000) -> Report:
    """A3: 4 KB vs 8 KB default pages over a mixed query set.

    The Conclusions: "we should increase the default page size from 4 to 8
    Kbytes.  While increasing the page size beyond 8 Kbytes provides slight
    improvement for some queries, the impact on queries that use indices
    (in particular, non-clustered indices) is very negative."
    """
    report = Report(
        name="ablation_a3_pagesize_default",
        title=f"Ablation A3 — default page size (mixed workload, {n:,})",
        columns=["query", "4 KB (s)", "8 KB (s)", "32 KB (s)"],
    )
    times: dict[tuple[str, int], float] = {}
    for kb in (4, 8, 32):
        config = GammaConfig.paper_default().with_page_size(kb * KB)
        machine = build_gamma(
            config,
            relations=[
                ("heap", n, "heap"), ("idx", n, "indexed"),
                ("B", n, "heap"),
            ],
        )
        runs = {
            "10% file scan": lambda into: selection_query(
                "heap", n, 0.10, into=into),
            "1% non-clustered index": lambda into: selection_query(
                "idx", n, 0.01, into=into),
            "1% clustered index": lambda into: selection_query(
                "idx", n, 0.01, attr="unique1", into=into),
            "joinAselB": lambda into: join_aselb("heap", "B", n, key=False,
                                                 into=into),
        }
        for label, builder in runs.items():
            times[(label, kb)] = run_stored(machine, builder).response_time
    total = {kb: 0.0 for kb in (4, 8, 32)}
    for label in ("10% file scan", "1% non-clustered index",
                  "1% clustered index", "joinAselB"):
        report.add_row(label, times[(label, 4)], times[(label, 8)],
                       times[(label, 32)])
        for kb in (4, 8, 32):
            total[kb] += times[(label, kb)]
    report.add_row("TOTAL", total[4], total[8], total[32])
    report.check(
        "8 KB beats 4 KB on the mixed workload",
        total[8] < total[4],
    )
    report.check(
        "track-sized (32 KB) pages hurt the non-clustered index query",
        times[("1% non-clustered index", 32)]
        > times[("1% non-clustered index", 8)],
    )
    report.check(
        "8 KB is the best (or tied-best) overall default",
        total[8] <= min(total.values()) * 1.02,
    )
    return report


def multiuser_offloading_experiment(n: int = 50_000) -> Report:
    """E1: the deferred multiuser benchmark — Remote-join off-loading.

    A joinABprime and an independent 10% selection are submitted
    together; the join's placement is varied.  The paper's expectation:
    "offloading the join operators to remote processors will allow the
    processors with disks to effectively support more concurrent
    selection and store operators."
    """
    report = Report(
        name="extension_e1_multiuser",
        title=f"Extension E1 — multiuser off-loading"
              f" (joinABprime + concurrent 10% selection, {n:,} tuples)",
        columns=["join mode", "join (s)", "concurrent selection (s)",
                 "selection alone (s)"],
    )

    def relations():
        return [
            ("A", n, "heap"), ("Bp", n // 10, "heap"), ("S", n, "heap"),
        ]

    sel_range = selection_range(n, 0.10)
    sel_pred = RangePredicate(sel_range.attr, sel_range.low, sel_range.high)
    solo = build_gamma(relations=relations()).run(
        Query.select("S", sel_pred, into="solo")
    )
    results = {}
    for mode in (JoinMode.LOCAL, JoinMode.REMOTE):
        machine = build_gamma(relations=relations())
        join_result, sel_result = machine.run_concurrent([
            Query.join(ScanNode("Bp"), ScanNode("A"),
                       on=("unique2", "unique2"), mode=mode, into="j"),
            Query.select("S", sel_pred, into="s"),
        ])
        results[mode] = (join_result, sel_result)
        report.add_row(mode.value, join_result.response_time,
                       sel_result.response_time, solo.response_time)

    report.check(
        "the concurrent selection finishes sooner when the join runs on"
        " the diskless processors (Remote off-loading)",
        results[JoinMode.REMOTE][1].response_time
        < results[JoinMode.LOCAL][1].response_time,
    )
    report.check(
        "contention is real: the concurrent selection is slower than solo",
        results[JoinMode.REMOTE][1].response_time > solo.response_time,
    )
    report.check(
        "both queries still complete correctly",
        results[JoinMode.REMOTE][0].result_count == n // 10
        and results[JoinMode.REMOTE][1].result_count == n // 10,
    )
    return report


def recovery_server_experiment(n: int = 50_000) -> Report:
    """E2: the recovery server the Conclusions announce.

    Measures the write-ahead logging overhead the server adds to a bulk
    ``retrieve into`` and to a single-tuple append.
    """
    from ..engine.plan import AppendTuple
    from ..workloads import generate_tuples

    report = Report(
        name="extension_e2_recovery",
        title=f"Extension E2 — recovery server overhead ({n:,} tuples)",
        columns=["operation", "no logging (s)", "with logging (s)",
                 "overhead"],
    )
    times: dict[tuple[str, bool], float] = {}
    log_stats = {}
    for logging in (False, True):
        config = replace(
            GammaConfig.paper_default(), use_recovery_server=logging
        )
        machine = build_gamma(config, relations=[("r", n, "heap")])
        stored = run_stored(
            machine, lambda into: selection_query("r", n, 0.10, into=into)
        )
        times[("bulk store (10% retrieve into)", logging)] = (
            stored.response_time
        )
        if logging:
            log_stats = stored.stats
        record = (n + 5, n + 5) + next(iter(generate_tuples(1, seed=3)))[2:]
        times[("single-tuple append", logging)] = machine.update(
            AppendTuple("r", record)
        ).response_time
    for label in ("bulk store (10% retrieve into)", "single-tuple append"):
        off = times[(label, False)]
        on = times[(label, True)]
        report.add_row(label, off, on, f"{(on / off - 1) * 100:.0f}%")

    report.check(
        "logging ships one record per stored tuple",
        log_stats.get("log_records", 0) == round(0.10 * n),
    )
    report.check(
        "group commit keeps bulk-store overhead under 2x",
        times[("bulk store (10% retrieve into)", True)]
        < 2.0 * times[("bulk store (10% retrieve into)", False)],
    )
    report.check(
        "single-tuple appends pay a log force but stay cheap (< 50% over)",
        times[("single-tuple append", True)]
        < 1.5 * times[("single-tuple append", False)],
    )
    report.check(
        "Gamma with logging still beats Teradata's logged path",
        times[("bulk store (10% retrieve into)", True)]
        < TABLE1_SELECTIONS["10% nonindexed selection"][100_000]["teradata"]
        * n / 100_000,
    )
    return report
