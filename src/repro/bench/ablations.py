"""Ablation experiments for the design choices DESIGN.md calls out.

* **A1** — bit-vector filters in split tables (Section 2 mentions the
  optimizer can insert them; the paper never quantifies the gain).
* **A2** — Simple vs Hybrid hash join under memory pressure (the
  Conclusions announce the Hybrid replacement; this measures why).
* **A3** — the Conclusions' recommendation to raise the default page size
  from 4 KB to 8 KB, evaluated over a mixed query set.
* **A4** — the Hybrid join's spill policies under optimizer estimate
  error: the static plan trusts the (possibly wrong) cardinality
  estimate, ``demote`` reacts to actual build bytes, and ``dynamic``
  starts optimistic and recursively re-partitions.  Sweeps estimate
  error x memory budget x policy x bit-filters.
* **E1** — the multiuser experiment the paper defers ("The validity of
  this expectation will be determined in future multiuser benchmarks"):
  does off-loading joins to the diskless processors leave the disk sites
  capacity for concurrent selections?
* **E2** — the recovery server the Conclusions announce: write-ahead
  logging overhead on bulk stores and single-tuple appends.

Like :mod:`.experiments`, each is an :class:`~repro.bench.matrix.
ExperimentSpec` — a grid, a picklable point function, and a summarise
function — with the old ``*_experiment`` call signatures kept as thin
wrappers.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from typing import Any, Optional, Sequence

from ..engine import JoinMode, Query
from ..engine.plan import RangePredicate, ScanNode
from ..hardware import KB, GammaConfig
from ..metrics import TraceBuffer
from ..workloads import selection_range
from ..workloads.queries import join_abprime, join_aselb, selection_query
from .experiments import bench_profile_enabled
from .harness import build_gamma, run_stored
from .matrix import Axis, ExperimentSpec, Grid, run_experiment
from .recorded import TABLE1_SELECTIONS
from .reporting import Report, results_dir


# ---------------------------------------------------------------------------
# A1 — bit-vector filters
# ---------------------------------------------------------------------------

def _a1_point(config: dict[str, Any]) -> dict[str, Any]:
    """Grid point: joinABprime with filters on or off (picklable)."""
    n, use = config["n"], config["filters"]
    machine_config = replace(
        GammaConfig.paper_default(), use_bit_filters=use
    )
    machine = build_gamma(
        machine_config,
        relations=[("A", n, "heap"), ("Bp", n // 10, "heap")],
    )
    result = run_stored(
        machine,
        lambda into: join_abprime("A", "Bp", key=False, into=into),
    )
    return {
        "response": result.response_time,
        "shipped": result.stats.get("tuples_shipped", 0),
        "count": result.result_count,
    }


def _a1_grid(n: int = 100_000) -> Grid:
    return Grid(axes=(Axis("filters", (False, True)),), base={"n": n})


def _a1_summarise(grid: Grid, results: list[Any]) -> Report:
    n = grid.base["n"]
    report = Report(
        name="ablation_a1_bitfilter",
        title=f"Ablation A1 — bit-vector filters, joinABprime on {n:,}",
        columns=["filters", "response (s)", "tuples shipped",
                 "tuples dropped at scan"],
    )
    points = {
        config["filters"]: point
        for config, point in zip(grid.points(), results)
    }
    for use in (False, True):
        point = points[use]
        report.add_row(
            "on" if use else "off",
            point["response"],
            point["shipped"],
            "n/a" if not use else point["shipped"],
        )
    report.check(
        "filters never change the answer",
        points[False]["count"] == points[True]["count"],
    )
    report.check(
        "filters cut shipped probe tuples by more than 2x",
        points[True]["shipped"] < points[False]["shipped"] / 2,
    )
    report.check(
        "filters reduce response time",
        points[True]["response"] < points[False]["response"],
    )
    return report


ABLATION_A1_SPEC = ExperimentSpec(
    name="ablation_a1_bitfilter", label="Ablation A1", kind="ablation",
    grid=_a1_grid, point=_a1_point, summarise=_a1_summarise,
)


def ablation_bitfilter_experiment(n: int = 100_000, **matrix: Any) -> Report:
    """A1: joinAselB with and without bit-vector filters."""
    return run_experiment(ABLATION_A1_SPEC, n=n, **matrix).report


# ---------------------------------------------------------------------------
# A2 — Simple vs Hybrid hash join
# ---------------------------------------------------------------------------

def _a2_point(config: dict[str, Any]) -> float:
    """Grid point: one (memory ratio, algorithm) cell (picklable)."""
    n, ratio, algorithm = config["n"], config["ratio"], config["algorithm"]
    base = GammaConfig.paper_default()
    smaller_bytes = (n // 10) * 208 * base.hash_table_overhead
    machine_config = replace(
        base.with_join_memory(max(64 * KB, int(ratio * smaller_bytes))),
        join_algorithm=algorithm,
    )
    machine = build_gamma(
        machine_config,
        relations=[("A", n, "heap"), ("Bp", n // 10, "heap")],
    )
    return run_stored(
        machine,
        lambda into: join_abprime(
            "A", "Bp", key=False, mode=JoinMode.REMOTE, into=into),
    ).response_time


def _a2_grid(
    n: int = 100_000,
    memory_ratios: Sequence[float] = (1.2, 0.8, 0.45, 0.2),
) -> Grid:
    return Grid(
        axes=(
            Axis("ratio", tuple(memory_ratios)),
            Axis("algorithm", ("simple", "hybrid")),
        ),
        base={"n": n},
    )


def _a2_summarise(grid: Grid, results: list[Any]) -> Report:
    n = grid.base["n"]
    memory_ratios = grid.axis("ratio").values
    report = Report(
        name="ablation_a2_hybrid_join",
        title=f"Ablation A2 — Simple vs Hybrid hash join,"
              f" joinABprime on {n:,} under memory pressure",
        columns=["memory/|Bprime|", "simple (s)", "hybrid (s)", "hybrid gain"],
    )
    times: dict[tuple[str, float], float] = {
        (config["algorithm"], config["ratio"]): response
        for config, response in zip(grid.points(), results)
    }
    for ratio in memory_ratios:
        simple = times[("simple", ratio)]
        hybrid = times[("hybrid", ratio)]
        report.add_row(ratio, simple, hybrid, simple / hybrid)

    high, low = max(memory_ratios), min(memory_ratios)
    report.check(
        "identical when memory suffices",
        abs(times[("simple", high)] - times[("hybrid", high)])
        < 0.05 * times[("simple", high)],
    )
    report.check(
        "hybrid degrades far more gracefully at the deepest shortfall"
        " (>= 1.8x faster than Simple)",
        times[("simple", low)] > 1.8 * times[("hybrid", low)],
    )
    report.check(
        "hybrid's own degradation is modest (< 3x from full memory)",
        times[("hybrid", low)] < 3.0 * times[("hybrid", high)],
    )
    return report


ABLATION_A2_SPEC = ExperimentSpec(
    name="ablation_a2_hybrid_join", label="Ablation A2", kind="ablation",
    grid=_a2_grid, point=_a2_point, summarise=_a2_summarise,
)


def ablation_hybrid_join_experiment(
    n: int = 100_000,
    memory_ratios: Sequence[float] = (1.2, 0.8, 0.45, 0.2),
    **matrix: Any,
) -> Report:
    """A2: re-run the Figure 13 sweep with the Hybrid hash join."""
    return run_experiment(
        ABLATION_A2_SPEC, n=n, memory_ratios=memory_ratios, **matrix,
    ).report


# ---------------------------------------------------------------------------
# A3 — default page size
# ---------------------------------------------------------------------------

_A3_QUERY_LABELS = (
    "10% file scan", "1% non-clustered index", "1% clustered index",
    "joinAselB",
)


def _a3_point(config: dict[str, Any]) -> dict[str, float]:
    """Grid point: the mixed query set at one page size (picklable)."""
    n, kb = config["n"], config["page_kb"]
    machine_config = GammaConfig.paper_default().with_page_size(kb * KB)
    machine = build_gamma(
        machine_config,
        relations=[
            ("heap", n, "heap"), ("idx", n, "indexed"), ("B", n, "heap"),
        ],
    )
    runs = {
        "10% file scan": lambda into: selection_query(
            "heap", n, 0.10, into=into),
        "1% non-clustered index": lambda into: selection_query(
            "idx", n, 0.01, into=into),
        "1% clustered index": lambda into: selection_query(
            "idx", n, 0.01, attr="unique1", into=into),
        "joinAselB": lambda into: join_aselb("heap", "B", n, key=False,
                                             into=into),
    }
    return {
        label: run_stored(machine, builder).response_time
        for label, builder in runs.items()
    }


def _a3_grid(n: int = 100_000) -> Grid:
    return Grid(axes=(Axis("page_kb", (4, 8, 32)),), base={"n": n})


def _a3_summarise(grid: Grid, results: list[Any]) -> Report:
    n = grid.base["n"]
    page_sizes = grid.axis("page_kb").values
    report = Report(
        name="ablation_a3_pagesize_default",
        title=f"Ablation A3 — default page size (mixed workload, {n:,})",
        columns=["query", "4 KB (s)", "8 KB (s)", "32 KB (s)"],
    )
    times: dict[tuple[str, int], float] = {}
    for config, ptimes in zip(grid.points(), results):
        for label, response in ptimes.items():
            times[(label, config["page_kb"])] = response
    total = {kb: 0.0 for kb in page_sizes}
    for label in _A3_QUERY_LABELS:
        report.add_row(label, times[(label, 4)], times[(label, 8)],
                       times[(label, 32)])
        for kb in page_sizes:
            total[kb] += times[(label, kb)]
    report.add_row("TOTAL", total[4], total[8], total[32])
    report.check(
        "8 KB beats 4 KB on the mixed workload",
        total[8] < total[4],
    )
    report.check(
        "track-sized (32 KB) pages hurt the non-clustered index query",
        times[("1% non-clustered index", 32)]
        > times[("1% non-clustered index", 8)],
    )
    report.check(
        "8 KB is the best (or tied-best) overall default",
        total[8] <= min(total.values()) * 1.02,
    )
    return report


ABLATION_A3_SPEC = ExperimentSpec(
    name="ablation_a3_pagesize_default", label="Ablation A3",
    kind="ablation", grid=_a3_grid, point=_a3_point,
    summarise=_a3_summarise,
)


def ablation_default_page_size_experiment(
    n: int = 100_000, **matrix: Any
) -> Report:
    """A3: 4 KB vs 8 KB default pages over a mixed query set.

    The Conclusions: "we should increase the default page size from 4 to 8
    Kbytes.  While increasing the page size beyond 8 Kbytes provides slight
    improvement for some queries, the impact on queries that use indices
    (in particular, non-clustered indices) is very negative."
    """
    return run_experiment(ABLATION_A3_SPEC, n=n, **matrix).report


# ---------------------------------------------------------------------------
# A4 — Hybrid spill policies under estimate error
# ---------------------------------------------------------------------------

A4_ERRORS = (0.25, 1.0, 4.0)
A4_MEMORY_RATIOS = (1.0, 0.45, 0.2)
A4_POLICIES = ("static", "demote", "dynamic")


def _a4_point(config: dict[str, Any]) -> dict[str, Any]:
    """Grid point: one (error, ratio, policy, filters) cell (picklable).

    ``err`` scales the optimizer's build-cardinality estimate before it
    reaches the Hybrid join's partition plan: 0.25 means the plan sizes
    memory for a build side 4x smaller than reality (an underestimate),
    4.0 for one 4x larger (an overestimate).  The data itself never
    changes, so every cell must produce the same join answer.
    """
    n, err, ratio = config["n"], config["err"], config["ratio"]
    policy, filters = config["policy"], config["filters"]
    base = GammaConfig.paper_default()
    smaller_bytes = (n // 10) * 208 * base.hash_table_overhead
    machine_config = replace(
        base.with_join_memory(max(64 * KB, int(ratio * smaller_bytes))),
        join_algorithm="hybrid",
        use_bit_filters=filters,
        hybrid_spill_policy=policy,
        hybrid_estimate_factor=err,
    )
    machine = build_gamma(
        machine_config,
        relations=[("A", n, "heap"), ("Bp", n // 10, "heap")],
    )

    def query(into: str) -> Query:
        return join_abprime("A", "Bp", key=False, mode=JoinMode.REMOTE,
                            into=into)

    result = run_stored(machine, query)
    point = {
        "response": result.response_time,
        "count": result.result_count,
        "overflows": result.max_overflows,
        "partitions": result.max_partitions,
        "spool_pages": result.stats.get("spool_pages_written", 0),
    }
    if config["profiled"]:
        # Re-run the most-stressed dynamic cell with the profiler and a
        # trace attached: the trace carries the hash-table counter track
        # (bytes / overflow events / partition count as they evolve), the
        # profile the per-phase demotion and re-partitioning story.
        # Instrumentation is passive, so the timing must not move.
        rerun = run_stored(
            machine, query, trace=(trace := TraceBuffer()), profile=True,
        )
        point["profiled_identical"] = (
            rerun.response_time == result.response_time
        )
        trace.write(os.path.join(
            results_dir(), "ablation_a4_hybrid_dynamic.trace.json"))
        with open(os.path.join(
                results_dir(),
                "ablation_a4_hybrid_dynamic.profile.json"), "w") as fh:
            fh.write(rerun.profile.to_json())
    return point


def _a4_grid(
    n: int = 100_000,
    errors: Sequence[float] = A4_ERRORS,
    memory_ratios: Sequence[float] = A4_MEMORY_RATIOS,
    policies: Sequence[str] = A4_POLICIES,
    profile: Optional[bool] = None,
) -> Grid:
    if profile is None:
        profile = bench_profile_enabled()
    worst_err, deepest = min(errors), min(memory_ratios)

    def derive(config: dict[str, Any]) -> dict[str, Any]:
        config["profiled"] = (
            bool(profile)
            and config["err"] == worst_err
            and config["ratio"] == deepest
            and config["policy"] == "dynamic"
            and config["filters"] is False
        )
        return config

    return Grid(
        axes=(
            Axis("err", tuple(errors)),
            Axis("ratio", tuple(memory_ratios)),
            Axis("policy", tuple(policies)),
            Axis("filters", (False, True)),
        ),
        base={"n": n}, derive=derive,
    )


def _a4_summarise(
    grid: Grid, results: list[Any]
) -> tuple[Report, dict[str, Any]]:
    n = grid.base["n"]
    errors = grid.axis("err").values
    memory_ratios = grid.axis("ratio").values
    policies = grid.axis("policy").values
    report = Report(
        name="ablation_a4_hybrid_dynamic",
        title=f"Ablation A4 — Hybrid spill policy under estimate error,"
              f" joinABprime on {n:,}",
        columns=["est err x", "memory/|Bprime|", "policy", "response (s)",
                 "+filters (s)", "overflow events", "planned parts"],
    )
    profile: dict[str, Any] = {
        "experiment": "ablation_a4_hybrid_dynamic",
        "n": n,
        "errors": list(errors),
        "memory_ratios": list(memory_ratios),
        "policies": list(policies),
        "points": [],
    }
    cells: dict[tuple[float, float, str, bool], dict[str, Any]] = {
        (config["err"], config["ratio"], config["policy"],
         config["filters"]): point
        for config, point in zip(grid.points(), results)
    }
    counts: set[int] = set()
    profiled_identical: Optional[bool] = None
    for err in errors:
        for ratio in memory_ratios:
            for policy in policies:
                plain = cells[(err, ratio, policy, False)]
                filtered = cells[(err, ratio, policy, True)]
                counts.update((plain["count"], filtered["count"]))
                if plain.get("profiled_identical") is not None:
                    profiled_identical = plain["profiled_identical"]
                report.add_row(
                    err, ratio, policy, plain["response"],
                    filtered["response"], plain["overflows"],
                    plain["partitions"],
                )
                profile["points"].append({
                    "err": err, "ratio": ratio, "policy": policy,
                    "response": plain["response"],
                    "response_filtered": filtered["response"],
                    "overflows": plain["overflows"],
                    "partitions": plain["partitions"],
                    "spool_pages": plain["spool_pages"],
                })

    def t(err: float, ratio: float, policy: str) -> float:
        return cells[(err, ratio, policy, False)]["response"]

    worst_err, accurate = min(errors), 1.0
    over_err = max(errors)
    deepest, ample = min(memory_ratios), max(memory_ratios)
    has = set(policies)
    report.check(
        f"every (err, ratio, policy, filters) cell returns the same"
        f" join result ({n // 10:,} tuples)",
        counts == {n // 10},
    )
    if {"static", "demote"} <= has and worst_err < 1.0:
        report.check(
            f"a {1 / worst_err:.0f}x underestimate blows up the static"
            " plan at the deepest shortfall (demotion rescues >= 1.3x)",
            t(worst_err, deepest, "static")
            > 1.3 * t(worst_err, deepest, "demote"),
        )
    if {"static", "dynamic"} <= has and worst_err < 1.0:
        report.check(
            f"dynamic adaptation also beats static planning under the"
            f" {1 / worst_err:.0f}x underestimate (>= 1.1x at some"
            " memory shortfall)",
            any(
                t(worst_err, ratio, "static")
                > 1.1 * t(worst_err, ratio, "dynamic")
                for ratio in memory_ratios
            ),
        )
    if {"static", "dynamic"} <= has and over_err > 1.0:
        report.check(
            f"a {over_err:.0f}x overestimate makes the static plan spool"
            " needlessly with ample memory (dynamic >= 1.5x faster)",
            t(over_err, ample, "static")
            > 1.5 * t(over_err, ample, "dynamic"),
        )
    if {"static", "demote"} <= has and accurate in errors:
        report.check(
            "with an accurate estimate, demotion never fires: static and"
            " demote are identical at every memory ratio",
            all(
                t(accurate, ratio, "static") == t(accurate, ratio, "demote")
                for ratio in memory_ratios
            ),
        )
    if "dynamic" in has:
        report.check(
            "the dynamic policy ignores the estimate entirely: its"
            " response is bit-identical across every error factor",
            all(
                t(err, ratio, "dynamic") == t(errors[0], ratio, "dynamic")
                for err in errors for ratio in memory_ratios
            ),
        )
    if "static" in has and accurate in errors:
        report.check(
            "overflow accounting separates plan from reaction: the"
            " accurate static plan partitions under pressure yet reports"
            " zero overflow events",
            cells[(accurate, deepest, "static", False)]["partitions"] > 1
            and cells[(accurate, deepest, "static", False)]["overflows"]
            == 0,
        )
    if profiled_identical is not None:
        report.check(
            "trace + profile instrumentation does not perturb the"
            " profiled cell's response time",
            profiled_identical,
        )
    report.notes.append(
        "'est err x' scales the build-cardinality estimate the partition"
        " plan sees (0.25 = plan expects 4x fewer bytes than arrive)."
        "  'overflow events' counts actual reactions — static overflow"
        " activation, bucket demotions, recursive re-partitionings,"
        " extra resolve chunks — at the busiest site; 'planned parts'"
        " is what the estimate sized.  Bit filters ride along to show"
        " the policies compose with them."
    )
    return report, profile


ABLATION_A4_SPEC = ExperimentSpec(
    name="ablation_a4_hybrid_dynamic", label="Ablation A4",
    kind="ablation", grid=_a4_grid, point=_a4_point,
    summarise=_a4_summarise,
)


def ablation_hybrid_dynamic_experiment(
    n: int = 100_000,
    errors: Sequence[float] = A4_ERRORS,
    memory_ratios: Sequence[float] = A4_MEMORY_RATIOS,
    policies: Sequence[str] = A4_POLICIES,
    **matrix: Any,
) -> tuple[Report, dict[str, Any]]:
    """A4: Hybrid spill policies under optimizer estimate error.

    Returns the shape-checked :class:`Report` plus a JSON profile of
    every cell (written as ``ablation_a4_hybrid_dynamic.json`` by
    :func:`save_hybrid_profile`).
    """
    run = run_experiment(
        ABLATION_A4_SPEC, n=n, errors=errors,
        memory_ratios=memory_ratios, policies=policies, **matrix,
    )
    assert run.profile is not None
    return run.report, run.profile


def save_hybrid_profile(
    profile: dict[str, Any], directory: Optional[str] = None
) -> str:
    """Write the A4 sweep profile JSON next to the markdown report."""
    path = os.path.join(
        results_dir(directory), "ablation_a4_hybrid_dynamic.json")
    with open(path, "w") as fh:
        json.dump(profile, fh, indent=2, sort_keys=False)
    return path


# ---------------------------------------------------------------------------
# E1 — multiuser off-loading
# ---------------------------------------------------------------------------

def _e1_point(config: dict[str, Any]) -> dict[str, Any]:
    """Grid point: solo selection, or a join+selection pair (picklable)."""
    n, mode = config["n"], config["mode"]
    relations = [
        ("A", n, "heap"), ("Bp", n // 10, "heap"), ("S", n, "heap"),
    ]
    sel_range = selection_range(n, 0.10)
    sel_pred = RangePredicate(sel_range.attr, sel_range.low, sel_range.high)
    machine = build_gamma(relations=relations)
    if mode == "solo":
        solo = machine.run(Query.select("S", sel_pred, into="solo"))
        return {"selection": solo.response_time}
    join_result, sel_result = machine.run_concurrent([
        Query.join(ScanNode("Bp"), ScanNode("A"),
                   on=("unique2", "unique2"), mode=JoinMode(mode), into="j"),
        Query.select("S", sel_pred, into="s"),
    ])
    return {
        "join": join_result.response_time,
        "selection": sel_result.response_time,
        "join_count": join_result.result_count,
        "selection_count": sel_result.result_count,
    }


def _e1_grid(n: int = 50_000) -> Grid:
    return Grid(
        axes=(Axis("mode", ("solo", "local", "remote")),), base={"n": n},
    )


def _e1_summarise(grid: Grid, results: list[Any]) -> Report:
    n = grid.base["n"]
    report = Report(
        name="extension_e1_multiuser",
        title=f"Extension E1 — multiuser off-loading"
              f" (joinABprime + concurrent 10% selection, {n:,} tuples)",
        columns=["join mode", "join (s)", "concurrent selection (s)",
                 "selection alone (s)"],
    )
    points = {
        config["mode"]: point
        for config, point in zip(grid.points(), results)
    }
    solo_time = points["solo"]["selection"]
    for mode in ("local", "remote"):
        report.add_row(mode, points[mode]["join"],
                       points[mode]["selection"], solo_time)

    report.check(
        "the concurrent selection finishes sooner when the join runs on"
        " the diskless processors (Remote off-loading)",
        points["remote"]["selection"] < points["local"]["selection"],
    )
    report.check(
        "contention is real: the concurrent selection is slower than solo",
        points["remote"]["selection"] > solo_time,
    )
    report.check(
        "both queries still complete correctly",
        points["remote"]["join_count"] == n // 10
        and points["remote"]["selection_count"] == n // 10,
    )
    return report


EXTENSION_E1_SPEC = ExperimentSpec(
    name="extension_e1_multiuser", label="Extension E1", kind="extension",
    grid=_e1_grid, point=_e1_point, summarise=_e1_summarise,
)


def multiuser_offloading_experiment(n: int = 50_000, **matrix: Any) -> Report:
    """E1: the deferred multiuser benchmark — Remote-join off-loading.

    A joinABprime and an independent 10% selection are submitted
    together; the join's placement is varied.  The paper's expectation:
    "offloading the join operators to remote processors will allow the
    processors with disks to effectively support more concurrent
    selection and store operators."
    """
    return run_experiment(EXTENSION_E1_SPEC, n=n, **matrix).report


# ---------------------------------------------------------------------------
# E2 — recovery server
# ---------------------------------------------------------------------------

def _e2_point(config: dict[str, Any]) -> dict[str, Any]:
    """Grid point: bulk store + append, logging on or off (picklable)."""
    from ..engine.plan import AppendTuple
    from ..workloads import generate_tuples

    n, logging = config["n"], config["logging"]
    machine_config = replace(
        GammaConfig.paper_default(), use_recovery_server=logging
    )
    machine = build_gamma(machine_config, relations=[("r", n, "heap")])
    stored = run_stored(
        machine, lambda into: selection_query("r", n, 0.10, into=into)
    )
    record = (n + 5, n + 5) + next(iter(generate_tuples(1, seed=3)))[2:]
    append = machine.update(AppendTuple("r", record))
    return {
        "bulk": stored.response_time,
        "append": append.response_time,
        "log_records": stored.stats.get("log_records", 0),
    }


def _e2_grid(n: int = 50_000) -> Grid:
    return Grid(axes=(Axis("logging", (False, True)),), base={"n": n})


def _e2_summarise(grid: Grid, results: list[Any]) -> Report:
    n = grid.base["n"]
    report = Report(
        name="extension_e2_recovery",
        title=f"Extension E2 — recovery server overhead ({n:,} tuples)",
        columns=["operation", "no logging (s)", "with logging (s)",
                 "overhead"],
    )
    points = {
        config["logging"]: point
        for config, point in zip(grid.points(), results)
    }
    times = {
        ("bulk store (10% retrieve into)", logging): points[logging]["bulk"]
        for logging in (False, True)
    }
    times.update({
        ("single-tuple append", logging): points[logging]["append"]
        for logging in (False, True)
    })
    for label in ("bulk store (10% retrieve into)", "single-tuple append"):
        off = times[(label, False)]
        on = times[(label, True)]
        report.add_row(label, off, on, f"{(on / off - 1) * 100:.0f}%")

    report.check(
        "logging ships one record per stored tuple",
        points[True]["log_records"] == round(0.10 * n),
    )
    report.check(
        "group commit keeps bulk-store overhead under 2x",
        times[("bulk store (10% retrieve into)", True)]
        < 2.0 * times[("bulk store (10% retrieve into)", False)],
    )
    report.check(
        "single-tuple appends pay a log force but stay cheap (< 50% over)",
        times[("single-tuple append", True)]
        < 1.5 * times[("single-tuple append", False)],
    )
    report.check(
        "Gamma with logging still beats Teradata's logged path",
        times[("bulk store (10% retrieve into)", True)]
        < TABLE1_SELECTIONS["10% nonindexed selection"][100_000]["teradata"]
        * n / 100_000,
    )
    return report


EXTENSION_E2_SPEC = ExperimentSpec(
    name="extension_e2_recovery", label="Extension E2", kind="extension",
    grid=_e2_grid, point=_e2_point, summarise=_e2_summarise,
)


def recovery_server_experiment(n: int = 50_000, **matrix: Any) -> Report:
    """E2: the recovery server the Conclusions announce.

    Measures the write-ahead logging overhead the server adds to a bulk
    ``retrieve into`` and to a single-tuple append.
    """
    return run_experiment(EXTENSION_E2_SPEC, n=n, **matrix).report
