"""Wall-clock perf records in the result store, and the trend report.

``benchmarks/perf/run_perf.py`` measures how fast the *simulator* runs
(events per cpu-second) — numbers that, unlike the simulated grid
points, change with every commit and never repeat exactly.  Each run
appends its samples here as the ``perf`` experiment, with the git sha
inside the config (one record per commit × benchmark × scale; re-runs
at the same commit replace).  ``python -m repro matrix report --perf``
renders the cross-commit trend, and ``matrix diff SHA1 SHA2`` compares
two commits.
"""

from __future__ import annotations

from typing import Any, Optional

from .store import Record, ResultStore, current_git_sha

PERF_EXPERIMENT = "perf"
PERF_VERSION = "v1"


def record_perf_report(
    report: dict[str, Any],
    store: Optional[ResultStore] = None,
    git_sha: Optional[str] = None,
) -> list[Record]:
    """Append every benchmark sample of one ``run_perf`` report.

    The config carries the git sha (unlike simulated experiments, where
    the sha is metadata only) so each commit keeps its own record and
    the trend table has one row per commit.  Appends replace: repeating
    ``run_perf`` at the same commit keeps the latest samples.
    """
    store = store or ResultStore()
    sha = git_sha or current_git_sha()
    records = []
    for name, sample in report["benchmarks"].items():
        config = {
            "benchmark": name,
            "scale": report["scale"],
            "git_sha": sha,
        }
        records.append(store.append(
            PERF_EXPERIMENT, PERF_VERSION, config, sample,
            git_sha=sha, wall_s=sample.get("wall_s"), replace=True,
        ))
    return records


def perf_records(
    store: Optional[ResultStore] = None, scale: Optional[int] = None
) -> list[Record]:
    store = store or ResultStore()
    records = store.records(PERF_EXPERIMENT, PERF_VERSION)
    if scale is not None:
        records = [r for r in records if r.config.get("scale") == scale]
    return records


def perf_trend(
    store: Optional[ResultStore] = None, scale: Optional[int] = None
) -> list[dict[str, Any]]:
    """Trend rows, oldest commit first.

    Each row is ``{"git_sha", "scale", "recorded_at",
    "benchmarks": {name: sample}}`` — one row per commit × scale.
    """
    groups: dict[tuple[str, int], dict[str, Any]] = {}
    for record in perf_records(store, scale):
        key = (record.config["git_sha"], record.config["scale"])
        group = groups.setdefault(key, {
            "git_sha": key[0], "scale": key[1],
            "recorded_at": record.recorded_at, "benchmarks": {},
        })
        group["recorded_at"] = min(group["recorded_at"], record.recorded_at)
        group["benchmarks"][record.config["benchmark"]] = record.result
    return sorted(groups.values(), key=lambda g: g["recorded_at"])


def format_perf_trend(rows: list[dict[str, Any]]) -> str:
    """Plain-text trend table: events/cpu-second per benchmark, by commit."""
    if not rows:
        return ("no perf records stored — run"
                " `python benchmarks/perf/run_perf.py` to record one")
    names = sorted({name for row in rows for name in row["benchmarks"]})
    header = (f"{'sha':<12}{'scale':>10}  {'recorded':<21}"
              + "".join(f"{name:>18}" for name in names))
    lines = [
        "events per cpu-second (best of run), oldest commit first:",
        header,
        "-" * len(header),
    ]
    for row in rows:
        cells = "".join(
            f"{row['benchmarks'][name]['events_per_cpu_s']:>18,.0f}"
            if name in row["benchmarks"] else f"{'—':>18}"
            for name in names
        )
        lines.append(
            f"{row['git_sha'][:10]:<12}{row['scale']:>10,}"
            f"  {row['recorded_at']:<21}{cells}"
        )
    return "\n".join(lines)


def perf_diff(
    sha_a: str,
    sha_b: str,
    store: Optional[ResultStore] = None,
    scale: Optional[int] = None,
) -> list[dict[str, Any]]:
    """Per-benchmark events/cpu-second comparison between two commits.

    Shas match by prefix, so abbreviated ``git log`` shas work.
    """
    records = perf_records(store, scale)

    def bucket(sha: str) -> dict[tuple[str, int], dict[str, Any]]:
        return {
            (r.config["benchmark"], r.config["scale"]): r.result
            for r in records if r.config["git_sha"].startswith(sha)
        }

    side_a, side_b = bucket(sha_a), bucket(sha_b)
    rows = []
    for benchmark, bench_scale in sorted(set(side_a) | set(side_b)):
        a = side_a.get((benchmark, bench_scale))
        b = side_b.get((benchmark, bench_scale))
        rate_a = a["events_per_cpu_s"] if a else None
        rate_b = b["events_per_cpu_s"] if b else None
        rows.append({
            "benchmark": benchmark,
            "scale": bench_scale,
            "a": rate_a,
            "b": rate_b,
            "ratio": rate_b / rate_a if rate_a and rate_b else None,
        })
    return rows


def format_perf_diff(
    sha_a: str, sha_b: str, rows: list[dict[str, Any]]
) -> str:
    if not rows:
        return (f"no perf records match {sha_a!r} or {sha_b!r} —"
                " run `python -m repro matrix report --perf` to see"
                " recorded commits")
    header = (f"{'benchmark':<18}{'scale':>10}{sha_a[:10]:>16}"
              f"{sha_b[:10]:>16}{'B/A':>8}")
    lines = [
        f"events per cpu-second: {sha_a[:10]} (A) vs {sha_b[:10]} (B)",
        header,
        "-" * len(header),
    ]
    for row in rows:
        cell_a = f"{row['a']:>16,.0f}" if row["a"] is not None else f"{'—':>16}"
        cell_b = f"{row['b']:>16,.0f}" if row["b"] is not None else f"{'—':>16}"
        ratio = (f"{row['ratio']:>7.2f}x" if row["ratio"] is not None
                 else f"{'—':>8}")
        lines.append(
            f"{row['benchmark']:<18}{row['scale']:>10,}{cell_a}{cell_b}{ratio}"
        )
    return "\n".join(lines)
