"""Report objects: paper-style tables and figure series with markdown
rendering, shared by the benchmark harness and EXPERIMENTS.md."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..errors import BenchmarkError


def _fmt(value: Any) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.1f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class Report:
    """One regenerated table or figure.

    Attributes:
        name: Short id, e.g. ``table1`` or ``fig05_06``.
        title: Human title shown above the table.
        columns: Column headers.
        rows: Row cell values (same arity as ``columns``).
        checks: Shape claims verified against the measured data.
        notes: Free-form caveats.
    """

    name: str
    title: str
    columns: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    checks: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise BenchmarkError(
                f"row arity {len(cells)} != {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def check(self, claim: str, condition: bool) -> bool:
        """Record a shape claim; returns the condition for assertions."""
        marker = "PASS" if condition else "FAIL"
        self.checks.append(f"[{marker}] {claim}")
        return condition

    @property
    def all_checks_pass(self) -> bool:
        return all(c.startswith("[PASS]") for c in self.checks)

    def to_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
        if self.checks:
            lines.append("")
            lines.append("Shape checks:")
            for check in self.checks:
                lines.append(f"- {check}")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"> {note}")
        lines.append("")
        return "\n".join(lines)

    def save(self, directory: Optional[str] = None) -> str:
        """Write the markdown report; returns the file path."""
        path = os.path.join(results_dir(directory), f"{self.name}.md")
        with open(path, "w") as fh:
            fh.write(self.to_markdown())
        return path


def results_dir(directory: Optional[str] = None) -> str:
    """The benchmark output directory (``GAMMA_BENCH_RESULTS``-tunable)."""
    directory = directory or os.environ.get(
        "GAMMA_BENCH_RESULTS",
        os.path.join(os.path.dirname(__file__), "..", "..", "..",
                     "benchmarks", "results"),
    )
    os.makedirs(directory, exist_ok=True)
    return directory


def ratio_note(measured: float, paper: Optional[float]) -> Optional[float]:
    """measured/paper ratio, or None when the paper has no number."""
    if paper is None or paper == 0:
        return None
    return measured / paper
