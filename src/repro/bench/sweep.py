"""Parallel sweep runner: fan independent sweep points across cores.

Every figure experiment is a *sweep*: the same workload measured across a
parameter axis (processor count, page size, memory ratio, relation size).
Points are independent — each builds its own machine from scratch — so they
parallelise perfectly.  :func:`run_sweep` fans them over a
:class:`~concurrent.futures.ProcessPoolExecutor` and returns the results in
input order.

Determinism: a point function must derive all randomness from
:func:`~repro.bench.harness.seed_for` (crc32 over the relation name — stable
across processes, unlike the salted builtin ``hash``), so a point computes
the same simulated timeline whether it runs in the parent or a worker.  The
sequential path (``jobs=1``) is the reference; the parallel path produces
byte-identical result tables.

The worker count comes from ``GAMMA_BENCH_JOBS`` (default: all cores).
``GAMMA_BENCH_JOBS=1`` forces everything in-process — use that under
profilers, debuggers, or coverage tools that do not follow forks.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Optional, Sequence, TypeVar

from ..errors import BenchmarkError

P = TypeVar("P")
R = TypeVar("R")


def bench_jobs() -> int:
    """Worker-process count for sweeps (``GAMMA_BENCH_JOBS``-tunable)."""
    raw = os.environ.get("GAMMA_BENCH_JOBS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            raise BenchmarkError(
                f"GAMMA_BENCH_JOBS must be an integer (worker-process"
                f" count), got {raw!r}"
            ) from None
    return os.cpu_count() or 1


def run_sweep(
    point_fn: Callable[[P], R],
    points: Sequence[P],
    jobs: Optional[int] = None,
) -> list[R]:
    """Evaluate ``point_fn`` over every point, in order, possibly in parallel.

    ``point_fn`` must be a module-level function and each point a picklable
    value (they cross a process boundary when ``jobs > 1``).  Results come
    back in input order regardless of completion order.  With ``jobs <= 1``
    or a single point the sweep runs sequentially in-process and no worker
    pool is created.
    """
    points = list(points)
    if not points:
        return []
    jobs = bench_jobs() if jobs is None else max(1, int(jobs))
    jobs = min(jobs, len(points))
    if jobs <= 1:
        return [point_fn(point) for point in points]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(point_fn, points))
