"""Benchmark harness: machine construction, relation loading, sweeps.

Scale control: the environment variable ``GAMMA_BENCH_SIZES`` (comma
separated tuple counts, default ``10000,100000``) picks the relation sizes
for Tables 1-3.  Set ``GAMMA_BENCH_SIZES=10000,100000,1000000`` to
regenerate the full paper tables (the million-tuple column takes several
minutes of wall time).
"""

from __future__ import annotations

import os
import zlib
from typing import Iterable, Optional

from ..engine import GammaMachine, Query
from ..engine.results import QueryResult
from ..hardware import GammaConfig, TeradataConfig
from ..teradata import TeradataMachine


def bench_sizes() -> list[int]:
    """Relation sizes for the table experiments (env-tunable)."""
    raw = os.environ.get("GAMMA_BENCH_SIZES", "10000,100000")
    return [int(part) for part in raw.split(",") if part.strip()]


def seed_for(name: str, n: int) -> int:
    """Deterministic per-relation generator seed.

    Uses :func:`zlib.crc32` over a canonical string rather than the builtin
    ``hash()``: string hashing is salted per interpreter process
    (``PYTHONHASHSEED``), so ``hash``-derived seeds would differ between the
    parallel sweep workers and the parent — and between any two runs.
    """
    return (zlib.crc32(f"{name}:{n}".encode("utf-8")) % 100_000) + 1


def build_gamma(
    config: Optional[GammaConfig] = None,
    relations: Iterable[tuple[str, int, str]] = (),
) -> GammaMachine:
    """A Gamma machine with the requested Wisconsin relations.

    ``relations`` entries are ``(name, n, organisation)`` with organisation
    one of ``heap`` (no indices — the join/selection copies) or ``indexed``
    (clustered on unique1 + non-clustered on unique2, Section 5's second
    copy).
    """
    machine = GammaMachine(config or GammaConfig.paper_default())
    for name, n, organisation in relations:
        load_gamma_relation(machine, name, n, organisation)
    return machine


def load_gamma_relation(
    machine: GammaMachine, name: str, n: int, organisation: str = "heap"
) -> None:
    if organisation == "heap":
        machine.load_wisconsin(name, n, seed=seed_for(name, n))
    elif organisation == "indexed":
        machine.load_wisconsin(
            name, n, seed=seed_for(name, n),
            clustered_on="unique1", secondary_on=["unique2"],
        )
    else:
        raise ValueError(f"unknown organisation {organisation!r}")


def build_teradata(
    config: Optional[TeradataConfig] = None,
    relations: Iterable[tuple[str, int, str]] = (),
) -> TeradataMachine:
    """A Teradata machine with the requested Wisconsin relations.

    The DBC/1012 only has hash-key-ordered files; ``indexed`` adds the
    dense non-clustered secondary index on unique2.
    """
    machine = TeradataMachine(config or TeradataConfig.paper_default())
    for name, n, organisation in relations:
        if organisation == "indexed":
            machine.load_wisconsin(
                name, n, seed=seed_for(name, n), secondary_on=["unique2"]
            )
        else:
            machine.load_wisconsin(name, n, seed=seed_for(name, n))
    return machine


def run_stored(
    machine, make_query, trace=None, profile=False, telemetry=None,
    name=None,
) -> QueryResult:
    """Run a stored-result query, then drop the result relation.

    ``make_query(into_name)`` builds the query.  Dropping keeps repeated
    sweeps memory-flat, and mirrors Gamma's cheap recovery story (dropping
    a result relation is just deleting its files).  Pass a
    :class:`~repro.metrics.TraceBuffer` as ``trace`` to record the run's
    execution timeline (Gamma machines only); pass ``profile=True`` to
    attach a :class:`~repro.metrics.QueryProfile` to the result.

    The result-relation name defaults to a per-machine sequence
    (``bench_result_0``, ``bench_result_1``, …): each grid point builds
    its machine fresh, so the names a point produces depend only on the
    point itself — not on how many benchmarks ran earlier in the process
    — which keeps store keys and regenerated artifacts stable.  (Names
    never influence simulated timings; the sequence is bookkeeping only.)
    """
    if name is None:
        index = getattr(machine, "_bench_result_seq", 0)
        machine._bench_result_seq = index + 1
        name = f"bench_result_{index}"
    kwargs: dict = {}
    if trace is not None:
        kwargs["trace"] = trace
    if profile:
        kwargs["profile"] = True
    if telemetry is not None:
        kwargs["telemetry"] = telemetry
    result = machine.run(make_query(name), **kwargs)
    machine.drop_relation(name)
    return result


def run_to_host(machine, query: Query) -> QueryResult:
    """Run a query whose result returns to the host."""
    return machine.run(query)


def speedup_series(times: dict[int, float], reference: int) -> dict[int, float]:
    """Speedup curve relative to ``times[reference]`` (Figures 2/4/11/12).

    The paper plots speedup against a reference configuration (1 processor
    for selections; 2 processors for joins, to factor out short-circuit
    skew): ``speedup(k) = time(reference) / time(k)``.
    """
    base = times[reference]
    return {k: base / v for k, v in times.items()}
