"""Quickstart: load a Wisconsin relation and run the paper's basic queries.

Run:  python examples/quickstart.py
"""

from repro import (
    ExactMatch,
    GammaConfig,
    GammaMachine,
    JoinMode,
    Query,
    RangePredicate,
)
from repro.engine import ScanNode


def main() -> None:
    # The paper's configuration: 8 processors with disks, 8 diskless query
    # processors, 4 KB disk pages, 2 KB network packets.
    machine = GammaMachine(GammaConfig.paper_default())
    print(machine)

    # Load a 10,000-tuple Wisconsin relation, hash-declustered on unique1,
    # with a clustered index on unique1 and a non-clustered one on unique2
    # (Section 4: relations are loaded "using Uniquel as the key
    # (partitioning) attribute in all cases").
    machine.load_wisconsin(
        "tenktup", 10_000, seed=42,
        clustered_on="unique1", secondary_on=["unique2"],
    )
    machine.load_wisconsin("onektup", 1_000, seed=7)

    # 1% selection through the clustered index, stored in the database.
    result = machine.run(
        Query.select("tenktup", RangePredicate("unique1", 0, 99),
                     into="sel_result")
    )
    print(f"\n1% clustered selection: {result.result_count} tuples in "
          f"{result.response_time:.2f} modeled seconds")
    print(f"  plan: {result.plan}")

    # The optimizer picks the access path: a 10% predicate on the
    # non-clustered attribute is cheaper as a file scan.
    result = machine.run(
        Query.select("tenktup", RangePredicate("unique2", 0, 999),
                     into="sel10_result")
    )
    print(f"\n10% selection: {result.result_count} tuples in "
          f"{result.response_time:.2f} s — optimizer chose: {result.plan}")

    # Single-tuple select: an exact match on the partitioning attribute is
    # routed to exactly one processor.
    result = machine.run(Query.select("tenktup", ExactMatch("unique1", 4242)))
    print(f"\nsingle-tuple select: {result.tuples[0][:2]} in "
          f"{result.response_time:.2f} s ({result.plan})")

    # joinABprime on the diskless processors (Remote mode), the Table 2
    # workhorse: tenktup joined with a relation one tenth its size.
    result = machine.run(
        Query.join(ScanNode("onektup"), ScanNode("tenktup"),
                   on=("unique2", "unique2"), mode=JoinMode.REMOTE,
                   into="join_result")
    )
    print(f"\njoinABprime (remote): {result.result_count} tuples in "
          f"{result.response_time:.2f} s")
    print(f"  packets sent: {result.stats['packets_sent']}, "
          f"short-circuited: {result.stats.get('packets_short_circuited', 0)}")

    # A scalar aggregate (run in the study, cut from the paper for space).
    result = machine.run(Query.aggregate("tenktup", op="min", attr="unique2"))
    print(f"\nmin(unique2) = {result.tuples[0][0]} in "
          f"{result.response_time:.2f} s")


if __name__ == "__main__":
    main()
