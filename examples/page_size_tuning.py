"""Scenario: choosing a disk page size (the Conclusions' 4 KB → 8 KB call).

Sweeps the page size over a mixed workload and shows why the paper warns
that "adopting track-size pages ... may not be a wise decision": the
sequential paths keep improving, but every enlarged page makes each
non-clustered index retrieval's random transfer longer.

Run:  python examples/page_size_tuning.py [n_tuples]
"""

import sys

from repro import GammaConfig
from repro.bench import build_gamma, run_stored
from repro.hardware import KB
from repro.workloads.queries import join_aselb, selection_query


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    page_sizes = (2, 4, 8, 16, 32)
    queries = {
        "0% file scan": lambda m: selection_query("heap", m, 0.0),
        "10% file scan": lambda m: selection_query("heap", m, 0.10),
        "1% non-clustered index": lambda m: selection_query("idx", m, 0.01),
        "1% clustered index": lambda m: selection_query(
            "idx", m, 0.01, attr="unique1"),
        "joinAselB": lambda m: join_aselb("heap", "B", m, key=False),
    }
    times: dict[str, dict[int, float]] = {q: {} for q in queries}
    for kb in page_sizes:
        machine = build_gamma(
            GammaConfig.paper_default().with_page_size(kb * KB),
            relations=[("heap", n, "heap"), ("idx", n, "indexed"),
                       ("B", n, "heap")],
        )
        for label, make in queries.items():
            def builder(into, mk=make):
                query = mk(n)
                query.into = into
                return query

            times[label][kb] = run_stored(machine, builder).response_time

    print(f"Response time (s) on {n:,} tuples, 8 processors with disks\n")
    print(f"{'query':<26}" + "".join(f"{kb:>8d}KB" for kb in page_sizes))
    for label, series in times.items():
        best = min(series, key=series.get)
        cells = "".join(
            f"{series[kb]:>9.2f}" + ("*" if kb == best else " ")
            for kb in page_sizes
        )
        print(f"{label:<26}{cells}")
    print("\n(* = best page size for that query)")

    totals = {
        kb: sum(series[kb] for series in times.values()) for kb in page_sizes
    }
    best = min(totals, key=totals.get)
    print(f"\nMixed-workload totals: "
          + ", ".join(f"{kb}KB={totals[kb]:.1f}s" for kb in page_sizes))
    print(f"Best overall default: {best} KB — the paper picked 8 KB for the"
          " same reason: bigger helps scans but ruins non-clustered index"
          " retrievals.")


if __name__ == "__main__":
    main()
