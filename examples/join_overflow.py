"""Scenario: hash-table overflow and the Simple vs Hybrid join.

Recreates the Figure 13 memory sweep at a configurable size on both join
algorithms, showing the Simple hash join's rapid deterioration and the
Local/Remote crossover after the overflow hash-function switch — then the
graceful degradation of the Hybrid replacement the paper's Conclusions
announce.

Run:  python examples/join_overflow.py [n_tuples]
"""

import sys
from dataclasses import replace

from repro import GammaConfig, JoinMode
from repro.bench import build_gamma, run_stored
from repro.hardware import KB
from repro.workloads.queries import join_abprime


def run_sweep(n: int, algorithm: str) -> None:
    base = GammaConfig.paper_default()
    smaller_bytes = (n // 10) * 208 * base.hash_table_overhead
    print(f"\n=== {algorithm} hash join ===")
    print(f"{'mem/|B|':>8} {'local':>10} {'remote':>10} {'overflows':>10}")
    for ratio in (1.2, 0.9, 0.6, 0.3, 0.2):
        config = replace(
            base.with_join_memory(max(64 * KB, int(ratio * smaller_bytes))),
            join_algorithm=algorithm,
        )
        machine = build_gamma(
            config, relations=[("A", n, "heap"), ("Bp", n // 10, "heap")],
        )
        row = {}
        for mode in (JoinMode.LOCAL, JoinMode.REMOTE):
            result = run_stored(
                machine,
                lambda into, md=mode: join_abprime(
                    "A", "Bp", key=True, mode=md, into=into),
            )
            row[mode] = result
        print(f"{ratio:>8.2f} {row[JoinMode.LOCAL].response_time:>9.1f}s"
              f" {row[JoinMode.REMOTE].response_time:>9.1f}s"
              f" {row[JoinMode.REMOTE].max_overflows:>10d}")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    print(f"joinABprime: {n:,} x {n // 10:,} tuples, key attributes,"
          f" shrinking join memory")
    run_sweep(n, "simple")
    print(
        "\nWatch two things above: (1) Local beats Remote while memory"
        "\nsuffices (every tuple short-circuits the network), but loses"
        "\nafter the first overflow switches the distribution hash;"
        "\n(2) response deteriorates rapidly as overflows multiply."
    )
    run_sweep(n, "hybrid")
    print(
        "\nThe Hybrid join plans its partitions up front, writes and reads"
        "\nevery spooled tuple exactly once, and degrades linearly — the"
        "\nreplacement the paper's Conclusions announce."
    )


if __name__ == "__main__":
    main()
