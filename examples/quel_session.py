"""Scenario: the QUEL front-end — Gamma's actual query language.

"Gamma, which provides an extended version of the query language QUEL,
uses the construct 'retrieve into result relation ...' to specify that
the result of a query is to be stored in a relation."

Run:  python examples/quel_session.py
"""

from repro import GammaMachine, QuelSession


STATEMENTS = [
    "range of t is tenktup",
    "range of s is onektup",
    "retrieve (t.unique1, t.unique2)"
    " where t.unique2 >= 100 and t.unique2 <= 119",
    "retrieve into result (t.all) where t.unique1 < 100",
    "retrieve unique (t.ten)",
    "retrieve (min(t.unique2))",
    "retrieve (count(t.all by t.four))",
    "retrieve into joined (s.all, t.all) where s.unique2 = t.unique2",
    "append to tenktup (unique1 = 99999, unique2 = 99999)",
    "retrieve (t.all) where t.unique1 = 99999",
    "replace t (odd100 = 13) where t.unique1 = 42",
    "delete t where t.unique1 = 99999",
]


def main() -> None:
    machine = GammaMachine()
    machine.load_wisconsin("tenktup", 10_000, seed=1,
                           clustered_on="unique1", secondary_on=["unique2"])
    machine.load_wisconsin("onektup", 1_000, seed=2)
    session = QuelSession(machine)
    for statement in STATEMENTS:
        print(f"\nquel> {statement}")
        result = session.execute(statement)
        if result is None:
            print("      (range variable bound)")
            continue
        print(f"      {result.result_count} tuple(s),"
              f" {result.response_time:.2f} modeled seconds"
              + (f", plan: {result.plan}" if result.plan else ""))
        if result.tuples and len(result.tuples) <= 10:
            for record in sorted(result.tuples)[:10]:
                print(f"        {record[:4]}{'...' if len(record) > 4 else ''}")


if __name__ == "__main__":
    main()
