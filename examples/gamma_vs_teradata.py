"""Scenario: the head-to-head — Gamma vs the Teradata DBC/1012.

Runs the same selection, join and update workload on both machines and
prints the comparison the paper's Tables 1-3 make, including the two
systems' opposite joinABprime/joinAselB orderings.

Run:  python examples/gamma_vs_teradata.py [n_tuples]
"""

import sys

from repro import AppendTuple, ExactMatch
from repro.bench import build_gamma, build_teradata, run_stored
from repro.workloads import generate_tuples
from repro.workloads.queries import (
    join_abprime,
    join_aselb,
    selection_query,
    single_tuple_select,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    relations = [
        ("heap", n, "heap"), ("idx", n, "indexed"),
        ("B", n, "heap"), ("Bp", n // 10, "heap"),
    ]
    gamma = build_gamma(relations=relations)
    teradata = build_teradata(relations=relations)
    print(f"Workload on {n:,}-tuple Wisconsin relations\n")
    print(f"{'query':<38}{'gamma':>10}{'teradata':>10}{'ratio':>8}")

    queries = {
        "1% selection (no index)": lambda into: selection_query(
            "heap", n, 0.01, into=into),
        "10% selection (no index)": lambda into: selection_query(
            "heap", n, 0.10, into=into),
        "1% selection (indexed)": lambda into: selection_query(
            "idx", n, 0.01, into=into),
        "joinABprime": lambda into: join_abprime("heap", "Bp", key=False,
                                                 into=into),
        "joinAselB": lambda into: join_aselb("heap", "B", n, key=False,
                                             into=into),
        "joinABprime (key attrs)": lambda into: join_abprime(
            "heap", "Bp", key=True, into=into),
    }
    results = {}
    for label, builder in queries.items():
        g = run_stored(gamma, builder)
        t = run_stored(teradata, builder)
        results[label] = (g, t)
        print(f"{label:<38}{g.response_time:>9.2f}s{t.response_time:>9.2f}s"
              f"{t.response_time / g.response_time:>7.1f}x")

    # Single-tuple operations.
    g = gamma.run(single_tuple_select("idx", n // 2))
    t = teradata.run(single_tuple_select("idx", n // 2))
    print(f"{'single-tuple select':<38}{g.response_time:>9.2f}s"
          f"{t.response_time:>9.2f}s{t.response_time / g.response_time:>7.1f}x")

    record = (n + 1, n + 1) + next(iter(generate_tuples(1, seed=1)))[2:]
    g = gamma.update(AppendTuple("idx", record))
    t = teradata.update(AppendTuple("idx", record))
    print(f"{'append 1 tuple (indexed)':<38}{g.response_time:>9.2f}s"
          f"{t.response_time:>9.2f}s{t.response_time / g.response_time:>7.1f}x")

    g_abp, _ = results["joinABprime"]
    g_aselb, _ = results["joinAselB"]
    _, t_abp = results["joinABprime"]
    _, t_aselb = results["joinAselB"]
    print("\nThe crossed asymmetry of Table 2:")
    print(f"  Gamma:    joinAselB {g_aselb.response_time:.2f}s "
          f"{'<' if g_aselb.response_time < g_abp.response_time else '>'} "
          f"joinABprime {g_abp.response_time:.2f}s  (selection propagation)")
    print(f"  Teradata: joinABprime {t_abp.response_time:.2f}s "
          f"{'<' if t_abp.response_time < t_aselb.response_time else '>'} "
          f"joinAselB {t_aselb.response_time:.2f}s  (reads both relations"
          " in full)")


if __name__ == "__main__":
    main()
