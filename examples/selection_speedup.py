"""Scenario: how does selection response time scale with processors?

Recreates the Figure 1/2 experiment at a configurable size and draws the
speedup curves as ASCII charts — including the counter-intuitive 0%
*indexed* selection that slows down as processors are added.  The final
configuration's file scan is re-run under the metrics layer to show the
per-node utilisation report (why the speedup is linear: the disks stay
saturated) and to export a Chrome-trace timeline.

Run:  python examples/selection_speedup.py [n_tuples]
"""

import sys

from repro import GammaConfig, TraceBuffer
from repro.bench import build_gamma, run_stored, speedup_series
from repro.engine.plan import AccessPath
from repro.workloads.queries import selection_query


def ascii_curve(label: str, series: dict[int, float], ideal: int) -> None:
    print(f"\n  {label}")
    for procs, speedup in sorted(series.items()):
        bar = "#" * max(1, round(speedup * 60 / ideal))
        print(f"    {procs:2d} procs |{bar} {speedup:.2f}x")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 40_000
    processor_counts = (1, 2, 4, 8)
    print(f"Non-indexed selections on a {n:,}-tuple relation "
          f"(4 KB pages, constant aggregate memory)\n")

    times: dict[str, dict[int, float]] = {}
    for procs in processor_counts:
        machine = build_gamma(
            GammaConfig.paper_default().with_sites(procs),
            relations=[("rel", n, "heap"), ("idx", n, "indexed")],
        )
        last_machine = machine
        for label, builder in {
            "1% file scan": lambda into: selection_query(
                "rel", n, 0.01, into=into),
            "10% file scan": lambda into: selection_query(
                "rel", n, 0.10, into=into),
            "0% via non-clustered index": lambda into: selection_query(
                "idx", n, 0.0, into=into,
                forced_path=AccessPath.NONCLUSTERED_INDEX),
        }.items():
            result = run_stored(machine, builder)
            times.setdefault(label, {})[procs] = result.response_time

    print(f"{'query':<30}" + "".join(f"{p:>10d}p" for p in processor_counts))
    for label, series in times.items():
        print(f"{label:<30}"
              + "".join(f"{series[p]:>10.2f}s" for p in processor_counts))

    ideal = max(processor_counts)
    for label, series in times.items():
        ascii_curve(label, speedup_series(series, 1), ideal)

    print(
        "\nNote the 0% indexed query: with nothing to retrieve, 1-2 index"
        "\nI/Os per site are cheaper than starting operators on more sites,"
        "\nso the response time *increases* with parallelism (Figure 4)."
    )

    # Why the file-scan speedup is linear: re-run the 10% scan on the
    # widest machine under the metrics layer and show who was busy.
    trace = TraceBuffer()
    result = run_stored(
        last_machine,
        lambda into: selection_query("rel", n, 0.10, into=into),
        trace=trace,
    )
    print(f"\n10% file scan on {max(processor_counts)} processors:")
    print(result.utilisation_report)
    path = "selection_speedup.trace.json"
    trace.write(path)
    print(f"\nChrome trace written to {path}"
          " (open in chrome://tracing or https://ui.perfetto.dev)")


if __name__ == "__main__":
    main()
