"""EXPLAIN ANALYZE: profile a join on both machines and compare verdicts.

The profiler attributes every simulated busy second back to the physical
IR operator that caused it, then renders per-operator spans, the phase
timeline, the critical path and a bottleneck verdict.  It is passive —
the response time below is bit-identical with ``profile=False``.

Run:  python examples/explain_analyze.py
"""

from repro import GammaConfig, GammaMachine, Query, TeradataConfig
from repro.engine import ScanNode
from repro.metrics import explain_analyze
from repro.teradata import TeradataMachine


def main() -> None:
    # joinABprime on Gamma: a 10,000-tuple relation joined with one a
    # tenth its size (the Table 2 workhorse).
    gamma = GammaMachine(GammaConfig.paper_default())
    gamma.load_wisconsin("A", 10_000, seed=1)
    gamma.load_wisconsin("Bprime", 1_000, seed=3)
    result = gamma.run(
        Query.join(ScanNode("Bprime"), ScanNode("A"),
                   on=("unique2", "unique2"), into="gamma_join"),
        profile=True,
    )
    print("=== Gamma: joinABprime ===")
    print(explain_analyze(result))

    # The same join on the Teradata model — one profiler, two drivers.
    # Note the redistribute phases that Gamma's local join avoids.
    teradata = TeradataMachine(TeradataConfig(n_amps=8))
    teradata.load_wisconsin("A", 10_000, seed=1)
    teradata.load_wisconsin("Bprime", 1_000, seed=3)
    result = teradata.run(
        Query.join(ScanNode("Bprime"), ScanNode("A"),
                   on=("unique2", "unique2"), into="td_join"),
        profile=True,
    )
    print("\n=== Teradata: joinABprime ===")
    print(explain_analyze(result))

    # The profile is also plain data: result.profile.to_json() serialises
    # spans, timeline, critical path and verdict for offline analysis.
    profile = result.profile
    assert profile is not None
    slowest = max(profile.spans.values(), key=lambda s: sum(s.busy.values()))
    print(f"\nslowest operator: {slowest.op_id} "
          f"({sum(slowest.busy.values()):.2f} busy seconds), "
          f"verdict: {profile.verdict}")


if __name__ == "__main__":
    main()
