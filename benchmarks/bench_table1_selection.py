"""Table 1 — selection queries on Gamma and the Teradata DBC/1012.

Regenerates all seven rows (1%/10% x heap/non-clustered/clustered plus the
single-tuple select) for every size in ``GAMMA_BENCH_SIZES``, printing
paper-vs-measured values and asserting the paper's conclusions: linear
scaling with relation size, the clustered-index advantage, the optimizer's
segment-scan choice at 10%, and Gamma beating the DBC/1012 on every row.
"""

from repro.bench import bench_experiment


def test_table1_selection(report_runner):
    report_runner(bench_experiment, name="table1_selection")
