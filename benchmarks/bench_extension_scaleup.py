"""Extension E5 — scaling the simulated machine to 1000 nodes: the 1 %
selection and joinABprime swept over 8/64/256/1000 disk sites.

Writes the markdown table (``extension_e5_scaleup.md``) and the raw
sweep profile with per-point simulator throughput
(``extension_e5_scaleup.json``) under ``benchmarks/results/``.
"""

from repro.bench import bench_experiment


def test_extension_scaleup(report_runner):
    report_runner(bench_experiment, name="extension_e5_scaleup")
