"""Extension E2 — the recovery server of the Conclusions: write-ahead log
shipping to a dedicated logging node, with group commit for bulk loads."""

from repro.bench import bench_experiment


def test_extension_recovery(report_runner):
    report_runner(bench_experiment, name="extension_e2_recovery")
