"""Figures 9-12 — joinABprime under Local/Remote/Allnodes placement vs the
number of processors: the mirror-image orderings on key vs non-key join
attributes and near-linear speedup from the 2-processor reference point."""

from repro.bench import bench_experiment


def test_fig09_12_join_speedup(report_runner):
    report_runner(bench_experiment, name="fig09_12_join_speedup")
