"""Ablation A4 — Hybrid spill policies under optimizer estimate error:
the static plan trusts the cardinality estimate, ``demote`` reacts to
actual build bytes, ``dynamic`` starts optimistic and recursively
re-partitions.  Sweeps estimate error x memory budget x policy x
bit-filters on the joinABprime memory-pressure sweep."""

from repro.bench import bench_experiment


def test_ablation_hybrid_dynamic(report_runner):
    report_runner(bench_experiment, name="ablation_a4_hybrid_dynamic")
