"""Table 3 — the single-tuple update mix.

Asserts the deferred-update-file cost (append with vs without an index),
key-modification being the most expensive update (relocation), and Gamma's
partial-recovery advantage over the fully-logged DBC/1012.
"""

from repro.bench import bench_experiment


def test_table3_update(report_runner):
    report_runner(bench_experiment, name="table3_update")
