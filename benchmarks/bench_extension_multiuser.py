"""Extension E1 — the multiuser benchmark the paper defers: Remote-join
off-loading measured with a concurrent selection on the disk sites."""

from repro.bench import multiuser_offloading_experiment


def test_extension_multiuser(report_runner):
    report_runner(multiuser_offloading_experiment)
