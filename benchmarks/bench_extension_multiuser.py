"""Extension E1 — the multiuser benchmark the paper defers: Remote-join
off-loading measured with a concurrent selection on the disk sites."""

from repro.bench import bench_experiment


def test_extension_multiuser(report_runner):
    report_runner(bench_experiment, name="extension_e1_multiuser")
