"""Extension E4 — data skew as a swept axis: joinABprime with a
Zipf-distributed join attribute under each redistribution strategy
(plain hash, histogram ranges, virtual-processor hashing,
fragment-replicate hot-broadcast).

Writes the markdown table (``extension_e4_skew.md``) and the raw sweep
profile (``extension_e4_skew.json``) under ``benchmarks/results/``.
"""

from repro.bench import bench_experiment


def test_extension_skew(report_runner):
    report_runner(bench_experiment, name="extension_e4_skew")
