"""Figures 14-15 — joinAselB vs disk page size: larger pages help, the
improvement levelling off at 16 KB."""

from repro.bench import bench_experiment


def test_fig14_15_pagesize_join(report_runner):
    report_runner(bench_experiment, name="fig14_15_pagesize_join")
