"""Table 2 — join queries (joinABprime / joinAselB / joinCselAselB).

Asserts the paper's crossed asymmetry — Gamma runs joinAselB faster than
joinABprime (selection propagation), Teradata the opposite — plus the
25-50% Teradata gain on key-attribute joins (skipped redistribution).
"""

from repro.bench import bench_experiment


def test_table2_join(report_runner):
    report_runner(bench_experiment, name="table2_join")
