"""Ablation A1 — bit-vector filters [BABB79] in split tables: Section 2
says the optimizer can insert them; this quantifies the saving on a
joinABprime probe stream."""

from repro.bench import ablation_bitfilter_experiment


def test_ablation_bitfilter(report_runner):
    report_runner(ablation_bitfilter_experiment)
