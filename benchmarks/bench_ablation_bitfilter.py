"""Ablation A1 — bit-vector filters [BABB79] in split tables: Section 2
says the optimizer can insert them; this quantifies the saving on a
joinABprime probe stream."""

from repro.bench import bench_experiment


def test_ablation_bitfilter(report_runner):
    report_runner(bench_experiment, name="ablation_a1_bitfilter")
