"""Ablation A2 — Simple vs Hybrid hash join under memory pressure: the
Conclusions announce replacing the Simple algorithm with a parallel Hybrid
hash join; this measures the improvement on the Figure 13 sweep."""

from repro.bench import bench_experiment


def test_ablation_hybrid_join(report_runner):
    report_runner(bench_experiment, name="ablation_a2_hybrid_join")
