"""Wall-clock perf microbenchmarks for the simulation kernel and engine.

Unlike the ``bench_*`` suites (which measure *simulated* seconds — the
paper's numbers), this harness measures how fast the simulator itself runs:
wall-clock seconds, simulated seconds, kernel events processed, and
events/second for three workloads:

- ``kernel_dispatch``: a pure-kernel workload (processes cycling through
  Delay and Use effects on a shared FIFO server) — isolates effect
  dispatch and scheduling overhead from the engine.
- ``file_scan``: the Figure 1-2 single-processor 1% non-indexed selection
  (machine build excluded from the timing).
- ``hybrid_join``: joinABprime on non-key attributes at paper
  configuration — the deepest operator pipeline in the repo.
- ``scaleup_1000``: the selection and joinABprime swept over machine
  sizes (64/256 sites at smoke scale, plus 1000 sites at full scale) —
  the event count grows with the square of the site count (every
  producer closes every consumer port), so this tracks whether the
  kernel's cost *per event* stays flat as the machine grows.

Usage::

    python benchmarks/perf/run_perf.py                # full scale (100k)
    python benchmarks/perf/run_perf.py --scale 10000  # CI smoke scale
    python benchmarks/perf/run_perf.py --scale 10000 \
        --baseline benchmarks/perf/baseline.json      # regression gate

Results land in ``benchmarks/results/BENCH_perf.json`` (``--out`` to
override) and are appended to the persistent result store
(``--no-store`` to skip), which feeds the cross-commit trend table
``python -m repro matrix report --perf``.  With ``--baseline``, the
run fails (exit 1) if any
benchmark's events/second drops more than ``--max-regression`` (default
30%) below the committed baseline.  ``--update-baseline`` rewrites the
baseline file from this run instead.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from typing import Any, Callable, Generator

try:
    # Same import mechanism as the bench_* suites: ``repro`` comes from
    # the installed package (``pip install -e .``) or ``PYTHONPATH=src``.
    from repro.bench import build_gamma, run_stored
    from repro.bench.perf import record_perf_report
    from repro.hardware import GammaConfig
    from repro.sim import Delay, Server, Simulation, Use
    from repro.workloads.queries import join_abprime, selection_query
except ModuleNotFoundError as exc:  # pragma: no cover - setup guidance
    raise SystemExit(
        f"cannot import the repro package ({exc}); install it with"
        " `pip install -e .` or run with PYTHONPATH=src"
    ) from exc

#: Wall-clock seconds of the ``file_scan`` query at 100k tuples measured at
#: the pre-fast-path commit on the reference container — the denominator of
#: the ``speedup_vs_seed`` figure this PR's acceptance criterion tracks.
SEED_FILE_SCAN_100K_WALL_S = 0.468


#: Denominator floor for the rate figures: at tiny ``--scale`` a run can
#: finish between clock ticks and report 0.0 seconds, and a rate of
#: events/1ns (an upper bound) beats dividing by zero.
_MIN_TIME_S = 1e-9


def _sample(wall: float, cpu: float, sim_s: float, events: int) -> dict[str, Any]:
    """One timed run.  ``events_per_s`` is the headline wall-clock rate;
    ``events_per_cpu_s`` divides by process CPU time instead, which is
    immune to scheduler contention and is what the regression gate uses."""
    return {
        "wall_s": wall,
        "cpu_s": cpu,
        "sim_s": sim_s,
        "events": events,
        "events_per_s": events / max(wall, _MIN_TIME_S),
        "events_per_cpu_s": events / max(cpu, _MIN_TIME_S),
    }


def _bench_kernel_dispatch(scale: int) -> dict[str, Any]:
    """Pure-kernel churn: ``scale`` Delay/Use round-trips over 50 procs."""
    n_procs = 50
    iters = max(1, scale // n_procs)
    sim = Simulation()
    server = Server("cpu")

    def worker() -> Generator[Any, Any, None]:
        for _ in range(iters):
            yield Delay(0.0)
            yield Use(server, 1e-6)
            yield Delay(1e-6)

    for _ in range(n_procs):
        sim.spawn(worker())
    wall0, cpu0 = time.perf_counter(), time.process_time()
    sim_s = sim.run()
    wall = time.perf_counter() - wall0
    cpu = time.process_time() - cpu0
    return _sample(wall, cpu, sim_s, sim.events_processed)


def _bench_file_scan(scale: int) -> dict[str, Any]:
    """Figure 1-2's single-processor 1% selection (build not timed)."""
    machine = build_gamma(
        GammaConfig.paper_default().with_sites(1),
        relations=[("perfscan", scale, "heap")],
    )
    wall0, cpu0 = time.perf_counter(), time.process_time()
    result = run_stored(
        machine,
        lambda into: selection_query("perfscan", scale, 0.01, into=into),
    )
    wall = time.perf_counter() - wall0
    cpu = time.process_time() - cpu0
    out = _sample(wall, cpu, result.response_time,
                  result.stats["sim_events"])
    if scale == 100_000:
        out["seed_wall_s"] = SEED_FILE_SCAN_100K_WALL_S
        out["speedup_vs_seed"] = SEED_FILE_SCAN_100K_WALL_S / wall
    return out


def _bench_hybrid_join(scale: int) -> dict[str, Any]:
    """joinABprime (non-key) at paper configuration (build not timed)."""
    machine = build_gamma(relations=[
        ("perfA", scale, "heap"), ("perfBp", scale // 10, "heap"),
    ])
    wall0, cpu0 = time.perf_counter(), time.process_time()
    result = run_stored(
        machine,
        lambda into: join_abprime("perfA", "perfBp", key=False, into=into),
    )
    wall = time.perf_counter() - wall0
    cpu = time.process_time() - cpu0
    return _sample(wall, cpu, result.response_time,
                   result.stats["sim_events"])


#: Site counts for the scaleup benchmark: the 1000-site points cost
#: minutes of wall clock (tens of millions of events), so they only run
#: at full scale; CI's 10k smoke scale sweeps 64 and 256 sites.
SCALEUP_SITES_FULL = (64, 256, 1000)
SCALEUP_SITES_SMOKE = (64, 256)


def _bench_scaleup_1000(scale: int) -> dict[str, Any]:
    """Selection + joinABprime swept over machine sizes (build untimed).

    Event count grows roughly with the square of the site count — every
    producer closes every consumer port, and operator activation is per
    site — so the figure of merit is the aggregate events/second, which
    tracks whether kernel cost per event stays flat as the machine grows
    past the paper's 32 processors.
    """
    sites_list = (
        SCALEUP_SITES_FULL if scale >= 100_000 else SCALEUP_SITES_SMOKE
    )
    points: list[dict[str, Any]] = []
    totals = {"wall": 0.0, "cpu": 0.0, "sim": 0.0, "events": 0}
    for sites in sites_list:
        config = GammaConfig.paper_default().with_sites(sites)
        runs: list[tuple[str, Any, Any]] = [
            (
                "selection",
                build_gamma(config, relations=[("perfsel", scale, "heap")]),
                lambda into: selection_query(
                    "perfsel", scale, 0.01, into=into
                ),
            ),
            (
                "joinABprime",
                build_gamma(config, relations=[
                    ("perfA", scale, "heap"),
                    ("perfBp", scale // 10, "heap"),
                ]),
                lambda into: join_abprime(
                    "perfA", "perfBp", key=False, into=into
                ),
            ),
        ]
        for query, machine, make in runs:
            wall0, cpu0 = time.perf_counter(), time.process_time()
            result = run_stored(machine, make)
            wall = time.perf_counter() - wall0
            cpu = time.process_time() - cpu0
            events = result.stats["sim_events"]
            points.append({
                "sites": sites, "query": query,
                **_sample(wall, cpu, result.response_time, events),
            })
            totals["wall"] += wall
            totals["cpu"] += cpu
            totals["sim"] += result.response_time
            totals["events"] += events
    out = _sample(
        totals["wall"], totals["cpu"], totals["sim"], totals["events"]
    )
    out["points"] = points
    return out


BENCHMARKS: dict[str, Callable[[int], dict[str, Any]]] = {
    "kernel_dispatch": _bench_kernel_dispatch,
    "file_scan": _bench_file_scan,
    "hybrid_join": _bench_hybrid_join,
    "scaleup_1000": _bench_scaleup_1000,
}

#: Benchmarks that ignore ``--repeat``: a scaleup run covers millions of
#: kernel events, so one pass is already a low-variance estimate and
#: repeats would cost minutes each at full scale.
RUN_ONCE = {"scaleup_1000"}


def run_benchmarks(scale: int, repeat: int = 3) -> dict[str, Any]:
    """Run every microbenchmark ``repeat`` times, keeping the best wall.

    The simulated timeline and event count are deterministic across
    repeats (asserted); only the wall clock varies, so best-of-N is the
    low-noise estimator.
    """
    results: dict[str, Any] = {}
    for name, fn in BENCHMARKS.items():
        best: dict[str, Any] | None = None
        for _ in range(1 if name in RUN_ONCE else max(1, repeat)):
            sample = fn(scale)
            if best is not None:
                assert sample["events"] == best["events"], name
                assert sample["sim_s"] == best["sim_s"], name
            if best is None or sample["cpu_s"] < best["cpu_s"]:
                best = sample
        results[name] = best
    return {
        "scale": scale,
        "repeat": repeat,
        "python": platform.python_version(),
        "benchmarks": results,
    }


def check_baseline(
    report: dict[str, Any], baseline: dict[str, Any], max_regression: float
) -> list[str]:
    """Names of benchmarks whose events/s regressed past the threshold."""
    failures: list[str] = []
    for name in report["benchmarks"]:
        # A benchmark that runs without a committed reference is a gate
        # hole, not a pass: fail loudly until the baseline is refreshed.
        if name not in baseline.get("benchmarks", {}):
            failures.append(
                f"{name}: no baseline entry — regenerate with"
                " --update-baseline"
            )
    for name, base in baseline.get("benchmarks", {}).items():
        measured = report["benchmarks"].get(name)
        if measured is None:
            failures.append(f"{name}: missing from this run")
            continue
        floor = base["events_per_cpu_s"] * (1.0 - max_regression)
        if measured["events_per_cpu_s"] < floor:
            failures.append(
                f"{name}: {measured['events_per_cpu_s']:,.0f} events/cpu-s <"
                f" {floor:,.0f} ({1 - max_regression:.0%} of baseline"
                f" {base['events_per_cpu_s']:,.0f})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=100_000,
                        help="tuples in the benchmarked relations")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per benchmark (best wall kept)")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "results",
        "BENCH_perf.json"))
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON to gate events/s against")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional events/s drop vs baseline")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite --baseline from this run")
    parser.add_argument("--no-store", action="store_true",
                        help="skip appending this run to the persistent"
                        " result store (benchmarks/results/store/)")
    args = parser.parse_args(argv)

    report = run_benchmarks(args.scale, args.repeat)
    os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    for name, r in report["benchmarks"].items():
        line = (
            f"{name:16s} wall {r['wall_s']:8.3f}s   sim {r['sim_s']:8.3f}s"
            f"   {r['events']:>10,} events   {r['events_per_s']:>12,.0f} ev/s"
        )
        if "speedup_vs_seed" in r:
            line += f"   {r['speedup_vs_seed']:.2f}x vs seed"
        print(line)
        for point in r.get("points", ()):
            print(
                f"    @{point['sites']:>4} sites {point['query']:<12}"
                f" wall {point['wall_s']:8.3f}s"
                f"   {point['events']:>10,} events"
                f"   {point['events_per_s']:>12,.0f} ev/s"
            )
    print(f"wrote {os.path.relpath(args.out)}")

    if not args.no_store:
        # One record per commit × benchmark × scale; re-runs at the same
        # commit replace.  `python -m repro matrix report --perf` renders
        # the cross-commit events/cpu-second trend from these.
        records = record_perf_report(report)
        print(f"stored {len(records)} perf records"
              f" ({records[0].git_sha[:10]}) in the result store")

    if args.baseline:
        if args.update_baseline:
            baseline = {
                "scale": report["scale"],
                "benchmarks": {
                    name: {"events_per_cpu_s": r["events_per_cpu_s"]}
                    for name, r in report["benchmarks"].items()
                },
            }
            with open(args.baseline, "w") as fh:
                json.dump(baseline, fh, indent=2)
                fh.write("\n")
            print(f"updated baseline {os.path.relpath(args.baseline)}")
            return 0
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        if baseline.get("scale") != report["scale"]:
            print(
                f"baseline scale {baseline.get('scale')} !="
                f" run scale {report['scale']}; skipping the gate"
            )
            return 0
        failures = check_baseline(report, baseline, args.max_regression)
        if failures:
            print("PERF REGRESSION:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print("baseline gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
