"""Shared benchmark plumbing.

Every benchmark runs its experiment exactly once (the experiments are
deterministic discrete-event simulations — repeated rounds measure the
same timeline), prints the regenerated paper table, saves it under
``benchmarks/results/``, and asserts the paper's shape claims.

Scale: ``GAMMA_BENCH_SIZES=10000,100000[,1000000]`` controls the table
experiments' relation sizes (default 10000,100000).
"""

import pytest


def run_report(benchmark, experiment, **kwargs):
    """Benchmark one experiment, emit its report, assert its checks."""
    report = benchmark.pedantic(
        experiment, kwargs=kwargs, rounds=1, iterations=1
    )
    report.save()
    print("\n" + report.to_markdown())
    assert report.all_checks_pass, "\n".join(report.checks)
    return report


@pytest.fixture
def report_runner(benchmark):
    def runner(experiment, **kwargs):
        return run_report(benchmark, experiment, **kwargs)

    return runner
