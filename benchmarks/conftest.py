"""Shared benchmark plumbing.

Every benchmark runs its experiment exactly once (the experiments are
deterministic discrete-event simulations — repeated rounds measure the
same timeline), prints the regenerated paper table, saves it under
``benchmarks/results/``, and asserts the paper's shape claims.

Each bench is a thin lookup into the experiment registry
(:mod:`repro.bench.registry`) and runs against the persistent result
store under ``benchmarks/results/store/``: grid points already stored
are not re-executed, so a warm-store suite regenerates every report
from stored runs without simulating anything.  ``--force`` re-runs and
replaces stored points.

Scale: ``GAMMA_BENCH_SIZES=10000,100000[,1000000]`` controls the table
experiments' relation sizes (default 10000,100000).

``--profile`` attaches the query profiler to the instrumented figure
runs (fig 1-2, fig 13), writing ``<figure>.profile.json`` next to each
trace export under ``benchmarks/results/``.
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--profile", action="store_true", default=False,
        help="attach the query profiler to instrumented figure runs and"
             " write <figure>.profile.json artifacts",
    )
    parser.addoption(
        "--force", action="store_true", default=False,
        help="re-execute grid points already present in the result store"
             " and replace their records",
    )


def pytest_configure(config):
    if config.getoption("--profile"):
        # The sweeps fan out through worker processes; an env var is the
        # picklable way to reach them (same pattern as GAMMA_BENCH_SIZES).
        os.environ["GAMMA_BENCH_PROFILE"] = "1"
    if config.getoption("--force"):
        os.environ["GAMMA_BENCH_FORCE"] = "1"


def run_report(benchmark, experiment, **kwargs):
    """Benchmark one experiment, emit its report, assert its checks."""
    report = benchmark.pedantic(
        experiment, kwargs=kwargs, rounds=1, iterations=1
    )
    report.save()
    print("\n" + report.to_markdown())
    assert report.all_checks_pass, "\n".join(report.checks)
    return report


@pytest.fixture
def report_runner(benchmark):
    def runner(experiment, **kwargs):
        return run_report(benchmark, experiment, **kwargs)

    return runner
